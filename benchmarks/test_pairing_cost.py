"""Pairing-cost bench: the one-time device pairing (§4)."""

import pytest

from repro.experiments import pairing_cost


def test_pairing_cost(benchmark):
    result = benchmark(pairing_cost.run)
    assert result.constant_mb == pytest.approx(215, abs=1)
    assert result.after_link_mb == pytest.approx(123, abs=1)
    assert result.compressed_mb == pytest.approx(56, abs=1.5)
    print()
    print(pairing_cost.render())
