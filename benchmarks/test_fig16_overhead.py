"""Figure 16 bench: Quadrant + SunSpider on Flux vs AOSP."""

from repro.experiments import fig16


def test_fig16_recording_overhead(benchmark):
    scores = benchmark(fig16.run)
    assert len(scores) == 18
    worst = max(s.overhead_percent for s in scores)
    assert worst < fig16.PAPER_MAX_OVERHEAD_PERCENT
    print()
    print(fig16.render())
