"""App-support bench: migrate all 18 apps, expect exactly 2 refusals."""

from repro.apps import TOP_APPS
from repro.experiments import app_support
from repro.experiments.harness import run_sweep


def full_support_sweep():
    return run_sweep(apps=TOP_APPS, include_failures=True)


def test_app_support(benchmark):
    result = benchmark.pedantic(full_support_sweep, rounds=1, iterations=1)
    refused = {pkg for (_, pkg) in result.refusals}
    assert len(refused) == 2
    print()
    print(app_support.render())
