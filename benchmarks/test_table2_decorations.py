"""Table 2 bench: compile every decorated service interface."""

from repro.android.aidl import InterfaceRegistry
from repro.android.services.aidl_sources import all_sources
from repro.experiments import table2


def compile_all():
    registry = InterfaceRegistry()
    registry.compile_source(all_sources())
    return registry


def test_table2_decorations(benchmark):
    registry = benchmark(compile_all)
    assert len(registry.names()) == 23   # 22 services + sensor connection
    rows = table2.run()
    decorated = [r for r in rows if r.our_decoration_loc is not None]
    assert len(decorated) == 19          # all but Bluetooth/Serial/Usb
    print()
    print(table2.render())
