"""Figure 14 bench: user-perceived time excluding data transfer."""

import pytest

from repro.experiments import fig14


def test_fig14_perceived_times(sweep, benchmark):
    rows = benchmark(fig14.run, sweep)
    assert len(rows) == 16
    averages = fig14.averages(sweep)
    assert averages["non_transfer"] == pytest.approx(
        fig14.PAPER_AVERAGE_NON_TRANSFER_SECONDS, rel=0.2)
    print()
    print(fig14.render())
