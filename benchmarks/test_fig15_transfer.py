"""Figure 15 bench: data transferred during migration."""

from repro.experiments import fig15


def test_fig15_data_transferred(sweep, benchmark):
    rows = benchmark(fig15.run, sweep)
    assert max(r.transferred_mb for r in rows) <= fig15.PAPER_MAX_TRANSFER_MB
    assert all((r.data_sync_kb + r.record_log_kb)
               < fig15.PAPER_MAX_SYNC_PLUS_LOG_KB for r in rows)
    print()
    print(fig15.render())
