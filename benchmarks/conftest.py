"""Benchmark-harness fixtures.

Every benchmark regenerates one of the paper's tables or figures: the
``benchmark`` fixture times the regeneration, the test body then asserts
the published shape and prints the rows (run pytest with ``-s`` to see
them).
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_sweep


@pytest.fixture(scope="session")
def sweep():
    """The shared four-pair, sixteen-app migration sweep."""
    return run_sweep()
