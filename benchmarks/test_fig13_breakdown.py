"""Figure 13 bench: per-stage breakdown of migration time."""

from repro.experiments import fig13


def test_fig13_breakdown(sweep, benchmark):
    rows = benchmark(fig13.run, sweep)
    assert len(rows) == 16
    transfer_share = fig13.average_transfer_fraction(sweep)
    assert transfer_share > fig13.PAPER_TRANSFER_FRACTION_MIN
    print()
    print(fig13.render())
