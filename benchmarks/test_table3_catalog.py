"""Table 3 bench: install and run every catalog app's workload."""

from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_7_2013
from repro.apps import TOP_APPS
from repro.experiments import table3
from repro.sim import SimClock
from repro.sim.rng import RngFactory


def run_all_workloads():
    device = Device(NEXUS_7_2013, SimClock(), RngFactory(0), name="bench")
    for spec in TOP_APPS:
        spec.install_and_launch(device)
    return device


def test_table3_workloads(benchmark):
    device = benchmark(run_all_workloads)
    assert len(device.running_packages()) == 18
    print()
    print(table3.render())
