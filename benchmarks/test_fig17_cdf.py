"""Figure 17 bench: install-size CDF over the full 488,259-app catalog."""

import pytest

from repro.playstore import PAPER_CATALOG_SIZE, analyze_catalog, generate_catalog
from repro.sim import units


def full_analysis():
    apps = generate_catalog(PAPER_CATALOG_SIZE)
    return analyze_catalog(apps)


def test_fig17_full_catalog(benchmark):
    report = benchmark.pedantic(full_analysis, rounds=1, iterations=1)
    assert report.total_apps == PAPER_CATALOG_SIZE
    assert report.preserve_egl_count == 3_300
    assert report.cdf_at(units.MB) == pytest.approx(0.60, abs=0.02)
    assert report.cdf_at(10 * units.MB) == pytest.approx(0.90, abs=0.02)
    print()
    from repro.experiments import fig17
    print(fig17.render())
