"""Figure 12 bench: the full 16-app x 4-pair migration sweep."""

import pytest

from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
from repro.apps import MIGRATABLE_APPS
from repro.experiments import fig12
from repro.experiments.harness import run_pair


def one_pair():
    return run_pair(NEXUS_4, NEXUS_7_2013, MIGRATABLE_APPS, seed=99).reports


def test_fig12_one_pair_sweep(benchmark):
    """Times one device pair's 16 migrations end to end."""
    reports = benchmark(one_pair)
    assert len(reports) == 16
    assert all(r.success for r in reports.values())


def test_fig12_overall_migration_times(sweep, benchmark):
    average = benchmark(fig12.average_total, sweep)
    assert average == pytest.approx(fig12.PAPER_AVERAGE_TOTAL_SECONDS,
                                    rel=0.15)
    print()
    print(fig12.render())
