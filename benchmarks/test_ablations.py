"""Ablation benches for the design choices DESIGN.md calls out.

1. **Selective vs. naive record** — §3.2 argues a record-everything log
   wastes resources and replay latency; we measure log entries/bytes
   with pruning on and off under a notification/alarm-churny workload.
2. **Post-copy transfer** — §4 suggests post-copy with adaptive
   pre-paging could overlap transfer with restore/reintegration; we
   bound the improvement with an overlap estimator over the sweep.
3. **802.11ac scaling** — §4 predicts better radios shrink migration
   toward the non-transfer floor; we migrate between Nexus 5-class
   devices and compare against the Nexus 7 pair.
"""

import pytest

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification
from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_5, NEXUS_7_2012, NEXUS_7_2013
from repro.apps import app_by_title
from repro.experiments.harness import format_table
from repro.sim import SimClock
from repro.sim.rng import RngFactory


def churny_workload(device, package="com.bench.churn", rounds=40):
    """An app that posts/acknowledges notifications and re-arms alarms."""
    from tests.conftest import DemoActivity, install_demo
    install_demo(device, package)
    thread = device.launch_app(package, DemoActivity)
    nm = thread.context.get_system_service("notification")
    alarm = thread.context.get_system_service("alarm")
    pi = PendingIntent(package, Intent("com.bench.TICK"))
    for i in range(rounds):
        nm.notify(i % 4, Notification(f"msg {i}"))
        if i % 2:
            nm.cancel(i % 4)
        alarm.set(alarm.RTC, device.clock.now + 1e6 + i, pi)
    return thread


class TestSelectiveRecordAblation:
    def _log_stats(self, prune: bool):
        device = Device(NEXUS_7_2013, SimClock(), RngFactory(31),
                        name="ablate")
        device.recorder.prune = prune
        churny_workload(device)
        entries = device.recorder.extract_app_log("com.bench.churn")
        return len(entries), device.call_log.size_bytes("com.bench.churn")

    def test_selective_record_shrinks_log(self, benchmark):
        selective = benchmark(self._log_stats, True)
        naive_entries, naive_bytes = self._log_stats(False)
        selective_entries, selective_bytes = selective
        # The churny workload's live state is 1-2 notifications + 1 alarm.
        assert selective_entries <= 4
        assert naive_entries >= 80
        assert selective_bytes < naive_bytes / 10
        print()
        print(format_table(
            ("design", "log entries", "log bytes"),
            [("selective record (Flux)", selective_entries, selective_bytes),
             ("record everything", naive_entries, naive_bytes)],
            title="Ablation: selective vs naive recording"))


class TestPostCopyAblation:
    def test_overlap_estimator(self, sweep, benchmark):
        """Upper-bounds §4's post-copy idea: transfer overlapped with
        restore + reintegration instead of serialized before them."""
        def estimate():
            now = post = 0.0
            for report in sweep.all_reports():
                serialized = report.total_seconds
                overlapped = (report.stages["preparation"]
                              + report.stages["checkpoint"]
                              + max(report.stages["transfer"],
                                    report.stages["restore"]
                                    + report.stages["reintegration"]))
                now += serialized
                post += overlapped
            return now, post

        total_now, total_post = benchmark(estimate)
        n = len(sweep.all_reports())
        improvement = 1 - (total_post / total_now)
        assert 0.05 < improvement < 0.5
        print()
        print(f"post-copy overlap estimate: {total_now / n:.2f}s -> "
              f"{total_post / n:.2f}s ({improvement:.0%} faster)")


class TestWifiScalingAblation:
    def _migrate_candy(self, profile):
        clock = SimClock()
        factory = RngFactory(37)
        home = Device(profile, clock, factory, name="home")
        guest = Device(profile, clock, factory, name="guest")
        spec = app_by_title("Candy Crush Saga")
        spec.install_and_launch(home)
        home.pairing_service.pair(guest)
        return home.migration_service.migrate(guest, spec.package)

    def test_80211ac_shrinks_toward_non_transfer_floor(self, benchmark):
        report_ac = benchmark.pedantic(self._migrate_candy, args=(NEXUS_5,),
                                       rounds=1, iterations=1)
        report_n = self._migrate_candy(NEXUS_7_2012)
        assert report_ac.total_seconds < report_n.total_seconds / 2
        # Transfer no longer dominates on 802.11ac.
        assert report_ac.stage_fraction("transfer") < 0.5 < \
            report_n.stage_fraction("transfer")
        print()
        print(format_table(
            ("radio", "total s", "transfer share"),
            [("802.11n 2.4GHz congested (Nexus 7 2012)",
              f"{report_n.total_seconds:.2f}",
              f"{report_n.stage_fraction('transfer') * 100:.0f}%"),
             ("802.11ac (Nexus 5)", f"{report_ac.total_seconds:.2f}",
              f"{report_ac.stage_fraction('transfer') * 100:.0f}%")],
            title="Ablation: radio scaling (paper §4 projection)"))


class TestAdhocAblation:
    """Disconnected operation (§1): migration over ad-hoc WiFi."""

    def _migrate(self, adhoc: bool):
        from repro.android.net.link import link_between
        clock = SimClock()
        factory = RngFactory(53)
        home = Device(NEXUS_7_2013, clock, factory, name="home")
        guest = Device(NEXUS_7_2013, clock, factory, name="guest")
        spec = app_by_title("Netflix")
        spec.install_and_launch(home)
        home.pairing_service.pair(guest)
        link = link_between(home.profile, guest.profile, home.rng_factory,
                            adhoc=adhoc)
        return home.migration_service.migrate(guest, spec.package,
                                              link=link)

    def test_adhoc_works_with_modest_slowdown(self, benchmark):
        adhoc = benchmark.pedantic(self._migrate, args=(True,),
                                   rounds=1, iterations=1)
        infra = self._migrate(False)
        assert adhoc.success and infra.success
        assert infra.total_seconds < adhoc.total_seconds \
            < 2.5 * infra.total_seconds
        print()
        print(format_table(
            ("network", "total s", "transfer s"),
            [("infrastructure", f"{infra.total_seconds:.2f}",
              f"{infra.stages['transfer']:.2f}"),
             ("ad-hoc (no AP)", f"{adhoc.total_seconds:.2f}",
              f"{adhoc.stages['transfer']:.2f}")],
            title="Ablation: ad-hoc vs infrastructure WiFi"))


class TestPipelinedTransferAblation:
    """Chunked pipelined transfer + content-addressed chunk cache
    (``FluxExtensions.pipelined_transfer``) against the paper's serial
    whole-image path, on a repeat migration — the acceptance bar is a
    >=20% cut in simulated repeat-migration time."""

    def test_chunk_cache_cuts_repeat_migrations(self, benchmark):
        from repro.experiments import transfer_ablation
        rows = benchmark.pedantic(transfer_ablation.run,
                                  rounds=1, iterations=1)
        by_config = {r.config: r for r in rows}
        serial = by_config["serial (paper)"]
        cold = by_config["pipelined"]
        cached = by_config["pipelined + chunk cache"]
        # Pipelining alone already shaves the compress/send overlap.
        assert cold.first_seconds < serial.first_seconds
        # The cache pays off on the repeat hop: >=20% faster, mostly
        # cached chunks, and only the negotiation + live-state chunks
        # plus the data delta on the wire.
        assert cached.repeat_seconds <= 0.8 * serial.repeat_seconds
        assert cached.repeat_chunk_hit_rate > 0
        assert cached.repeat_wire_bytes < serial.repeat_wire_bytes / 10
        # Without a warm cache the repeat costs the same as the first.
        assert cold.repeat_chunk_hit_rate == 0
        print()
        print(transfer_ablation.render())


class TestExtensionsCoverage:
    """With every §3.4 extension on, app support rises from 16/18 to
    18/18 — the quantified payoff of the paper's sketched future work."""

    def _support_count(self, extensions):
        from repro.apps import TOP_APPS
        from repro.core.cria.errors import MigrationError
        clock = SimClock()
        factory = RngFactory(59)
        home = Device(NEXUS_7_2013, clock, factory, name="home")
        guest = Device(NEXUS_7_2013, clock, factory, name="guest")
        for spec in TOP_APPS:
            spec.install(home)
        home.pairing_service.pair(guest)
        migrated = 0
        for spec in TOP_APPS:
            spec.install_and_launch(home)
            try:
                home.migration_service.migrate(guest, spec.package,
                                               extensions=extensions)
                migrated += 1
            except MigrationError:
                home.terminate_app(spec.package)
        return migrated

    def test_extensions_lift_coverage_to_18_of_18(self, benchmark):
        from repro.core.extensions import FluxExtensions
        full = benchmark.pedantic(self._support_count,
                                  args=(FluxExtensions.all(),),
                                  rounds=1, iterations=1)
        base = self._support_count(FluxExtensions.none())
        assert (base, full) == (16, 18)
        print()
        print(format_table(
            ("configuration", "apps migrated"),
            [("prototype (paper)", f"{base}/18"),
             ("+ all extensions", f"{full}/18")],
            title="Ablation: extension coverage"))
