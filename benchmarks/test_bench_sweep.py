"""Wall-clock bench: the Figure 12 sweep, serial vs parallel workers.

Times the real (not simulated) cost of regenerating the four-pair,
sixteen-app sweep with ``run_sweep(workers=1)`` against ``workers=4``
and records the schema-2 payload in ``BENCH_sweep.json`` at the repo
root via :mod:`repro.experiments.bench`.

The speedup itself is **non-gating**: each device pair is an
independent simulation, but CPython threads only overlap where the
interpreter releases the GIL (sqlite3, hashing), so on a single-core
box the parallel sweep may be no faster.  What *is* gated here is
correctness — the parallel sweep must stay bit-identical to the serial
one (reports *and* aggregated metrics) even while we time it.  The
``sim`` section of the payload is gated separately by
``flux-sim bench-check``.
"""

import json

import pytest

from repro.experiments import bench


@pytest.mark.perf
class TestSweepWallClock:
    def test_parallel_sweep_wall_clock(self):
        serial, parallel, serial_s, parallel_s = bench.measure_sweep(
            workers=bench.WORKERS)

        # Gating: determinism.  The parallel run must reproduce the
        # serial run exactly, whatever the thread interleaving did.
        assert serial.reports.keys() == parallel.reports.keys()
        for key, report in serial.reports.items():
            other = parallel.reports[key]
            assert report.stages == other.stages, key
            assert report.transferred_bytes == other.transferred_bytes, key
        assert serial.merged_metrics() == parallel.merged_metrics()

        payload = bench.build_payload(serial, serial_s, parallel_s,
                                      workers=bench.WORKERS)
        bench.BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        wall = payload["wall"]
        print(f"\nsweep wall clock: serial {wall['serial_s']:.3f}s, "
              f"parallel({bench.WORKERS}) {wall['parallel_s']:.3f}s, "
              f"speedup {wall['speedup']}x -> {bench.BENCH_PATH.name}")
