"""Wall-clock bench: the Figure 12 sweep, serial vs parallel workers.

Times the real (not simulated) cost of regenerating the four-pair,
sixteen-app sweep with ``run_sweep(workers=1)`` against ``workers=4``
and records the result in ``BENCH_sweep.json`` at the repo root.

The speedup itself is **non-gating**: each device pair is an
independent simulation, but CPython threads only overlap where the
interpreter releases the GIL (sqlite3, hashing), so on a single-core
box the parallel sweep may be no faster.  What *is* gated here is
correctness — the parallel sweep must stay bit-identical to the serial
one even while we time it.
"""

import json
import time
from pathlib import Path

import pytest

from repro.experiments.harness import run_sweep


BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
WORKERS = 4


@pytest.mark.perf
class TestSweepWallClock:
    def test_parallel_sweep_wall_clock(self):
        start = time.perf_counter()
        serial = run_sweep(use_cache=False, workers=1)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_sweep(use_cache=False, workers=WORKERS)
        parallel_s = time.perf_counter() - start

        # Gating: determinism.  The parallel run must reproduce the
        # serial run exactly, whatever the thread interleaving did.
        assert serial.reports.keys() == parallel.reports.keys()
        for key, report in serial.reports.items():
            other = parallel.reports[key]
            assert report.stages == other.stages, key
            assert report.transferred_bytes == other.transferred_bytes, key

        payload = {
            "benchmark": "fig12_sweep_wall_clock",
            "workers": WORKERS,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
            "cells": len(serial.reports),
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nsweep wall clock: serial {serial_s:.3f}s, "
              f"parallel({WORKERS}) {parallel_s:.3f}s, "
              f"speedup {payload['speedup']}x -> {BENCH_PATH.name}")
