"""Wall-clock bench: the Figure 12 sweep across all three executors.

Times the real (not simulated) cost of regenerating the four-pair,
sixteen-app sweep serially (with per-pair walls), on a thread pool,
and on a process pool, and records the schema-3 payload in
``BENCH_sweep.json`` at the repo root via
:mod:`repro.experiments.bench`.

Absolute walls are **non-gating** here: each device pair is an
independent simulation, but the thread executor shares one GIL (so it
times concurrency, not parallelism) and the process executor's gain
depends on the machine's core count.  What *is* gated here is
correctness — every executor's sweep must stay bit-identical to the
serial one (reports *and* aggregated metrics) even while we time it.
The ``sim`` section and the multi-core ``process_speedup >= 1.0``
floor are gated separately by ``flux-sim bench-check``.
"""

import json

import pytest

from repro.experiments import bench
from repro.experiments.harness import run_sweep


@pytest.mark.perf
class TestSweepWallClock:
    def test_executor_sweep_wall_clock(self):
        sweep, per_pair, serial_s, thread_s, process_s = \
            bench.measure_sweep(workers=bench.WORKERS)

        # Gating: determinism.  A pooled run must reproduce the serial
        # run exactly, whatever the interleaving did.
        parallel = run_sweep(use_cache=False, workers=bench.WORKERS,
                             executor="process")
        assert sweep.reports.keys() == parallel.reports.keys()
        for key, report in sweep.reports.items():
            other = parallel.reports[key]
            assert report.stages == other.stages, key
            assert report.transferred_bytes == other.transferred_bytes, key
        assert sweep.merged_metrics() == parallel.merged_metrics()

        payload = bench.build_payload(sweep, serial_s, thread_s, process_s,
                                      per_pair_serial_s=per_pair,
                                      workers=bench.WORKERS)
        bench.BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        wall = payload["wall"]
        print(f"\nsweep wall clock ({payload['cpu_count']} cpu): "
              f"serial {wall['serial_s']:.3f}s, "
              f"thread({bench.WORKERS}) {wall['thread_s']:.3f}s "
              f"(x{wall['thread_speedup']}), "
              f"process({bench.WORKERS}) {wall['process_s']:.3f}s "
              f"(x{wall['process_speedup']}) -> {bench.BENCH_PATH.name}")
