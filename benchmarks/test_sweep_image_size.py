"""Parametric sweep: migration time vs. checkpoint image size.

A synthetic workload generator produces apps with heap footprints from
2 MB to 32 MB; migrating each shows where the transfer stage starts to
dominate and that total time scales linearly in image size with a fixed
non-transfer floor — the structural claim behind Figures 12/14/15
("migration times are generally correlated with the data transfer
sizes" / the 1.35 s floor).
"""

import pytest

from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_7_2013
from repro.android.storage import ApkFile
from repro.experiments.harness import format_table
from repro.sim import SimClock, units
from repro.sim.rng import RngFactory


HEAP_MB_POINTS = (2, 4, 8, 16, 24, 32)


def migrate_with_heap(heap_mb: float):
    from tests.conftest import DemoActivity
    clock = SimClock()
    factory = RngFactory(61)
    home = Device(NEXUS_7_2013, clock, factory, name="home")
    guest = Device(NEXUS_7_2013, clock, factory, name="guest")
    package = f"com.sweep.heap{int(heap_mb)}"
    home.install_app(ApkFile(package, 1, units.mb(4)))
    home.launch_app(package, DemoActivity, heap_bytes=units.mb(heap_mb))
    home.pairing_service.pair(guest)
    return home.migration_service.migrate(guest, package)


def run_sweep_points():
    return {mb: migrate_with_heap(mb) for mb in HEAP_MB_POINTS}


def test_migration_scales_with_image_size(benchmark):
    points = benchmark.pedantic(run_sweep_points, rounds=1, iterations=1)
    totals = [points[mb].total_seconds for mb in HEAP_MB_POINTS]
    transfers = [points[mb].stages["transfer"] for mb in HEAP_MB_POINTS]
    non_transfer = [points[mb].non_transfer_seconds for mb in HEAP_MB_POINTS]

    # Monotone in image size.
    assert totals == sorted(totals)
    assert transfers == sorted(transfers)

    # Linear scaling: time per transferred MB is roughly constant.
    rates = [transfers[i]
             / units.to_mb(points[mb].transferred_bytes)
             for i, mb in enumerate(HEAP_MB_POINTS)]
    assert max(rates) / min(rates) < 1.4

    # The non-transfer floor grows far slower than transfer does.
    assert (non_transfer[-1] - non_transfer[0]) < \
        (transfers[-1] - transfers[0]) / 4

    # Transfer dominance sets in as images grow.
    small_share = points[2].stage_fraction("transfer")
    large_share = points[32].stage_fraction("transfer")
    assert large_share > small_share
    assert large_share > 0.55

    rows = [(f"{mb} MB",
             f"{units.to_mb(points[mb].transferred_bytes):.1f} MB",
             f"{points[mb].total_seconds:.2f}",
             f"{points[mb].stage_fraction('transfer') * 100:.0f}%")
            for mb in HEAP_MB_POINTS]
    print()
    print(format_table(("heap", "transferred", "total s", "transfer share"),
                       rows, title="Sweep: migration time vs image size"))
