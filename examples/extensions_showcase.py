"""The §3.4 extension sketches, demonstrated.

The published Flux prototype refuses Facebook (multi-process) and
Subway Surfers (preserved EGL context), falls back from GPS to the
network provider, and refuses apps holding common SD-card files open.
The paper sketches fixes for each; this repo implements them behind
``FluxExtensions`` flags.  This example shows the same migrations
refused under prototype semantics and succeeding with extensions on.

Run:  python examples/extensions_showcase.py
"""

from repro.android.device import Device
from repro.android.hardware import NEXUS_4, NEXUS_7_2012, NEXUS_7_2013
from repro.apps import app_by_title
from repro.core.cria.errors import MigrationError
from repro.core.extensions import FluxExtensions
from repro.sim import SimClock, units


def fresh_pair(home_profile, guest_profile, seed_name):
    from repro.sim.rng import RngFactory
    clock = SimClock()
    factory = RngFactory(hash(seed_name) & 0xFFFF)
    home = Device(home_profile, clock, factory, name="home")
    guest = Device(guest_profile, clock, factory, name="guest")
    return home, guest


def attempt(home, guest, package, extensions):
    try:
        report = home.migration_service.migrate(guest, package,
                                                extensions=extensions)
        return f"migrated in {report.total_seconds:.2f}s"
    except MigrationError as error:
        return f"REFUSED ({error.reason.value})"


def main() -> None:
    # 1. Multi-process: Facebook.
    facebook = app_by_title("Facebook")
    home, guest = fresh_pair(NEXUS_4, NEXUS_7_2013, "fb")
    facebook.install_and_launch(home)
    home.pairing_service.pair(guest)
    print("Facebook (2 processes):")
    print(f"  prototype:              "
          f"{attempt(home, guest, facebook.package, FluxExtensions.none())}")
    print(f"  + multi_process:        "
          f"{attempt(home, guest, facebook.package, FluxExtensions(multi_process=True))}")
    procs = guest.kernel.processes_of_package(facebook.package)
    print(f"  processes on guest:     {sorted(p.name for p in procs)}")

    # 2. Preserved EGL context: Subway Surfers.
    subway = app_by_title("Subway Surfers")
    home, guest = fresh_pair(NEXUS_7_2012, NEXUS_4, "ss")
    thread = subway.install_and_launch(home)
    home.pairing_service.pair(guest)
    print("\nSubway Surfers (setPreserveEGLContextOnPause):")
    print(f"  prototype:              "
          f"{attempt(home, guest, subway.package, FluxExtensions.none())}")
    print(f"  + gl_record_replay:     "
          f"{attempt(home, guest, subway.package, FluxExtensions(gl_record_replay=True))}")
    replayed = guest.tracer.events("glreplay", "replayed")
    if replayed:
        print(f"  GL state re-uploaded:   "
              f"{units.format_size(replayed[0].detail['bytes'])} onto "
              f"{guest.profile.gpu_name} (was {home.profile.gpu_name})")

    # 3. GPS tether: a navigation session moving to a GPS-less tablet.
    groupon = app_by_title("GroupOn")
    home, guest = fresh_pair(NEXUS_4, NEXUS_7_2012, "gps")
    thread = groupon.install_and_launch(home)
    home.service("location").report_fix("gps", 44.84, -0.58)  # Bordeaux
    home.pairing_service.pair(guest)
    print("\nGroupOn with a GPS fix, guest has no GPS:")
    report = home.migration_service.migrate(
        guest, groupon.package, extensions=FluxExtensions(gps_tether=True))
    for note in report.replay.adaptations:
        print(f"  {note}")
    location = thread.context.get_system_service("location")
    fix = location.getLastKnownLocation("gps")
    if fix:
        print(f"  fix via tether:         ({fix.latitude}, {fix.longitude})")


if __name__ == "__main__":
    main()
