"""Quickstart: migrate a running app between two simulated devices.

Boots a Nexus 4 (home) and a Nexus 7 2013 (guest) on a shared virtual
clock, installs a small app, posts some state into system services,
pairs the devices, and migrates the app — printing the five-stage
timing breakdown and proving the app's state followed it.

Run:  python examples/quickstart.py
"""

from repro.android.app import Activity, Intent, Notification, PendingIntent
from repro.android.app.views import View, ViewGroup
from repro.android.device import Device
from repro.android.hardware import NEXUS_4, NEXUS_7_2013
from repro.android.storage import ApkFile
from repro.sim import SimClock, units


class NotesActivity(Activity):
    """A tiny notes app: a list UI plus a reminder alarm."""

    def on_create(self, saved_state):
        root = ViewGroup("notes-root")
        for i in range(5):
            root.add_view(View(f"note-{i}"))
        self.set_content_view(root)
        self.saved_state.setdefault("open_note", "shopping list")


def main() -> None:
    clock = SimClock()
    home = Device(NEXUS_4, clock, name="phone")
    guest = Device(NEXUS_7_2013, clock, name="tablet")
    print(f"home : {home.profile}")
    print(f"guest: {guest.profile}")

    # Install and use the app on the phone.
    package = "com.example.notes"
    home.install_app(ApkFile(package, 1, units.mb(4)))
    thread = home.launch_app(package, NotesActivity)
    notifications = thread.context.get_system_service("notification")
    notifications.notify(1, Notification("Notes", "1 reminder pending"))
    alarms = thread.context.get_system_service("alarm")
    reminder = PendingIntent(package, Intent("com.example.notes.REMIND"))
    alarms.set(alarms.RTC_WAKEUP, clock.now + 3600.0, reminder)

    # One-time pairing, then migrate.
    pairing = home.pairing_service.pair(guest)
    print(f"\npaired: {units.format_size(pairing.constant_bytes_compressed)} "
          f"of framework delta crossed the wire "
          f"({units.format_size(pairing.constant_bytes_total)} constant data)")

    report = home.migration_service.migrate(guest, package)
    print(f"\nmigrated {package} in {report.total_seconds:.2f}s "
          f"({units.format_size(report.transferred_bytes)} transferred):")
    for stage, seconds in report.stages.items():
        print(f"  {stage:13s} {seconds:6.3f}s "
              f"({report.stage_fraction(stage) * 100:4.1f}%)")

    # The state followed the app.
    snapshot = guest.service("notification").snapshot(package)
    alarms_after = guest.service("alarm").snapshot(package)
    activity = next(iter(thread.activities.values()))
    print(f"\non the tablet now: {guest.running_packages()}")
    print(f"  notification: {snapshot['active']}")
    print(f"  alarm:        {alarms_after['alarms']}")
    print(f"  open note:    {activity.saved_state['open_note']!r}")
    print(f"  UI sized for: {activity.window.screen}")
    assert home.running_packages() == []


if __name__ == "__main__":
    main()
