"""Scenario 4 (paper §1): pass an app around a meeting.

A document of WhatsApp state travels phone -> tablet A -> tablet B ->
back home, accumulating contributions on every device.  Works because
the replay engine re-records replayed calls on each guest, so every
device's log can seed the *next* migration, and because migrating back
home resolves the cross-device consistency mark.

Run:  python examples/meeting_pass_around.py
"""

from repro.android.app.notification import Notification
from repro.android.device import Device
from repro.android.hardware import NEXUS_4, NEXUS_7_2012, NEXUS_7_2013
from repro.apps import app_by_title
from repro.sim import SimClock


def contribute(thread, author: str, note_id: int) -> None:
    nm = thread.context.get_system_service("notification")
    nm.notify(note_id, Notification("WhatsApp", f"{author}: my edits"))
    activity = next(iter(thread.activities.values()))
    activity.saved_state.setdefault("contributors", []).append(author)


def main() -> None:
    clock = SimClock()
    phone = Device(NEXUS_4, clock, name="alice-phone")
    tablet_a = Device(NEXUS_7_2013, clock, name="bob-tablet")
    tablet_b = Device(NEXUS_7_2012, clock, name="carol-tablet")

    app = app_by_title("WhatsApp")
    thread = app.install_and_launch(phone)
    contribute(thread, "alice", 100)

    # Everyone pairs ahead of the meeting.
    phone.pairing_service.pair(tablet_a)

    hops = [(phone, tablet_a, "bob", 101),
            (tablet_a, tablet_b, "carol", 102),
            (tablet_b, phone, "alice-again", 103)]
    for source, target, author, note_id in hops:
        if not source.pairing_service.is_paired_with(target.name):
            source.pairing_service.pair(target)
        report = source.migration_service.migrate(target, app.package)
        contribute(thread, author, note_id)
        print(f"{source.name:12s} -> {target.name:12s}  "
              f"{report.total_seconds:5.2f}s  "
              f"log replayed: {report.replay.total_handled} calls")

    activity = next(iter(thread.activities.values()))
    print(f"\nback on {phone.name}: "
          f"contributors = {activity.saved_state['contributors']}")
    notes = phone.service("notification").snapshot(app.package)["active"]
    print(f"accumulated notifications: {sorted(notes)}")
    assert len(notes) >= 4
    # The round trip resolved the home device's consistency mark.
    phone.consistency.mark_returned(app.package)
    phone.consistency.check_native_start(app.package)
    print("consistency: app is home again, no conflict on native start")


if __name__ == "__main__":
    main()
