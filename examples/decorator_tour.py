"""A tour of the Flux decoration language (paper §3.2, Table 1).

Defines a toy music-player service in decorated AIDL, compiles it with
the AIDL compiler, and shows Selective Record pruning the call log live:
what's left after a burst of calls is exactly the state a guest device
would need to reproduce the service's current state.

Run:  python examples/decorator_tour.py
"""

from repro.android.aidl import InterfaceRegistry, generate_source, parse_interface
from repro.core.record import CallLog, Recorder, describe_rules
from repro.sim import SimClock


PLAYER_AIDL = """
interface IMusicPlayerService {
    // Only the latest track matters: replaying old ones would be wrong.
    @record {
        @drop this;
    }
    void play(String trackId);

    // Stopping cancels the play that started it.
    @record {
        @drop this, play;
    }
    void stop();

    // Last write wins, per playlist.
    @record {
        @drop this;
        @if playlistId;
    }
    void setShuffle(int playlistId, boolean enabled);

    // Enqueue/dequeue of the same track annihilate (by either key).
    @record {
        @drop this;
        @if trackId;
        @elif slot;
    }
    void enqueue(String trackId, int slot);

    @record {
        @drop this, enqueue;
        @if trackId;
    }
    void dequeue(String trackId);

    // Pure query: not recorded at all.
    String nowPlaying();
}
"""


class FakeRemote:
    def transact(self, method, *args):
        return None


def main() -> None:
    iface = parse_interface(PLAYER_AIDL)
    print("compiled interface:", iface.name)
    for method in iface.methods:
        mark = "@record" if method.recorded else "       "
        print(f"  {mark} {method.signature()}")
        if method.decoration:
            for rule in describe_rules(method.decoration):
                print(f"           -> {rule}")

    print(f"\ndecoration LOC: {iface.decoration_loc}; "
          f"generated proxy/stub source:")
    for line in generate_source(iface).splitlines()[:14]:
        print(f"    {line}")
    print("    ...")

    registry = InterfaceRegistry()
    registry.compile_document(
        __import__("repro.android.aidl.parser", fromlist=["parse"])
        .parse(PLAYER_AIDL))
    recorder = Recorder(registry, CallLog(), SimClock())
    proxy = registry.get(iface.name).new_proxy(
        FakeRemote(), recorder.bind_app("com.example.player"))

    print("\nuser session:")
    session = [
        ("play", ("track-a",)),
        ("enqueue", ("track-b", 0)),
        ("enqueue", ("track-c", 1)),
        ("setShuffle", (7, True)),
        ("play", ("track-b",)),          # replaces play(track-a)
        ("dequeue", ("track-c",)),       # annihilates enqueue(track-c)
        ("setShuffle", (7, False)),      # replaces setShuffle(7, True)
        ("nowPlaying", ()),              # never recorded
    ]
    for method, args in session:
        getattr(proxy, method)(*args)
        print(f"  call {method}{args}")

    entries = recorder.extract_app_log("com.example.player")
    print(f"\nlog after pruning ({recorder.calls_seen} decorated calls seen, "
          f"{len(entries)} kept, {recorder.calls_suppressed} suppressed):")
    for entry in entries:
        shown = {k: v for k, v in entry.args.items() if k != "__target__"}
        print(f"  #{entry.seq} {entry.method}({shown})")
    assert [e.method for e in entries] == ["enqueue", "play", "setShuffle"]
    print("\nexactly the calls a guest device needs to rebuild the state.")


if __name__ == "__main__":
    main()
