"""Scenario 3 (paper §1): the tablet battery is dying mid-game.

A 3D-accelerated game (Bubble Witch Saga) is running on a Nexus 7
(2012).  The battery-low broadcast arrives; the user migrates to a
Nexus 4 — a device with a *different GPU* (ULP GeForce -> Adreno 320)
and a different kernel (3.1 -> 3.4).  The GL context cannot travel:
Flux's preparation tears it down on the source and conditional
initialization rebuilds it against the guest's vendor library.

Run:  python examples/battery_rescue.py
"""

from repro.android.app.intent import ACTION_BATTERY_LOW, Intent
from repro.android.device import Device
from repro.android.hardware import NEXUS_4, NEXUS_7_2012
from repro.apps import app_by_title
from repro.sim import SimClock, units


def main() -> None:
    clock = SimClock()
    tablet = Device(NEXUS_7_2012, clock, name="tablet")
    phone = Device(NEXUS_4, clock, name="phone")
    print(f"playing on: {tablet.profile} / GPU {tablet.profile.gpu_name}")

    game = app_by_title("Bubble Witch Saga")
    thread = game.install_and_launch(tablet)
    tablet.pairing_service.pair(phone)

    process = thread.process
    print(f"  live GL contexts: "
          f"{tablet.vendor_gl.live_context_count(process.pid)}")
    print(f"  GPU memory (pmem): "
          f"{units.format_size(sum(a.size for a in tablet.kernel.pmem.allocations_of(process.pid)))}")

    # The battery-low broadcast is what prompts the user to act.
    warned = []
    thread.register_receiver(warned.append, [ACTION_BATTERY_LOW])
    tablet.activity_service.broadcast(Intent(ACTION_BATTERY_LOW, level=5))
    assert warned, "battery warning should reach the app"
    print("\nbattery low! migrating to the phone...")

    report = tablet.migration_service.migrate(phone, game.package)
    print(f"  done in {report.total_seconds:.2f}s "
          f"({units.format_size(report.transferred_bytes)})")

    activity = next(iter(thread.activities.values()))
    gl_views = activity.view_root.gl_surface_views()
    print(f"\nresumed on: {phone.profile} / GPU {phone.profile.gpu_name}")
    print(f"  level {activity.saved_state['level']}, "
          f"score {activity.saved_state['score']} — state intact")
    print(f"  GL context rebuilt on guest vendor lib: "
          f"{all(v.has_live_context for v in gl_views)}")
    print(f"  contexts on phone: "
          f"{phone.vendor_gl.live_context_count(process.pid)}; "
          f"left on tablet: "
          f"{tablet.vendor_gl.live_context_count(process.pid)}")
    print(f"  kernel {tablet.kernel.version} -> {phone.kernel.version}, "
          f"pid kept via namespace: "
          f"{report.replay is not None and process.pid > 0}")


if __name__ == "__main__":
    main()
