"""Scenario 1 (paper §1): start a movie on the phone, finish on the tablet.

Uses the real Netflix workload app from the Table 3 catalog: it holds a
wakelock, audio focus, a raised media volume, and a connectivity
receiver — all of which must survive the hand-off.  The migration is
triggered the way a user would: a two-finger vertical swipe.

Run:  python examples/movie_handoff.py
"""

from repro.android.device import Device
from repro.android.hardware import NEXUS_4, NEXUS_7_2013
from repro.apps import app_by_title
from repro.core.migration.gesture import MigrationGestureTrigger
from repro.sim import SimClock, units


def main() -> None:
    clock = SimClock()
    phone = Device(NEXUS_4, clock, name="phone")
    tablet = Device(NEXUS_7_2013, clock, name="tablet")

    netflix = app_by_title("Netflix")
    thread = netflix.install_and_launch(phone)
    package = netflix.package
    phone.pairing_service.pair(tablet)

    audio = thread.context.get_system_service("audio")
    print("watching on the phone:")
    print(f"  audio focus: {phone.service('audio').focus_holder()}")
    print(f"  music volume: {audio.get_stream_volume(audio.STREAM_MUSIC)}"
          f"/{audio.getStreamMaxVolume(audio.STREAM_MUSIC)}")
    print(f"  wakelocks: {phone.service('power').snapshot(package)}")

    # Two-finger swipe up -> migrate the foreground app.
    reports = []
    trigger = MigrationGestureTrigger(
        phone, lambda pkg: reports.append(
            phone.migration_service.migrate(tablet, pkg)))
    trigger.swipe("up", start_time=clock.now)
    (report,) = reports

    print(f"\nswiped to the tablet: {report.total_seconds:.2f}s, "
          f"{units.format_size(report.transferred_bytes)} over WiFi, "
          f"{report.replay.total_handled} service calls replayed")
    print("now on the tablet:")
    print(f"  audio focus: {tablet.service('audio').focus_holder()}")
    print(f"  music volume: {audio.get_stream_volume(audio.STREAM_MUSIC)}"
          f"/{audio.getStreamMaxVolume(audio.STREAM_MUSIC)}")
    print(f"  wakelocks: {tablet.service('power').snapshot(package)}")
    activity = next(iter(thread.activities.values()))
    print(f"  browse row restored: {activity.saved_state['browse_row']}")
    print(f"  display: {activity.window.screen} "
          f"(was {phone.profile.screen})")

    if report.replay.adaptations:
        print("  adaptations:", *report.replay.adaptations, sep="\n    ")


if __name__ == "__main__":
    main()
