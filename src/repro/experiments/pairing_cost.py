"""§4 pairing cost: constant data, hard-link savings, compressed delta.

Paper (Nexus 7 -> Nexus 7 2013, both KitKat): 215 MB of constant data
(system libraries, frameworks, apps), reduced to 123 MB after
hard-linking identical files on the target, with a 56 MB compressed
delta crossing the wire.  Per-app pairing cost scales with install size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_7_2012, NEXUS_7_2013
from repro.apps.catalog import TOP_APPS
from repro.core.migration.pairing import PairingReport
from repro.experiments.harness import format_table
from repro.sim import SimClock, units

PAPER_CONSTANT_MB = 215
PAPER_AFTER_LINK_MB = 123
PAPER_COMPRESSED_MB = 56


@dataclass
class PairingCostResult:
    constant_mb: float
    after_link_mb: float
    compressed_mb: float
    seconds: float
    per_app: List[Tuple[str, float]]    # (title, synced KB)


def run(install_apps: bool = True) -> PairingCostResult:
    clock = SimClock()
    home = Device(NEXUS_7_2012, clock, name="home")
    guest = Device(NEXUS_7_2013, clock, name="guest")
    if install_apps:
        for spec in TOP_APPS:
            spec.install(home)
    report: PairingReport = home.pairing_service.pair(guest)
    per_app = []
    for paired in report.apps:
        title = next(a.title for a in TOP_APPS
                     if a.package == paired.package)
        per_app.append((title, units.to_kb(
            paired.apk_synced_bytes + paired.data_synced_bytes)))
    return PairingCostResult(
        constant_mb=units.to_mb(report.constant_bytes_total),
        after_link_mb=units.to_mb(report.constant_bytes_after_linking),
        compressed_mb=units.to_mb(report.constant_bytes_compressed),
        seconds=report.seconds,
        per_app=per_app)


def render() -> str:
    result = run()
    rows = [
        ("constant data total", f"{result.constant_mb:.0f} MB",
         f"{PAPER_CONSTANT_MB} MB"),
        ("after hard-linking", f"{result.after_link_mb:.0f} MB",
         f"{PAPER_AFTER_LINK_MB} MB"),
        ("compressed delta", f"{result.compressed_mb:.0f} MB",
         f"{PAPER_COMPRESSED_MB} MB"),
        ("pairing time", f"{result.seconds:.1f} s", "(not reported)"),
    ]
    return format_table(("quantity", "ours", "paper"), rows,
                        title="Pairing cost, Nexus 7 -> Nexus 7 (2013)")
