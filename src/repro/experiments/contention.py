"""Contention: two concurrent migrations sharing one radio medium.

The multi-surface promise (paper §1) implies several devices re-hosting
apps over the *same* congested network at once.  The scenario layer
makes that measurable: two disjoint device pairs run the same app's
migration concurrently over a shared :class:`Medium`, whose fair-share
arbitration gives each in-flight transfer 1/n of its solo rate.

Measured here: the transfer-stage time of each concurrent migration
against its solo baseline.  With full overlap each would see exactly
half the bandwidth (2.0x); the observed slowdown sits a little below
because the stages that do not touch the wire (preparation, checkpoint,
restore, reintegration) never contend, so the transfers only partially
overlap.  Total wire bytes are conserved — contention spreads work over
wall time, it does not create or destroy it.  The merged event log is
deterministic: rerunning the scenario (in any submission order)
reproduces the identical interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS
from repro.apps.catalog import MIGRATABLE_APPS
from repro.experiments.harness import format_table
from repro.experiments.scenario import (
    ScenarioResult,
    ScenarioSpec,
    SessionSpec,
    run_scenario,
)

SEED = 0
APP = MIGRATABLE_APPS[0]


@dataclass
class ContentionRow:
    config: str
    session: str
    transfer_seconds: float
    slowdown: float
    total_seconds: float
    wire_bytes: int
    #: Wall-time decomposition: queued + dilation + own work == wall.
    wall_seconds: float = 0.0
    queued_seconds: float = 0.0
    dilation_seconds: float = 0.0
    own_seconds: float = 0.0


@dataclass
class ContentionResult:
    rows: List[ContentionRow]
    solo_transfer_seconds: float
    events_digest: str
    #: Two runs with opposite submission orders produced identical
    #: merged event logs (the determinism contract, checked every run).
    deterministic: bool


def _world(sessions) -> ScenarioSpec:
    home_p, guest_p = PAPER_DEVICE_PAIRS[0]
    return ScenarioSpec(
        devices=(("home1", home_p), ("guest1", guest_p),
                 ("home2", home_p), ("guest2", guest_p)),
        sessions=tuple(sessions), seed=SEED)


def _events_digest(result: ScenarioResult) -> str:
    import hashlib
    import json

    payload = json.dumps(result.events, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def run(seed: int = SEED) -> ContentionResult:
    home_p, guest_p = PAPER_DEVICE_PAIRS[0]
    solo = run_scenario(ScenarioSpec(
        devices=(("home1", home_p), ("guest1", guest_p)),
        sessions=(SessionSpec("home1", "guest1", APP.package),),
        seed=seed))
    solo_transfer = solo.reports[APP.package].stages["transfer"]

    routes = [("home1", "guest1"), ("home2", "guest2")]
    sessions = [SessionSpec(h, g, APP.package) for h, g in routes]
    both = run_scenario(_world(sessions))
    reversed_order = run_scenario(_world(reversed(sessions)))
    digest = _events_digest(both)
    deterministic = digest == _events_digest(reversed_order)

    rows = []
    for outcome in both.sessions:
        report = outcome.report
        profile = outcome.wait_profile
        # The decomposition invariant this experiment exists to assert:
        # the measured terms reassemble the observed wall time exactly.
        decomposed = (profile["admission_queue_s"]
                      + profile["resource_wait_s"]
                      + profile["link_dilation_s"] + profile["active_s"])
        if abs(decomposed - profile["wall_s"]) > 1e-6:
            raise AssertionError(
                f"wait profile of {outcome.session} does not sum to wall "
                f"time: {decomposed!r} != {profile['wall_s']!r}")
        rows.append(ContentionRow(
            config=f"{outcome.spec.home}->{outcome.spec.guest}",
            session=outcome.session,
            transfer_seconds=report.stages["transfer"],
            slowdown=report.stages["transfer"] / solo_transfer,
            total_seconds=report.total_seconds,
            wire_bytes=report.transferred_bytes,
            wall_seconds=profile["wall_s"],
            queued_seconds=profile["admission_queue_s"]
            + profile["resource_wait_s"],
            dilation_seconds=profile["link_dilation_s"],
            own_seconds=profile["active_s"]))
    return ContentionResult(rows=rows,
                            solo_transfer_seconds=solo_transfer,
                            events_digest=digest,
                            deterministic=deterministic)


def render() -> str:
    result = run()
    headers = ["route", "session", "transfer (s)", "slowdown",
               "queued (s)", "dilated (s)", "own work (s)", "wall (s)",
               "wire bytes"]
    rows = [[r.config, r.session, f"{r.transfer_seconds:.3f}",
             f"x{r.slowdown:.2f}", f"{r.queued_seconds:.3f}",
             f"{r.dilation_seconds:.3f}", f"{r.own_seconds:.3f}",
             f"{r.wall_seconds:.3f}",
             f"{r.wire_bytes:,}"] for r in result.rows]
    lines = [
        f"Contention: 2 concurrent {APP.title} migrations on one medium "
        f"(solo transfer {result.solo_transfer_seconds:.3f}s)",
        format_table(headers, rows),
        "each row: queued + dilated + own work == wall (asserted)",
        f"merged event log digest {result.events_digest} "
        f"(submission-order independent: {result.deterministic})",
    ]
    return "\n".join(lines)
