"""Multi-device scenario runner: staggered concurrent migrations.

A *scenario* is a world — one virtual clock, one seeded RNG tree, N
booted devices, one shared radio medium — plus M migration sessions,
each with a start time and a (home, guest, package) route.  Sessions
run as cooperative generators on the discrete-event
:class:`~repro.sim.scheduler.Scheduler`: a session suspends at every
clock charge, so two migrations in flight at once interleave their
stages and contend for the shared medium's bandwidth fairly.

Admission control guards each device with an exclusive
:class:`~repro.sim.scheduler.Resource`: a device hosts at most one
migration at a time (its tracer span stack and flight-recorder stage
context are per-device, so overlapping migrations on one device would
cross-contaminate attribution — exactly what the guard models).  Policy
``queue`` waits for the endpoints to free up, FIFO; ``refuse`` records
a ``DEVICE_BUSY`` refusal instead.

Determinism contract: sessions are executed in *canonical order* —
sorted by ``(start, home, guest, package)`` — regardless of the order
``ScenarioSpec.sessions`` lists them, so results are independent of
submission order.  A single-session scenario is byte-identical
(reports, metrics snapshots, event streams) to :func:`run_pair` on the
same profiles and seed: the same boots, installs, pairing, link
construction and stage pipeline run in the same order on the same
clock; the scheduler adds no charges of its own.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.android.device import Device
from repro.android.hardware.profiles import DeviceProfile
from repro.android.net.link import Link, Medium, link_between
from repro.apps.catalog import app_by_package
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.extensions import FluxExtensions
from repro.core.migration.migration import MigrationReport
from repro.sim import SimClock
from repro.sim.events import EVENTS_ENV, FlightRecorder, merge_streams
from repro.sim.metrics import merge_snapshots
from repro.sim.rng import RngFactory
from repro.sim.scheduler import Resource, Scheduler, Session
from repro.sim.timeline import (
    Timeline,
    chrome_counter_events,
    timeline_enabled,
)


class ScenarioError(Exception):
    pass


ADMISSION_POLICIES = ("queue", "refuse")


@dataclass(frozen=True)
class SessionSpec:
    """One requested migration: route, package, start time."""

    home: str
    guest: str
    package: str
    start: float = 0.0
    extensions: Optional[FluxExtensions] = None
    #: Frozen, JSON-able key/values describing the placement decision
    #: that chose this route (``PlacementDecision.attrs()``); when set,
    #: the session emits a ``placement.decision`` event on the world
    #: recorder at submit time, so ``flux-sim explain --why`` can say
    #: why the migration landed where it did.
    placement: Optional[Tuple[Tuple[str, object], ...]] = None

    @property
    def canonical_key(self) -> Tuple[float, str, str, str]:
        return (self.start, self.home, self.guest, self.package)


@dataclass(frozen=True)
class ScenarioSpec:
    """A world (named devices) plus its migration sessions."""

    devices: Tuple[Tuple[str, DeviceProfile], ...]
    sessions: Tuple[SessionSpec, ...]
    seed: int = 0
    admission: str = "queue"
    #: All links share one radio medium, so concurrent transfers
    #: contend fairly; False gives each link a private, uncontended one.
    shared_medium: bool = True

    def __post_init__(self) -> None:
        if self.admission not in ADMISSION_POLICIES:
            raise ScenarioError(
                f"unknown admission policy {self.admission!r} "
                f"(use one of {ADMISSION_POLICIES})")
        names = [name for name, _ in self.devices]
        if len(set(names)) != len(names):
            raise ScenarioError(f"duplicate device names in {names}")
        for session in self.sessions:
            if session.home not in names or session.guest not in names:
                raise ScenarioError(
                    f"session {session.home}->{session.guest} references "
                    f"unknown devices (world has {names})")
            if session.home == session.guest:
                raise ScenarioError(
                    f"session migrates {session.package} from "
                    f"{session.home} to itself")
            if session.start < 0:
                raise ScenarioError(
                    f"negative start time {session.start!r}")
        # A device launches-and-migrates each package at most once per
        # scenario: a second (home, package) session would re-migrate an
        # app that already left the device.  Catch it here, with names,
        # instead of as a confusing late scheduler-time failure.
        routes = [(s.home, s.package) for s in self.sessions]
        duplicates = sorted({route for route in routes
                             if routes.count(route) > 1})
        if duplicates:
            listed = ", ".join(f"{home}:{package}"
                               for home, package in duplicates)
            raise ScenarioError(
                f"duplicate (home, package) sessions: {listed} — a "
                f"device can launch and migrate each package once per "
                f"scenario")


@dataclass
class SessionOutcome:
    """What one session did: status, report, queueing, timing."""

    spec: SessionSpec
    #: ``migrated`` | ``faulted`` | ``refused`` | ``rejected`` (the
    #: last only under admission="refuse" when an endpoint was busy).
    status: str = "pending"
    #: The deterministic session label carried on both telemetry planes
    #: (empty for rejected sessions: no migration attempt ran).
    session: str = ""
    report: Optional[MigrationReport] = None
    refusal: Optional[MigrationRefusal] = None
    refusal_detail: str = ""
    submitted: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Wall-time decomposition from the scheduler/medium ledgers:
    #: ``wall_s == admission_queue_s + resource_wait_s + link_dilation_s
    #: + active_s`` within float tolerance.  Mirrored onto the report.
    wait_profile: Optional[Dict[str, float]] = None

    @property
    def queued_seconds(self) -> float:
        """Time spent waiting for busy endpoints before starting.

        Read from the scheduler's blocked-time ledger when available
        (the measured enqueue→grant suspension), falling back to the
        started−submitted interval for outcomes without a profile.
        """
        if self.wait_profile is not None:
            return self.wait_profile["admission_queue_s"]
        if self.started is None:
            return 0.0
        return self.started - self.submitted


@dataclass
class ScenarioResult:
    """Everything a scenario produced, in canonical session order."""

    device_names: List[str]
    sessions: List[SessionOutcome]
    #: Merged snapshot over every device, in listed device order.
    metrics: Dict
    #: All devices' events causally merged (one shared clock).
    events: List[Dict]
    per_device_metrics: Dict[str, Dict] = field(default_factory=dict)
    #: The world's edge-sampled time series (shares, queue depths,
    #: active flows, sessions in flight), exported.
    timeline: Dict[str, List[List[float]]] = field(default_factory=dict)
    #: First submission to last completion across all sessions.
    makespan: float = 0.0
    #: device name -> fraction of the makespan it hosted a migration
    #: (held its admission resource).
    device_utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def reports(self) -> Dict[str, MigrationReport]:
        """package -> successful report (the run_pair-compatible view)."""
        return {o.spec.package: o.report for o in self.sessions
                if o.status == "migrated"}

    @property
    def refusals(self) -> Dict[str, MigrationRefusal]:
        return {o.spec.package: o.refusal for o in self.sessions
                if o.refusal is not None}

    def outcome_for(self, package: str) -> SessionOutcome:
        for outcome in self.sessions:
            if outcome.spec.package == package:
                return outcome
        raise KeyError(package)


class ScenarioWorld:
    """The booted world a scenario runs in."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.clock = SimClock()
        self.rng_factory = RngFactory(spec.seed)
        #: One shared time-series plane for the whole world — samples
        #: from every device, link, resource and the scheduler land on
        #: one coherent virtual timeline.
        self.timeline = Timeline(clock=self.clock,
                                 enabled=timeline_enabled())
        #: World-level flight recorder for events that belong to no one
        #: device (admission queueing happens *between* devices).  A
        #: separate stream keeps per-device event sequences — and their
        #: byte-identity contracts — untouched.
        self.events = FlightRecorder(
            clock=self.clock, device="world",
            enabled=os.environ.get(EVENTS_ENV, "1") != "0")
        self.devices: "OrderedDict[str, Device]" = OrderedDict(
            (name, Device(profile, self.clock, self.rng_factory, name=name,
                          timeline=self.timeline))
            for name, profile in spec.devices)
        self.scheduler = Scheduler(self.clock, timeline=self.timeline)
        self.medium = (Medium(self.clock, timeline=self.timeline)
                       if spec.shared_medium else None)
        self._resources = {name: Resource(name, clock=self.clock,
                                          timeline=self.timeline,
                                          events=self.events)
                           for name in self.devices}

    def resource(self, device_name: str) -> Resource:
        return self._resources[device_name]

    def device_utilization(self, makespan: float) -> Dict[str, float]:
        if makespan <= 0:
            return {name: 0.0 for name in self.devices}
        return {name: self._resources[name].held_seconds / makespan
                for name in self.devices}

    def link_for(self, home: Device, guest: Device) -> Link:
        """A fresh link per migration, exactly as the service default
        builds one (same RNG stream: streams restart per derivation),
        attached to the world's shared medium."""
        link = link_between(home.profile, guest.profile, home.rng_factory,
                            metrics=home.metrics, events=home.events,
                            timeline=self.timeline)
        link.medium = self.medium
        return link


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Boot the world, run every session to completion, collect results."""
    world = ScenarioWorld(spec)
    ordered = sorted(spec.sessions, key=lambda s: s.canonical_key)

    # Install every session's app on its home device up front (idempotent
    # per device), then pair each route once — mirroring run_pair's
    # install-all-then-pair sequencing.
    for session in ordered:
        app_by_package(session.package).install(world.devices[session.home])
    paired = set()
    for session in ordered:
        route = (session.home, session.guest)
        if route in paired:
            continue
        home, guest = world.devices[session.home], world.devices[session.guest]
        if not home.pairing_service.is_paired_with(guest.name):
            home.pairing_service.pair(guest)
        paired.add(route)

    # Session starts are offsets from the end of world setup (booting,
    # installing and pairing consume virtual time of their own).
    base = world.clock.now
    outcomes = [SessionOutcome(spec=session,
                               submitted=base + session.start)
                for session in ordered]
    handles = [world.scheduler.spawn(
        _session(world, outcome),
        name=f"{outcome.spec.home}->{outcome.spec.guest}:"
             f"{outcome.spec.package}",
        at=outcome.submitted) for outcome in outcomes]
    world.scheduler.run()

    for session_handle in world.scheduler.sessions:
        if session_handle.error is not None:
            raise session_handle.error

    for outcome, handle in zip(outcomes, handles):
        _attribute_wait(world, outcome, handle)

    names = list(world.devices)
    per_device = {name: device.metrics.snapshot()
                  for name, device in world.devices.items()}
    metrics = merge_snapshots(per_device[name] for name in names)
    events = merge_streams(*(device.events.export()
                             for device in world.devices.values()),
                           world.events.export())
    finished = [o.finished for o in outcomes if o.finished is not None]
    makespan = (max(finished) - min(o.submitted for o in outcomes)
                if finished else 0.0)
    return ScenarioResult(device_names=names, sessions=outcomes,
                          metrics=metrics, events=events,
                          per_device_metrics=per_device,
                          timeline=world.timeline.export(),
                          makespan=makespan,
                          device_utilization=world.device_utilization(
                              makespan))


def _attribute_wait(world: ScenarioWorld, outcome: SessionOutcome,
                    handle: Session) -> None:
    """Decompose the session's wall time from the measured ledgers.

    Every term is a *measurement*, not a residual: admission queueing is
    the scheduler's blocked-on-resource time, dilation is the medium's
    per-session stretch attribution, and active time is the session's
    runnable time plus the solo (undilated) share of its flow waits —
    so the four terms sum to the wall interval exactly (modulo float
    addition order), which the contention experiment asserts.
    """
    if outcome.finished is None:
        return
    wall = outcome.finished - outcome.submitted
    admission = handle.blocked.get("resource", 0.0)
    blocked_flow = handle.blocked.get("flow", 0.0)
    blocked_other = sum(seconds for kind, seconds in handle.blocked.items()
                        if kind not in ("resource", "flow"))
    dilation = (world.medium.dilation_for(outcome.session)
                if world.medium is not None and outcome.session else 0.0)
    profile = {
        "wall_s": wall,
        "admission_queue_s": admission,
        # Post-admission resource stalls; sessions today only queue on
        # device resources before starting, so this is structurally 0.0
        # (kept as its own term so the decomposition names every state
        # the ledger distinguishes).
        "resource_wait_s": 0.0,
        "link_dilation_s": dilation,
        "active_s": handle.working_s + (blocked_flow - dilation)
        + blocked_other,
    }
    outcome.wait_profile = profile
    if outcome.report is not None:
        outcome.report.wait_profile = dict(profile)


def scenario_metrics_document(spec: ScenarioSpec,
                              result: ScenarioResult) -> Dict:
    """The scenario's merged metrics + per-session outcomes, JSON-ready.

    This is what ``flux-sim scenario --metrics-out`` writes and what a
    scenario run bundle stores as ``metrics.json``; the per-session
    rows carry the wait profiles the diff engine attributes contention
    regressions with.
    """
    from repro.sim.metrics import rollup_counters
    sessions = []
    for outcome in result.sessions:
        report = outcome.report
        sessions.append({
            "home": outcome.spec.home,
            "guest": outcome.spec.guest,
            "package": outcome.spec.package,
            "status": outcome.status,
            "session": outcome.session or None,
            "refusal": outcome.refusal.value if outcome.refusal else None,
            "submitted": round(outcome.submitted, 6),
            "queued_seconds": round(outcome.queued_seconds, 6),
            "wait_profile": ({k: round(v, 6) for k, v
                              in sorted(outcome.wait_profile.items())}
                             if outcome.wait_profile else None),
            "stages": ({s: round(v, 6) for s, v in report.stages.items()}
                       if report is not None else {}),
            "critical_path": (report.critical_path
                              if report is not None else []),
            "faulted_stage": (report.faulted_stage
                              if report is not None else None),
            "total_seconds": (round(report.total_seconds, 6)
                              if report is not None else None),
            "transferred_bytes": (report.transferred_bytes
                                  if report is not None else 0),
        })
    return {
        "schema": 1,
        "scenario": {
            "devices": [name for name, _ in spec.devices],
            "admission": spec.admission,
            "seed": spec.seed,
            "makespan": round(result.makespan, 6),
            "device_utilization": {d: round(u, 6) for d, u in
                                   sorted(result.device_utilization.items())},
            "sessions": sessions,
        },
        "metrics": result.metrics,
        "rollup": rollup_counters(result.metrics),
    }


def scenario_trace_document(result: ScenarioResult) -> List[Dict]:
    """Chrome-trace view of a scenario: one track per session, stage
    spans from the causal event log, admission instants, and a counter
    track per timeline series (shares, queue depths, active flows).

    Rebuilt entirely from the result's event log and timeline — the
    same sources ``flux-sim explain`` reads — so the trace and the
    blame breakdown can never disagree.
    """
    doc: List[Dict] = []
    tids: Dict[str, int] = {}
    for index, outcome in enumerate(result.sessions, start=1):
        who = (f"{outcome.spec.home}->{outcome.spec.guest}:"
               f"{outcome.spec.package}")
        tids[who] = index
        if outcome.session:
            tids[outcome.session] = index
        doc.append({"name": "thread_name", "ph": "M", "pid": 1,
                    "tid": index,
                    "args": {"name": outcome.session or f"({outcome.status}) "
                             f"{who}"}})
    open_stages: Dict[Tuple[str, str], float] = {}
    for event in result.events:
        attrs = event.get("attrs", {})
        kind = event["kind"]
        session = attrs.get("session")
        if kind == "stage.start" and session in tids:
            open_stages[(session, attrs.get("stage", "?"))] = event["t"]
        elif kind == "stage.end" and session in tids:
            stage = attrs.get("stage", "?")
            start = open_stages.pop((session, stage), None)
            if start is not None:
                doc.append({"name": stage, "cat": "stage", "ph": "X",
                            "pid": 1, "tid": tids[session],
                            "ts": round(start * 1e6, 3),
                            "dur": round((event["t"] - start) * 1e6, 3),
                            "args": {"session": session}})
        elif kind in ("resource.enqueue", "resource.grant"):
            who = attrs.get("who")
            if who in tids:
                doc.append({"name": kind, "cat": "admission", "ph": "i",
                            "pid": 1, "tid": tids[who], "s": "t",
                            "ts": round(event["t"] * 1e6, 3),
                            "args": dict(attrs)})
    doc.extend(chrome_counter_events(result.timeline))
    return doc


def _session(world: ScenarioWorld, outcome: SessionOutcome):
    """One migration as a cooperative session generator.

    Endpoint resources are acquired in sorted-name order (ordered
    acquisition: no deadlock possible) before any device state is
    touched; the workload launch and the migration run while both are
    held, and both release whatever happens.
    """
    spec = outcome.spec
    home, guest = world.devices[spec.home], world.devices[spec.guest]
    who = f"{spec.home}->{spec.guest}:{spec.package}"
    if spec.placement is not None:
        # The decision that routed this demand here, on the world
        # recorder at submit time (before any queueing), keyed by the
        # same ``who`` the admission events carry.
        world.events.emit("placement.decision", who=who,
                          **dict(spec.placement))
    first, second = sorted((spec.home, spec.guest))
    if world.spec.admission == "refuse":
        if world.resource(first).busy or world.resource(second).busy:
            outcome.status = "rejected"
            outcome.refusal = MigrationRefusal.DEVICE_BUSY
            busy = (first if world.resource(first).busy else second)
            outcome.refusal_detail = f"{busy} already hosting a migration"
            outcome.finished = world.clock.now
            return
        world.resource(first).try_acquire(who)
        world.resource(second).try_acquire(who)
    else:
        yield world.resource(first).acquire(who)
        yield world.resource(second).acquire(who)
    try:
        outcome.started = world.clock.now
        app_by_package(spec.package).install_and_launch(home)
        service = home.migration_service
        attempt = len(service.history)
        try:
            report = yield from service.migrate_steps(
                guest, spec.package, link=world.link_for(home, guest),
                extensions=spec.extensions)
        except MigrationError as error:
            failed = service.history[attempt]
            outcome.status = ("faulted" if failed.faulted_stage
                              else "refused")
            outcome.report = failed
            outcome.refusal = error.reason
            outcome.refusal_detail = error.detail
            home.terminate_app(spec.package)
        else:
            outcome.status = "migrated"
            outcome.report = report
        outcome.session = f"{home.name}/{spec.package}@{attempt}"
    finally:
        outcome.finished = world.clock.now
        world.resource(second).release()
        world.resource(first).release()
