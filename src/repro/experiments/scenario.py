"""Multi-device scenario runner: staggered concurrent migrations.

A *scenario* is a world — one virtual clock, one seeded RNG tree, N
booted devices, one shared radio medium — plus M migration sessions,
each with a start time and a (home, guest, package) route.  Sessions
run as cooperative generators on the discrete-event
:class:`~repro.sim.scheduler.Scheduler`: a session suspends at every
clock charge, so two migrations in flight at once interleave their
stages and contend for the shared medium's bandwidth fairly.

Admission control guards each device with an exclusive
:class:`~repro.sim.scheduler.Resource`: a device hosts at most one
migration at a time (its tracer span stack and flight-recorder stage
context are per-device, so overlapping migrations on one device would
cross-contaminate attribution — exactly what the guard models).  Policy
``queue`` waits for the endpoints to free up, FIFO; ``refuse`` records
a ``DEVICE_BUSY`` refusal instead.

Determinism contract: sessions are executed in *canonical order* —
sorted by ``(start, home, guest, package)`` — regardless of the order
``ScenarioSpec.sessions`` lists them, so results are independent of
submission order.  A single-session scenario is byte-identical
(reports, metrics snapshots, event streams) to :func:`run_pair` on the
same profiles and seed: the same boots, installs, pairing, link
construction and stage pipeline run in the same order on the same
clock; the scheduler adds no charges of its own.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.android.device import Device
from repro.android.hardware.profiles import DeviceProfile
from repro.android.net.link import Link, Medium, link_between
from repro.apps.catalog import app_by_package
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.extensions import FluxExtensions
from repro.core.migration.migration import MigrationReport
from repro.sim import SimClock
from repro.sim.events import merge_streams
from repro.sim.metrics import merge_snapshots
from repro.sim.rng import RngFactory
from repro.sim.scheduler import Resource, Scheduler


class ScenarioError(Exception):
    pass


ADMISSION_POLICIES = ("queue", "refuse")


@dataclass(frozen=True)
class SessionSpec:
    """One requested migration: route, package, start time."""

    home: str
    guest: str
    package: str
    start: float = 0.0
    extensions: Optional[FluxExtensions] = None

    @property
    def canonical_key(self) -> Tuple[float, str, str, str]:
        return (self.start, self.home, self.guest, self.package)


@dataclass(frozen=True)
class ScenarioSpec:
    """A world (named devices) plus its migration sessions."""

    devices: Tuple[Tuple[str, DeviceProfile], ...]
    sessions: Tuple[SessionSpec, ...]
    seed: int = 0
    admission: str = "queue"
    #: All links share one radio medium, so concurrent transfers
    #: contend fairly; False gives each link a private, uncontended one.
    shared_medium: bool = True

    def __post_init__(self) -> None:
        if self.admission not in ADMISSION_POLICIES:
            raise ScenarioError(
                f"unknown admission policy {self.admission!r} "
                f"(use one of {ADMISSION_POLICIES})")
        names = [name for name, _ in self.devices]
        if len(set(names)) != len(names):
            raise ScenarioError(f"duplicate device names in {names}")
        for session in self.sessions:
            if session.home not in names or session.guest not in names:
                raise ScenarioError(
                    f"session {session.home}->{session.guest} references "
                    f"unknown devices (world has {names})")
            if session.home == session.guest:
                raise ScenarioError(
                    f"session migrates {session.package} from "
                    f"{session.home} to itself")
            if session.start < 0:
                raise ScenarioError(
                    f"negative start time {session.start!r}")


@dataclass
class SessionOutcome:
    """What one session did: status, report, queueing, timing."""

    spec: SessionSpec
    #: ``migrated`` | ``faulted`` | ``refused`` | ``rejected`` (the
    #: last only under admission="refuse" when an endpoint was busy).
    status: str = "pending"
    #: The deterministic session label carried on both telemetry planes
    #: (empty for rejected sessions: no migration attempt ran).
    session: str = ""
    report: Optional[MigrationReport] = None
    refusal: Optional[MigrationRefusal] = None
    refusal_detail: str = ""
    submitted: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None

    @property
    def queued_seconds(self) -> float:
        """Time spent waiting for busy endpoints before starting."""
        if self.started is None:
            return 0.0
        return self.started - self.submitted


@dataclass
class ScenarioResult:
    """Everything a scenario produced, in canonical session order."""

    device_names: List[str]
    sessions: List[SessionOutcome]
    #: Merged snapshot over every device, in listed device order.
    metrics: Dict
    #: All devices' events causally merged (one shared clock).
    events: List[Dict]
    per_device_metrics: Dict[str, Dict] = field(default_factory=dict)

    @property
    def reports(self) -> Dict[str, MigrationReport]:
        """package -> successful report (the run_pair-compatible view)."""
        return {o.spec.package: o.report for o in self.sessions
                if o.status == "migrated"}

    @property
    def refusals(self) -> Dict[str, MigrationRefusal]:
        return {o.spec.package: o.refusal for o in self.sessions
                if o.refusal is not None}

    def outcome_for(self, package: str) -> SessionOutcome:
        for outcome in self.sessions:
            if outcome.spec.package == package:
                return outcome
        raise KeyError(package)


class ScenarioWorld:
    """The booted world a scenario runs in."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.clock = SimClock()
        self.rng_factory = RngFactory(spec.seed)
        self.devices: "OrderedDict[str, Device]" = OrderedDict(
            (name, Device(profile, self.clock, self.rng_factory, name=name))
            for name, profile in spec.devices)
        self.scheduler = Scheduler(self.clock)
        self.medium = Medium(self.clock) if spec.shared_medium else None
        self._resources = {name: Resource(name) for name in self.devices}

    def resource(self, device_name: str) -> Resource:
        return self._resources[device_name]

    def link_for(self, home: Device, guest: Device) -> Link:
        """A fresh link per migration, exactly as the service default
        builds one (same RNG stream: streams restart per derivation),
        attached to the world's shared medium."""
        link = link_between(home.profile, guest.profile, home.rng_factory,
                            metrics=home.metrics, events=home.events)
        link.medium = self.medium
        return link


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Boot the world, run every session to completion, collect results."""
    world = ScenarioWorld(spec)
    ordered = sorted(spec.sessions, key=lambda s: s.canonical_key)

    # Install every session's app on its home device up front (idempotent
    # per device), then pair each route once — mirroring run_pair's
    # install-all-then-pair sequencing.
    for session in ordered:
        app_by_package(session.package).install(world.devices[session.home])
    paired = set()
    for session in ordered:
        route = (session.home, session.guest)
        if route in paired:
            continue
        home, guest = world.devices[session.home], world.devices[session.guest]
        if not home.pairing_service.is_paired_with(guest.name):
            home.pairing_service.pair(guest)
        paired.add(route)

    # Session starts are offsets from the end of world setup (booting,
    # installing and pairing consume virtual time of their own).
    base = world.clock.now
    outcomes = [SessionOutcome(spec=session,
                               submitted=base + session.start)
                for session in ordered]
    for outcome in outcomes:
        world.scheduler.spawn(
            _session(world, outcome),
            name=f"{outcome.spec.home}->{outcome.spec.guest}:"
                 f"{outcome.spec.package}",
            at=outcome.submitted)
    world.scheduler.run()

    for session_handle in world.scheduler.sessions:
        if session_handle.error is not None:
            raise session_handle.error

    names = list(world.devices)
    per_device = {name: device.metrics.snapshot()
                  for name, device in world.devices.items()}
    metrics = merge_snapshots(per_device[name] for name in names)
    events = merge_streams(*(device.events.export()
                             for device in world.devices.values()))
    return ScenarioResult(device_names=names, sessions=outcomes,
                          metrics=metrics, events=events,
                          per_device_metrics=per_device)


def _session(world: ScenarioWorld, outcome: SessionOutcome):
    """One migration as a cooperative session generator.

    Endpoint resources are acquired in sorted-name order (ordered
    acquisition: no deadlock possible) before any device state is
    touched; the workload launch and the migration run while both are
    held, and both release whatever happens.
    """
    spec = outcome.spec
    home, guest = world.devices[spec.home], world.devices[spec.guest]
    who = f"{spec.home}->{spec.guest}:{spec.package}"
    first, second = sorted((spec.home, spec.guest))
    if world.spec.admission == "refuse":
        if world.resource(first).busy or world.resource(second).busy:
            outcome.status = "rejected"
            outcome.refusal = MigrationRefusal.DEVICE_BUSY
            busy = (first if world.resource(first).busy else second)
            outcome.refusal_detail = f"{busy} already hosting a migration"
            outcome.finished = world.clock.now
            return
        world.resource(first).try_acquire(who)
        world.resource(second).try_acquire(who)
    else:
        yield world.resource(first).acquire(who)
        yield world.resource(second).acquire(who)
    try:
        outcome.started = world.clock.now
        app_by_package(spec.package).install_and_launch(home)
        service = home.migration_service
        attempt = len(service.history)
        try:
            report = yield from service.migrate_steps(
                guest, spec.package, link=world.link_for(home, guest),
                extensions=spec.extensions)
        except MigrationError as error:
            failed = service.history[attempt]
            outcome.status = ("faulted" if failed.faulted_stage
                              else "refused")
            outcome.report = failed
            outcome.refusal = error.reason
            outcome.refusal_detail = error.detail
            home.terminate_app(spec.package)
        else:
            outcome.status = "migrated"
            outcome.report = report
        outcome.session = f"{home.name}/{spec.package}@{attempt}"
    finally:
        outcome.finished = world.clock.now
        world.resource(second).release()
        world.resource(first).release()
