"""Figure 15: data transferred per migration, next to APK size.

Paper claims checked here: transfers are dominated by the checkpoint
image; no migration moves more than 14 MB; the compressed data-directory
sync plus record log stay under a combined 200 KB; migration time
correlates with data transferred (and loosely with install size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.catalog import MIGRATABLE_APPS
from repro.experiments.harness import SweepResult, format_table, run_sweep
from repro.sim import units

PAPER_MAX_TRANSFER_MB = 14.0
PAPER_MAX_SYNC_PLUS_LOG_KB = 200.0


@dataclass
class Fig15Row:
    title: str
    package: str
    apk_mb: float
    transferred_mb: float          # mean across pairs
    image_mb: float
    data_sync_kb: float
    record_log_kb: float


def run(sweep: SweepResult = None) -> List[Fig15Row]:
    sweep = sweep or run_sweep()
    rows = []
    for spec in MIGRATABLE_APPS:
        reports = sweep.reports_for_app(spec.package)
        n = len(reports)
        transferred = sum(r.transferred_bytes for r in reports) / n
        image = sum(r.image_compressed_bytes for r in reports) / n
        data_sync = sum(r.data_delta_bytes for r in reports) / n
        # The record log travels inside the image; exposed separately so
        # the paper's "sync + log < 200 KB combined" claim is checkable.
        log_bytes = sum(r.record_log_bytes for r in reports) / n
        rows.append(Fig15Row(
            title=spec.title, package=spec.package, apk_mb=spec.apk_mb,
            transferred_mb=units.to_mb(int(transferred)),
            image_mb=units.to_mb(int(image)),
            data_sync_kb=units.to_kb(int(data_sync)),
            record_log_kb=units.to_kb(int(log_bytes))))
    return rows


def correlation_with_apk_size(sweep: SweepResult = None) -> float:
    """Pearson correlation between APK size and bytes transferred."""
    rows = run(sweep)
    xs = [r.apk_mb for r in rows]
    ys = [r.transferred_mb for r in rows]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x ** 0.5 * var_y ** 0.5)


def render() -> str:
    sweep = run_sweep()
    rows = run(sweep)
    table = [(r.title, f"{r.transferred_mb:.2f}", f"{r.image_mb:.2f}",
              f"{r.data_sync_kb:.0f}", f"{r.apk_mb:.1f}") for r in rows]
    text = format_table(
        ("app", "transferred MB", "image MB", "data sync KB", "APK MB"),
        table, title="Figure 15: data transferred during migration "
                     "(mean across device pairs)")
    worst = max(r.transferred_mb for r in rows)
    corr = correlation_with_apk_size(sweep)
    return (f"{text}\n\nmax transferred: {worst:.2f} MB "
            f"(paper: <= {PAPER_MAX_TRANSFER_MB:.0f} MB); "
            f"APK-size correlation r = {corr:.2f}")
