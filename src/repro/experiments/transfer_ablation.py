"""Ablation: serial vs pipelined vs pipelined+chunk-cache transfer.

The paper's §4 names transfer as the dominant migration stage (>50% of
total time on average) and sketches transfer optimization as future
work.  This experiment quantifies two implemented optimizations behind
``FluxExtensions.pipelined_transfer``:

* **pipelined** — compression of chunk *i+1* overlaps the send of
  chunk *i*, so a cold (first) migration saves roughly the compression
  time of the image;
* **pipelined + chunk cache** — every device keeps a content-addressed
  chunk store, so a *repeat* migration to a guest that has seen the
  image before (ring tests, battery-rescue round trips) transfers only
  the chunks that changed — here, only the always-fresh descriptor and
  record-log chunks plus the digest negotiation.

Measured on a home -> guest -> home -> guest ring of the largest
catalog app (Candy Crush, ~13.5 MB compressed image): "first" is the
initial home -> guest hop, "repeat" is the second home -> guest hop
after the app bounced back.  The serial configuration repeats at full
cost; the cached configuration's repeat is dominated by the
non-transfer floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_7_2013
from repro.apps import app_by_title
from repro.core.extensions import FluxExtensions
from repro.experiments.harness import format_table
from repro.sim import SimClock, units
from repro.sim.rng import RngFactory


APP_TITLE = "Candy Crush Saga"
SEED = 11


@dataclass
class AblationRow:
    config: str
    first_seconds: float
    repeat_seconds: float
    repeat_transfer_seconds: float
    repeat_wire_bytes: int
    repeat_chunk_hit_rate: float


def _measure(extensions: FluxExtensions,
             drop_caches_before_repeat: bool = False,
             seed: int = SEED):
    """Run the ring; return (first hop report, repeat hop report)."""
    clock = SimClock()
    factory = RngFactory(seed)
    home = Device(NEXUS_7_2013, clock, factory, name="home")
    guest = Device(NEXUS_7_2013, clock, factory, name="guest")
    spec = app_by_title(APP_TITLE)
    spec.install_and_launch(home)
    home.pairing_service.pair(guest)

    first = home.migration_service.migrate(guest, spec.package,
                                           extensions=extensions)
    guest.migration_service.migrate(home, spec.package,
                                    extensions=extensions)
    if drop_caches_before_repeat:
        home.chunk_store.clear()
        guest.chunk_store.clear()
    repeat = home.migration_service.migrate(guest, spec.package,
                                            extensions=extensions)
    return first, repeat


def run(seed: int = SEED) -> List[AblationRow]:
    configs = [
        ("serial (paper)", FluxExtensions.none(), False),
        ("pipelined", FluxExtensions(pipelined_transfer=True), True),
        ("pipelined + chunk cache",
         FluxExtensions(pipelined_transfer=True), False),
    ]
    rows = []
    for name, extensions, drop_caches in configs:
        first, repeat = _measure(extensions,
                                 drop_caches_before_repeat=drop_caches,
                                 seed=seed)
        rows.append(AblationRow(
            config=name,
            first_seconds=first.total_seconds,
            repeat_seconds=repeat.total_seconds,
            repeat_transfer_seconds=repeat.stages["transfer"],
            repeat_wire_bytes=repeat.transferred_bytes,
            repeat_chunk_hit_rate=repeat.chunk_hit_rate))
    return rows


def repeat_improvement(rows: List[AblationRow] = None) -> float:
    """Fractional repeat-migration speedup of pipelined+cache vs serial."""
    rows = rows or run()
    serial = next(r for r in rows if r.config.startswith("serial"))
    cached = next(r for r in rows if "cache" in r.config)
    return 1.0 - cached.repeat_seconds / serial.repeat_seconds


def render() -> str:
    rows = run()
    table = [(r.config,
              f"{r.first_seconds:.2f}",
              f"{r.repeat_seconds:.2f}",
              f"{r.repeat_transfer_seconds:.2f}",
              units.format_size(r.repeat_wire_bytes),
              f"{r.repeat_chunk_hit_rate * 100:.0f}%")
             for r in rows]
    text = format_table(
        ("configuration", "first s", "repeat s", "repeat transfer s",
         "repeat wire", "chunk hits"),
        table,
        title="Ablation: chunked transfer pipeline + chunk cache "
              f"({APP_TITLE}, home->guest->home->guest ring)")
    improvement = repeat_improvement(rows)
    return (f"{text}\n\nrepeat-migration speedup (pipelined+cache vs "
            f"serial): {improvement:.0%} "
            "(default migrations keep the paper's serial path)")
