"""Table 3: the eighteen top free apps and their pre-migration workloads."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.catalog import EXPECTED_FAILURES, TOP_APPS


#: The paper's Table 3, verbatim (name -> workload description).
PAPER_TABLE3 = {
    "Bible": "View page of the Bible",
    "Bubble Witch Saga": "Play witch-themed puzzle game",
    "Candy Crush Saga": "Play candy-themed puzzle game",
    "eBay": "View online auction",
    "Flappy Bird": "Play obstacle game",
    "Surpax Flashlight": "Use LED flashlight",
    "GroupOn": "View discount offer",
    "Instagram": "Browse a friend's photos",
    "Netflix": "Browse available movies",
    "Pinterest": "Explore 'pinned' items of interest",
    "Snapchat": "Take photo and compose text",
    "Skype": "View contact status",
    "Twitter": "View a user's Tweets",
    "Vine": "Browse a user's video feed",
    "Subway Surfers": "Play fast-paced obstacle game",
    "Facebook": "Post comment on news feed",
    "WhatsApp": "Send text to friend",
    "ZEDGE": "Browse ringtones and select one",
}


@dataclass
class Table3Row:
    title: str
    package: str
    workload: str
    apk_mb: float
    migratable: bool


def run() -> List[Table3Row]:
    return [Table3Row(title=app.title, package=app.package,
                      workload=app.workload_desc, apk_mb=app.apk_mb,
                      migratable=app.package not in EXPECTED_FAILURES)
            for app in TOP_APPS]


def render() -> str:
    from repro.experiments.harness import format_table

    rows = [(r.title, r.workload, f"{r.apk_mb:.1f}",
             "yes" if r.migratable else "no") for r in run()]
    return format_table(("name", "workload", "APK MB", "migratable"),
                        rows, title="Table 3: top free Android apps")
