"""Shared experiment harness: the paper's §4 migration sweep.

Boots each of the four device pairs, installs the Table 3 apps on the
home device, pairs the devices, runs each app's workload, and migrates
it — collecting the per-stage reports Figures 12-15 are drawn from.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.android.device import Device
from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS, DeviceProfile
from repro.apps.catalog import MIGRATABLE_APPS, TOP_APPS
from repro.apps.common import AppSpec
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.migration.migration import MigrationReport
from repro.sim import SimClock
from repro.sim.events import merge_streams
from repro.sim.metrics import (
    empty_snapshot,
    merge_snapshots,
    rollup_counters,
    snapshot_by_label,
)
from repro.sim.rng import RngFactory


def pair_label(home: DeviceProfile, guest: DeviceProfile) -> str:
    return f"{home.model} to {guest.model}"


@dataclass
class SweepResult:
    pair_labels: List[str]
    app_titles: List[str]
    #: (pair_label, package) -> successful MigrationReport
    reports: Dict[Tuple[str, str], MigrationReport]
    #: (pair_label, package) -> refusal for expected failures
    refusals: Dict[Tuple[str, str], MigrationRefusal] = field(
        default_factory=dict)
    #: pair_label -> merged (home + guest) metrics snapshot for the pair.
    pair_metrics: Dict[str, Dict] = field(default_factory=dict)
    #: pair_label -> the pair's causally-merged home+guest event stream
    #: (see :mod:`repro.sim.events`); empty when ``FLUX_EVENTS=0``.
    pair_events: Dict[str, List[Dict]] = field(default_factory=dict)

    def report_for(self, pair: str, package: str) -> MigrationReport:
        return self.reports[(pair, package)]

    def reports_for_app(self, package: str) -> List[MigrationReport]:
        return [r for (_, pkg), r in self.reports.items() if pkg == package]

    def all_reports(self) -> List[MigrationReport]:
        return list(self.reports.values())

    # -- aggregates used by several figures -----------------------------------

    def average_total_seconds(self) -> float:
        reports = self.all_reports()
        return sum(r.total_seconds for r in reports) / len(reports)

    def average_perceived_seconds(self) -> float:
        reports = self.all_reports()
        return sum(r.perceived_seconds for r in reports) / len(reports)

    def average_non_transfer_seconds(self) -> float:
        reports = self.all_reports()
        return sum(r.non_transfer_seconds for r in reports) / len(reports)

    def average_stage_fraction(self, stage: str) -> float:
        reports = self.all_reports()
        return sum(r.stage_fraction(stage) for r in reports) / len(reports)

    # -- metrics aggregation ---------------------------------------------------

    def merged_metrics(self) -> Dict:
        """One snapshot over every device pair (counters/histograms add,
        gauges take the maximum) — deterministic regardless of sweep
        parallelism because snapshots merge in pair-label order."""
        return merge_snapshots(
            self.pair_metrics.get(label) or empty_snapshot()
            for label in self.pair_labels)

    def app_metrics(self) -> Dict[str, Dict]:
        """Per-app snapshots: the merged snapshot partitioned by the
        ``app`` label (device-level series land under ``""``)."""
        return snapshot_by_label(self.merged_metrics(), "app")

    def merged_events(self) -> List[Dict]:
        """Every pair's event stream, pair-labeled, in pair order.

        Each pair is an independent simulation with its own clock and
        device names, so cross-pair merging by time would be
        meaningless; instead each event gains a ``pair`` key and the
        streams concatenate in ``pair_labels`` order — deterministic
        regardless of sweep parallelism."""
        labeled: List[Dict] = []
        for label in self.pair_labels:
            for event in self.pair_events.get(label) or []:
                tagged = dict(event)
                tagged["pair"] = label
                labeled.append(tagged)
        return labeled


class PairOutcome(NamedTuple):
    """What one device pair's simulation produced."""

    reports: Dict[str, MigrationReport]
    refusals: Dict[str, MigrationRefusal]
    #: Merged home + guest metrics snapshot for this pair's simulation.
    metrics: Dict
    #: Causally-merged home + guest event stream (same virtual clock,
    #: so ``merge_streams`` yields one deterministic interleaving).
    events: List[Dict]


def run_pair(home_profile: DeviceProfile, guest_profile: DeviceProfile,
             apps: Sequence[AppSpec], seed: int = 0,
             include_failures: bool = False,
             ) -> PairOutcome:
    """One device pair: install, pair, run workloads, migrate each app."""
    clock = SimClock()
    rng_factory = RngFactory(seed)
    home = Device(home_profile, clock, rng_factory, name="home")
    guest = Device(guest_profile, clock, rng_factory, name="guest")

    for spec in apps:
        spec.install(home)
    home.pairing_service.pair(guest)

    reports: Dict[str, MigrationReport] = {}
    refusals: Dict[str, MigrationRefusal] = {}
    for spec in apps:
        spec.install_and_launch(home)
        try:
            reports[spec.package] = home.migration_service.migrate(
                guest, spec.package)
        except MigrationError as error:
            if not include_failures:
                raise
            refusals[spec.package] = error.reason
            home.terminate_app(spec.package)
    metrics = merge_snapshots([home.metrics.snapshot(),
                               guest.metrics.snapshot()])
    events = merge_streams(home.events.export(), guest.events.export())
    return PairOutcome(reports=reports, refusals=refusals, metrics=metrics,
                       events=events)


_SWEEP_CACHE: Dict[Tuple, SweepResult] = {}

#: Environment knob for the default sweep parallelism (see README);
#: ``workers=None`` in :func:`run_sweep` reads it, defaulting to serial.
SWEEP_WORKERS_ENV = "FLUX_SWEEP_WORKERS"


def _resolve_workers(workers: Optional[int], pair_count: int) -> int:
    if workers is None:
        try:
            workers = int(os.environ.get(SWEEP_WORKERS_ENV, "1") or "1")
        except ValueError:
            workers = 1
    return max(1, min(workers, pair_count))


def run_sweep(apps: Sequence[AppSpec] = MIGRATABLE_APPS,
              pairs: Sequence[Tuple[DeviceProfile, DeviceProfile]]
              = PAPER_DEVICE_PAIRS,
              seed: int = 0, include_failures: bool = False,
              use_cache: bool = True,
              workers: Optional[int] = None) -> SweepResult:
    """The full sweep: every app across every device pair.

    Results are cached per (apps, pairs, seed) within the process; the
    sweep is deterministic, so figures 12-15 share one run.

    ``workers`` > 1 runs the device pairs concurrently — each pair is a
    fully independent simulation (private clock, private RNG factory,
    freshly booted devices), so the parallel sweep is bit-identical to
    the serial one; results are merged in pair order regardless of
    completion order.  Defaults to the ``FLUX_SWEEP_WORKERS``
    environment variable, else serial.
    """
    key = (tuple(a.package for a in apps),
           tuple((h.name, g.name) for h, g in pairs),
           seed, include_failures)
    if use_cache and key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]

    workers = _resolve_workers(workers, len(pairs))
    if workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_pair, home_profile, guest_profile,
                                   apps, seed=seed,
                                   include_failures=include_failures)
                       for home_profile, guest_profile in pairs]
            pair_results = [f.result() for f in futures]
    else:
        pair_results = [run_pair(home_profile, guest_profile, apps,
                                 seed=seed,
                                 include_failures=include_failures)
                        for home_profile, guest_profile in pairs]

    labels = []
    reports: Dict[Tuple[str, str], MigrationReport] = {}
    refusals: Dict[Tuple[str, str], MigrationRefusal] = {}
    pair_metrics: Dict[str, Dict] = {}
    pair_events: Dict[str, List[Dict]] = {}
    for (home_profile, guest_profile), outcome in zip(pairs, pair_results):
        label = pair_label(home_profile, guest_profile)
        labels.append(label)
        for package, report in outcome.reports.items():
            reports[(label, package)] = report
        for package, refusal in outcome.refusals.items():
            refusals[(label, package)] = refusal
        pair_metrics[label] = outcome.metrics
        pair_events[label] = outcome.events

    result = SweepResult(pair_labels=labels,
                         app_titles=[a.title for a in apps],
                         reports=reports, refusals=refusals,
                         pair_metrics=pair_metrics,
                         pair_events=pair_events)
    if use_cache:
        _SWEEP_CACHE[key] = result
    return result


def sweep_metrics_document(sweep: SweepResult) -> Dict:
    """JSON-ready observability document for a finished sweep.

    Deterministic (sorted keys, virtual-clock quantities only except
    where noted): per-pair snapshots, the cross-pair merge, label-free
    counter totals, per-app partitions, and one row per migration with
    its dominant stage and critical path.
    """
    merged = sweep.merged_metrics()
    migrations = []
    for (pair, package) in sorted(sweep.reports):
        report = sweep.reports[(pair, package)]
        migrations.append({
            "pair": pair,
            "package": package,
            "total_seconds": round(report.total_seconds, 6),
            "stages": {s: round(v, 6) for s, v in report.stages.items()},
            "dominant_stage": report.dominant_stage,
            "critical_path": report.critical_path,
            "transferred_bytes": report.transferred_bytes,
            "chunk_hit_rate": round(report.chunk_hit_rate, 4),
        })
    return {
        "schema": 1,
        "pairs": dict(sorted(sweep.pair_metrics.items())),
        "totals": merged,
        "rollup": rollup_counters(merged),
        "apps": sweep.app_metrics(),
        "migrations": migrations,
        "refusals": {f"{pair}/{package}": refusal.value
                     for (pair, package), refusal
                     in sorted(sweep.refusals.items())},
    }


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Plain-text table rendering shared by all experiments."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
