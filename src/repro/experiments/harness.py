"""Shared experiment harness: the paper's §4 migration sweep.

Boots each of the four device pairs, installs the Table 3 apps on the
home device, pairs the devices, runs each app's workload, and migrates
it — collecting the per-stage reports Figures 12-15 are drawn from.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.android.device import METRICS_ENV, Device
from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS, DeviceProfile
from repro.apps.catalog import MIGRATABLE_APPS, TOP_APPS
from repro.apps.common import AppSpec
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.migration.migration import MigrationReport
from repro.sim import SimClock
from repro.sim.events import EVENTS_CAP_ENV, EVENTS_ENV, merge_streams
from repro.sim.metrics import (
    empty_snapshot,
    merge_snapshots,
    rollup_counters,
    snapshot_by_label,
)
from repro.sim.rng import RngFactory
from repro.sim.timeline import TIMELINE_ENV, merge_timelines


def pair_label(home: DeviceProfile, guest: DeviceProfile) -> str:
    return f"{home.model} to {guest.model}"


@dataclass
class SweepResult:
    pair_labels: List[str]
    app_titles: List[str]
    #: (pair_label, package) -> successful MigrationReport
    reports: Dict[Tuple[str, str], MigrationReport]
    #: (pair_label, package) -> refusal for expected failures
    refusals: Dict[Tuple[str, str], MigrationRefusal] = field(
        default_factory=dict)
    #: pair_label -> merged (home + guest) metrics snapshot for the pair.
    pair_metrics: Dict[str, Dict] = field(default_factory=dict)
    #: pair_label -> the pair's causally-merged home+guest event stream
    #: (see :mod:`repro.sim.events`); empty when ``FLUX_EVENTS=0``.
    pair_events: Dict[str, List[Dict]] = field(default_factory=dict)
    #: pair_label -> the pair's merged time-series export (see
    #: :mod:`repro.sim.timeline`); empty when ``FLUX_TIMELINE=0``.
    pair_timelines: Dict[str, Dict[str, List[List[float]]]] = field(
        default_factory=dict)

    def report_for(self, pair: str, package: str) -> MigrationReport:
        return self.reports[(pair, package)]

    def reports_for_app(self, package: str) -> List[MigrationReport]:
        return [r for (_, pkg), r in self.reports.items() if pkg == package]

    def all_reports(self) -> List[MigrationReport]:
        return list(self.reports.values())

    # -- aggregates used by several figures -----------------------------------
    # All averages are 0.0 over an empty report set (a sweep of pure
    # refusals with include_failures=True yields zero successful
    # reports; averaging must not divide by zero).

    def average_total_seconds(self) -> float:
        reports = self.all_reports()
        if not reports:
            return 0.0
        return sum(r.total_seconds for r in reports) / len(reports)

    def average_perceived_seconds(self) -> float:
        reports = self.all_reports()
        if not reports:
            return 0.0
        return sum(r.perceived_seconds for r in reports) / len(reports)

    def average_non_transfer_seconds(self) -> float:
        reports = self.all_reports()
        if not reports:
            return 0.0
        return sum(r.non_transfer_seconds for r in reports) / len(reports)

    def average_stage_fraction(self, stage: str) -> float:
        reports = self.all_reports()
        if not reports:
            return 0.0
        return sum(r.stage_fraction(stage) for r in reports) / len(reports)

    # -- metrics aggregation ---------------------------------------------------

    def merged_metrics(self) -> Dict:
        """One snapshot over every device pair (counters/histograms add,
        gauges take the maximum) — deterministic regardless of sweep
        parallelism because snapshots merge in pair-label order."""
        return merge_snapshots(
            self.pair_metrics.get(label) or empty_snapshot()
            for label in self.pair_labels)

    def app_metrics(self) -> Dict[str, Dict]:
        """Per-app snapshots: the merged snapshot partitioned by the
        ``app`` label (device-level series land under ``""``)."""
        return snapshot_by_label(self.merged_metrics(), "app")

    def merged_events(self) -> List[Dict]:
        """Every pair's event stream, pair-labeled, in pair order.

        Each pair is an independent simulation with its own clock and
        device names, so cross-pair merging by time would be
        meaningless; instead each event gains a ``pair`` key and the
        streams concatenate in ``pair_labels`` order — deterministic
        regardless of sweep parallelism."""
        labeled: List[Dict] = []
        for label in self.pair_labels:
            for event in self.pair_events.get(label) or []:
                tagged = dict(event)
                tagged["pair"] = label
                labeled.append(tagged)
        return labeled

    def merged_timelines(self) -> Dict[str, Dict[str, List[List[float]]]]:
        """Every pair's timeline export, keyed by pair label, in pair
        order.  Pairs are independent simulations with private clocks,
        so cross-pair series never merge by time; within a pair the
        home+guest merge already happened in :func:`run_pair`.
        Deterministic regardless of sweep parallelism."""
        return {label: self.pair_timelines.get(label) or {}
                for label in self.pair_labels}


class PairOutcome(NamedTuple):
    """What one device pair's simulation produced."""

    reports: Dict[str, MigrationReport]
    refusals: Dict[str, MigrationRefusal]
    #: Merged home + guest metrics snapshot for this pair's simulation.
    metrics: Dict
    #: Causally-merged home + guest event stream (same virtual clock,
    #: so ``merge_streams`` yields one deterministic interleaving).
    events: List[Dict]
    #: Merged home + guest edge-sampled time series (associative
    #: ``merge_timelines``); ``{}`` when ``FLUX_TIMELINE=0``.
    timeline: Dict[str, List[List[float]]] = {}


def run_pair(home_profile: DeviceProfile, guest_profile: DeviceProfile,
             apps: Sequence[AppSpec], seed: int = 0,
             include_failures: bool = False,
             ) -> PairOutcome:
    """One device pair: install, pair, run workloads, migrate each app."""
    clock = SimClock()
    rng_factory = RngFactory(seed)
    home = Device(home_profile, clock, rng_factory, name="home")
    guest = Device(guest_profile, clock, rng_factory, name="guest")

    for spec in apps:
        spec.install(home)
    home.pairing_service.pair(guest)

    reports: Dict[str, MigrationReport] = {}
    refusals: Dict[str, MigrationRefusal] = {}
    for spec in apps:
        spec.install_and_launch(home)
        try:
            reports[spec.package] = home.migration_service.migrate(
                guest, spec.package)
        except MigrationError as error:
            if not include_failures:
                raise
            refusals[spec.package] = error.reason
            home.terminate_app(spec.package)
    metrics = merge_snapshots([home.metrics.snapshot(),
                               guest.metrics.snapshot()])
    events = merge_streams(home.events.export(), guest.events.export())
    timeline = merge_timelines(home.timeline.export(),
                               guest.timeline.export())
    return PairOutcome(reports=reports, refusals=refusals, metrics=metrics,
                       events=events, timeline=timeline)


#: Sweep results cached per (apps, pairs, seed, include_failures),
#: bounded LRU (the shape-regression and figure modules share one key;
#: property-style tests can generate many).
_SWEEP_CACHE: "OrderedDict[Tuple, SweepResult]" = OrderedDict()
_SWEEP_CACHE_MAX = 8

#: Environment knob for the default sweep parallelism (see README);
#: ``workers=None`` in :func:`run_sweep` reads it, defaulting to serial.
#: Accepts an integer or ``auto`` (= ``os.cpu_count()``).
SWEEP_WORKERS_ENV = "FLUX_SWEEP_WORKERS"

#: Environment knob for the default executor: serial | thread | process.
SWEEP_EXECUTOR_ENV = "FLUX_SWEEP_EXECUTOR"

SWEEP_EXECUTORS = ("serial", "thread", "process")

#: Env knobs forwarded verbatim into process-pool workers, so a child
#: simulation sees exactly the parent's telemetry configuration even
#: under the ``spawn`` start method (fresh interpreter, fresh environ).
FORWARDED_ENV = (METRICS_ENV, EVENTS_ENV, EVENTS_CAP_ENV, TIMELINE_ENV,
                 SWEEP_WORKERS_ENV, SWEEP_EXECUTOR_ENV)


def clear_sweep_cache() -> None:
    """Drop every cached sweep (tests; replaces ad-hoc dict pokes)."""
    _SWEEP_CACHE.clear()


def _resolve_workers(workers: Union[int, str, None],
                     pair_count: int) -> int:
    if workers is None:
        workers = os.environ.get(SWEEP_WORKERS_ENV, "1") or "1"
    if workers == "auto":
        workers = os.cpu_count() or 1
    try:
        workers = int(workers)
    except ValueError:
        workers = 1
    return max(1, min(workers, pair_count))


def _resolve_executor(executor: Optional[str], workers: int) -> str:
    """Executor choice: explicit arg > env knob > workers-based default.

    The default for a parallel sweep is ``process``: each device pair is
    a sealed, GIL-bound pure-Python simulation, so threads only add
    lock contention while processes scale with cores.  ``thread`` stays
    available for comparison (and is what ``bench-check`` records as
    the contrast mode).
    """
    if executor is None:
        executor = os.environ.get(SWEEP_EXECUTOR_ENV, "") or None
    if executor is None:
        executor = "process" if workers > 1 else "serial"
    if executor not in SWEEP_EXECUTORS:
        raise ValueError(
            f"unknown sweep executor {executor!r}; "
            f"choose from {SWEEP_EXECUTORS}")
    return executor


def _pair_worker(home_profile: DeviceProfile, guest_profile: DeviceProfile,
                 apps: Sequence[AppSpec], seed: int, include_failures: bool,
                 env: Dict[str, Optional[str]]) -> PairOutcome:
    """Process-pool entry point: apply the parent's env knobs, run a pair.

    Module-level (hence picklable by reference) and spawn-safe: a
    spawned child starts with a fresh interpreter, so the telemetry
    knobs the parent resolved (``FLUX_METRICS``, ``FLUX_EVENTS``,
    ``FLUX_EVENTS_CAP``) are re-applied here before any Device exists —
    child simulations are byte-identical to the serial ones.
    """
    for key, value in env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    return run_pair(home_profile, guest_profile, apps, seed=seed,
                    include_failures=include_failures)


def _mp_context(start_method: Optional[str]):
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def _run_pairs(pairs: Sequence[Tuple[DeviceProfile, DeviceProfile]],
               apps: Sequence[AppSpec], seed: int, include_failures: bool,
               workers: int, executor: str,
               start_method: Optional[str] = None) -> List[PairOutcome]:
    """Run every pair on the chosen executor, results in pair order."""
    if executor == "serial" or workers <= 1:
        return [run_pair(home_profile, guest_profile, apps, seed=seed,
                         include_failures=include_failures)
                for home_profile, guest_profile in pairs]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_pair, home_profile, guest_profile,
                                   apps, seed=seed,
                                   include_failures=include_failures)
                       for home_profile, guest_profile in pairs]
            return [f.result() for f in futures]
    # process: true multi-core execution.  Everything that crosses the
    # boundary (profiles, app specs, PairOutcome with its reports,
    # metrics snapshots and event streams) pickles round-trip exactly —
    # tests/experiments/test_pickle_protocol.py pins that contract.
    env = {key: os.environ.get(key) for key in FORWARDED_ENV}
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_mp_context(start_method)) as pool:
        futures = [pool.submit(_pair_worker, home_profile, guest_profile,
                               apps, seed, include_failures, env)
                   for home_profile, guest_profile in pairs]
        return [f.result() for f in futures]


def merge_pair_outcomes(
        pairs: Sequence[Tuple[DeviceProfile, DeviceProfile]],
        apps: Sequence[AppSpec],
        pair_results: Sequence[PairOutcome]) -> SweepResult:
    """Fold per-pair outcomes (any executor's) into one SweepResult.

    Merging happens in pair order regardless of completion order, which
    is half of the parallel-equals-serial determinism story (the other
    half: each pair is a sealed simulation).
    """
    labels = []
    reports: Dict[Tuple[str, str], MigrationReport] = {}
    refusals: Dict[Tuple[str, str], MigrationRefusal] = {}
    pair_metrics: Dict[str, Dict] = {}
    pair_events: Dict[str, List[Dict]] = {}
    pair_timelines: Dict[str, Dict[str, List[List[float]]]] = {}
    for (home_profile, guest_profile), outcome in zip(pairs, pair_results):
        label = pair_label(home_profile, guest_profile)
        labels.append(label)
        for package, report in outcome.reports.items():
            reports[(label, package)] = report
        for package, refusal in outcome.refusals.items():
            refusals[(label, package)] = refusal
        pair_metrics[label] = outcome.metrics
        pair_events[label] = outcome.events
        pair_timelines[label] = getattr(outcome, "timeline", {})
    return SweepResult(pair_labels=labels,
                       app_titles=[a.title for a in apps],
                       reports=reports, refusals=refusals,
                       pair_metrics=pair_metrics,
                       pair_events=pair_events,
                       pair_timelines=pair_timelines)


def run_sweep(apps: Sequence[AppSpec] = MIGRATABLE_APPS,
              pairs: Sequence[Tuple[DeviceProfile, DeviceProfile]]
              = PAPER_DEVICE_PAIRS,
              seed: int = 0, include_failures: bool = False,
              use_cache: bool = True,
              workers: Union[int, str, None] = None,
              executor: Optional[str] = None,
              start_method: Optional[str] = None) -> SweepResult:
    """The full sweep: every app across every device pair.

    Results are cached per (apps, pairs, seed) within the process; the
    sweep is deterministic, so figures 12-15 share one run.

    ``workers`` > 1 runs the device pairs concurrently — each pair is a
    fully independent simulation (private clock, private RNG factory,
    freshly booted devices), so the parallel sweep is bit-identical to
    the serial one; results are merged in pair order regardless of
    completion order.  ``workers="auto"`` uses every core; the default
    comes from ``FLUX_SWEEP_WORKERS``, else serial.

    ``executor`` picks how concurrent pairs run: ``"thread"`` (shared
    GIL — concurrency without parallelism) or ``"process"`` (a
    spawn-safe :class:`ProcessPoolExecutor`; the default for parallel
    runs, and the only mode that scales with cores for this pure-Python
    workload).  Defaults to ``FLUX_SWEEP_EXECUTOR``.  ``start_method``
    forces a multiprocessing start method (tests pin ``spawn`` safety);
    the default prefers ``fork`` where available for its lower startup
    cost.
    """
    key = (tuple(a.package for a in apps),
           tuple((h.name, g.name) for h, g in pairs),
           seed, include_failures)
    if use_cache:
        cached = _SWEEP_CACHE.get(key)
        if cached is not None:
            _SWEEP_CACHE.move_to_end(key)
            return cached

    workers = _resolve_workers(workers, len(pairs))
    executor = _resolve_executor(executor, workers)
    pair_results = _run_pairs(pairs, apps, seed, include_failures,
                              workers, executor, start_method)
    result = merge_pair_outcomes(pairs, apps, pair_results)
    if use_cache:
        _SWEEP_CACHE[key] = result
        _SWEEP_CACHE.move_to_end(key)
        while len(_SWEEP_CACHE) > _SWEEP_CACHE_MAX:
            _SWEEP_CACHE.popitem(last=False)
    return result


def sweep_metrics_document(sweep: SweepResult) -> Dict:
    """JSON-ready observability document for a finished sweep.

    Deterministic (sorted keys, virtual-clock quantities only except
    where noted): per-pair snapshots, the cross-pair merge, label-free
    counter totals, per-app partitions, and one row per migration with
    its dominant stage and critical path.
    """
    merged = sweep.merged_metrics()
    migrations = []
    for (pair, package) in sorted(sweep.reports):
        report = sweep.reports[(pair, package)]
        migrations.append({
            "pair": pair,
            "package": package,
            "total_seconds": round(report.total_seconds, 6),
            "stages": {s: round(v, 6) for s, v in report.stages.items()},
            "dominant_stage": report.dominant_stage,
            "critical_path": report.critical_path,
            "transferred_bytes": report.transferred_bytes,
            "chunk_hit_rate": round(report.chunk_hit_rate, 4),
        })
    return {
        "schema": 1,
        "pairs": dict(sorted(sweep.pair_metrics.items())),
        "totals": merged,
        "rollup": rollup_counters(merged),
        "apps": sweep.app_metrics(),
        "migrations": migrations,
        "refusals": {f"{pair}/{package}": refusal.value
                     for (pair, package), refusal
                     in sorted(sweep.refusals.items())},
    }


def sweep_timeline_series(sweep: SweepResult
                          ) -> Dict[str, List[List[float]]]:
    """The sweep's timelines as one flat export, pair folded into labels.

    Each pair is an independent simulation with a private clock, so the
    per-pair series never merge by time; instead every key gains a
    ``pair=<label>`` label (via the canonical key grammar), which keeps
    the flat export collision-free and lets a run bundle store the
    whole sweep's time-series plane as one standard timeline document.
    """
    from repro.sim.timeline import series_key, split_series_key
    flat: Dict[str, List[List[float]]] = {}
    for label, series in sweep.merged_timelines().items():
        for key, samples in series.items():
            name, labels = split_series_key(key)
            labels["pair"] = label
            flat[series_key(name, labels)] = samples
    return {key: flat[key] for key in sorted(flat)}


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Plain-text table rendering shared by all experiments."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
