"""Table 2: decorated services — interface size vs decoration LOC.

Prints, per service, the paper's published (methods, LOC) next to this
reproduction's (methods, decoration LOC) measured from our decorated
AIDL sources.  Our interfaces model subsets of stock Android's, so the
absolute counts are smaller; the claim under test is structural:
decoration cost is tens of lines per service and grows with interface
size, and Bluetooth/Serial/Usb remain undecorated (TBD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.android.aidl import InterfaceRegistry
from repro.android.services.aidl_sources import (
    AIDL_SOURCES,
    SERVICE_SPECS,
    all_sources,
)

#: Extra hand-written native record/replay glue for the SensorService
#: (paper §3.2: AIDL cannot generate C++, so its 94 LOC are manual).
#: In our reproduction the analogous hand-written pieces are the
#: connection-interface decorations plus the two sensor replay proxies.
SENSOR_CONNECTION_INTERFACE = "ISensorEventConnection"


@dataclass
class Table2Row:
    service: str
    interface: str
    hardware: bool
    paper_methods: int
    paper_loc: Optional[int]
    our_methods: int
    our_decoration_loc: Optional[int]
    our_generated_loc: int
    decorated: bool


def run() -> List[Table2Row]:
    registry = InterfaceRegistry()
    registry.compile_source(all_sources())
    rows: List[Table2Row] = []
    for spec in SERVICE_SPECS:
        compiled = registry.get(spec.interface)
        decoration_loc = compiled.decoration_loc
        if spec.key == "sensor":
            # Count the connection interface's decorations with the
            # service, as the paper's hand-written native glue is.
            decoration_loc += registry.get(
                SENSOR_CONNECTION_INTERFACE).decoration_loc
        decorated = spec.paper_loc is not None
        rows.append(Table2Row(
            service=spec.key, interface=spec.interface,
            hardware=spec.hardware, paper_methods=spec.paper_methods,
            paper_loc=spec.paper_loc, our_methods=compiled.method_count,
            our_decoration_loc=decoration_loc if decorated else None,
            our_generated_loc=compiled.generated_loc,
            decorated=decorated))
    return rows


def render() -> str:
    from repro.experiments.harness import format_table

    rows = run()
    body = []
    for group, flag in (("HARDWARE SERVICES", True),
                        ("SOFTWARE SERVICES", False)):
        body.append((group, "", "", "", "", ""))
        for row in rows:
            if row.hardware != flag:
                continue
            body.append((
                f"  {row.interface}",
                row.paper_methods,
                row.paper_loc if row.paper_loc is not None else "TBD",
                row.our_methods,
                (row.our_decoration_loc
                 if row.our_decoration_loc is not None else "TBD"),
                row.our_generated_loc,
            ))
    return format_table(
        ("service", "paper methods", "paper LOC",
         "our methods", "our decoration LOC", "generated LOC"),
        body, title="Table 2: decorated Android services")
