"""Table 1: the Flux decoration syntax.

Not a measurement — a language reference — but regenerating it from the
implementation keeps the docs honest: every row is checked against the
lexer's known-decorator set and demonstrated with a snippet the parser
actually accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.android.aidl.parser import parse_interface
from repro.android.aidl.tokens import KNOWN_DECORATORS


@dataclass(frozen=True)
class Table1Row:
    syntax: str
    purpose: str
    demonstrated_by: str    # a parseable snippet using the construct


PAPER_TABLE1: List[Table1Row] = [
    Table1Row(
        "@record",
        "Indicate that calls to this method should be recorded.",
        "interface I { @record void f(); }"),
    Table1Row(
        "@drop [method name], ...",
        "Remove all previous calls to this method.",
        "interface I { @record { @drop this, g; } void f(); "
        "@record void g(); }"),
    Table1Row(
        "@if [arg], ... / @elif [arg], ...",
        "Qualifies @drop to only remove previous calls if all args "
        "given match.",
        "interface I { @record { @drop this; @if a; @elif b; } "
        "void f(int a, int b); }"),
    Table1Row(
        "@replayproxy [method]",
        "When replaying, call proxy [method] instead of replaying the "
        "actual call.",
        "interface I { @record { @replayproxy flux.recordreplay."
        "Proxies.p; } void f(); }"),
    Table1Row(
        "this",
        "A keyword representing the current method being decorated.",
        "interface I { @record { @drop this; } void f(); }"),
]


def run() -> List[Table1Row]:
    """Verify each construct against the implementation, then return it."""
    for row in PAPER_TABLE1:
        keyword = row.syntax.split()[0]
        if keyword.startswith("@"):
            base = keyword.split("/")[0].strip()
            assert base in KNOWN_DECORATORS, base
        parse_interface(row.demonstrated_by)   # must be accepted
    return list(PAPER_TABLE1)


def render() -> str:
    from repro.experiments.harness import format_table

    rows = [(r.syntax, r.purpose) for r in run()]
    return format_table(("syntax", "purpose"), rows,
                        title="Table 1: Flux decoration syntax "
                              "(verified against the parser)")
