"""Figure 12: overall migration time per app across four device pairs.

Paper aggregates: all-pairs average 7.88 s, dominated by transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.catalog import MIGRATABLE_APPS
from repro.experiments.harness import SweepResult, format_table, run_sweep

PAPER_AVERAGE_TOTAL_SECONDS = 7.88


@dataclass
class Fig12Row:
    title: str
    package: str
    seconds_by_pair: Dict[str, float]


def run(sweep: SweepResult = None) -> List[Fig12Row]:
    sweep = sweep or run_sweep()
    rows = []
    for spec in MIGRATABLE_APPS:
        seconds = {
            pair: sweep.report_for(pair, spec.package).total_seconds
            for pair in sweep.pair_labels}
        rows.append(Fig12Row(title=spec.title, package=spec.package,
                             seconds_by_pair=seconds))
    return rows


def average_total(sweep: SweepResult = None) -> float:
    sweep = sweep or run_sweep()
    return sweep.average_total_seconds()


def render() -> str:
    sweep = run_sweep()
    rows = run(sweep)
    table = [
        (r.title, *(f"{r.seconds_by_pair[p]:.2f}" for p in sweep.pair_labels))
        for r in rows]
    text = format_table(("app", *sweep.pair_labels), table,
                        title="Figure 12: overall migration times (seconds)")
    ours = average_total(sweep)
    return (f"{text}\n\nall-pairs average: {ours:.2f} s "
            f"(paper: {PAPER_AVERAGE_TOTAL_SECONDS:.2f} s)")
