"""One module per paper table/figure; each exposes run() and render()."""

from repro.experiments import (
    app_support,
    contention,
    fault_ablation,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    pairing_cost,
    placement_ablation,
    table1,
    table2,
    table3,
    transfer_ablation,
)
from repro.experiments.harness import (
    PairOutcome,
    SweepResult,
    format_table,
    pair_label,
    run_pair,
    run_sweep,
    sweep_metrics_document,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "app_support": app_support,
    "pairing_cost": pairing_cost,
    "transfer_ablation": transfer_ablation,
    "fault_ablation": fault_ablation,
    "contention": contention,
    "placement_ablation": placement_ablation,
}

__all__ = [
    "ALL_EXPERIMENTS", "PairOutcome", "SweepResult", "format_table",
    "pair_label", "run_pair", "run_sweep", "sweep_metrics_document",
    "app_support", "contention", "fault_ablation", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "pairing_cost", "placement_ablation", "table1",
    "table2", "table3", "transfer_ablation",
]
