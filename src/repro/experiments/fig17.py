"""Figure 17: CDF of Google Play installation sizes.

Paper anchors: roughly 60% of the 488,259 analyzed apps are under 1 MB
and roughly 90% under 10 MB.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.harness import format_table
from repro.playstore.analyzer import DEFAULT_CDF_POINTS, analyze_catalog
from repro.playstore.catalog import PAPER_CATALOG_SIZE, generate_catalog
from repro.sim import units

PAPER_CDF_1MB = 0.60
PAPER_CDF_10MB = 0.90

#: Catalog size used for the default run; the full 488,259 is used by
#: the benchmark harness, a tenth keeps the experiment interactive.
DEFAULT_COUNT = PAPER_CATALOG_SIZE // 10


def run(count: int = DEFAULT_COUNT) -> List[Tuple[int, float]]:
    apps = generate_catalog(count)
    report = analyze_catalog(apps)
    return report.cdf_points


def render(count: int = DEFAULT_COUNT) -> str:
    points = run(count)
    rows = [(units.format_size(threshold), f"{value:.3f}")
            for threshold, value in points]
    text = format_table(("installation size", "CDF"), rows,
                        title=f"Figure 17: Play-store install-size CDF "
                              f"(n={count})")
    by_threshold = dict(points)
    at_1mb = by_threshold[units.MB]
    at_10mb = by_threshold[10 * units.MB]
    return (f"{text}\n\nCDF(1 MB) = {at_1mb:.3f} (paper ≈ "
            f"{PAPER_CDF_1MB:.2f}); CDF(10 MB) = {at_10mb:.3f} "
            f"(paper ≈ {PAPER_CDF_10MB:.2f})")
