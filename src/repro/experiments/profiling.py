"""Per-pair cProfile reports for the sweep (``flux-sim sweep --profile-out``).

The executor layer makes the sweep scale across cores, but the serial
per-pair cost is what every worker pays; this module is the measuring
plane for the serial hot-path work.  Each device pair runs under its own
:class:`cProfile.Profile` (serially — profiling a process pool would
profile the pool plumbing, not the simulation), and the report is
written with a *deterministic ordering*: rows sort by internal time,
with ties broken by call count and then by the stripped
``path:line(function)`` location, so two runs of the deterministic
simulation produce reports whose row order differs only where the
measured times genuinely differ.  Paths are stripped to their
``repro/``-relative form so reports diff cleanly across machines.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import List, Optional, Sequence, Tuple

from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS, DeviceProfile
from repro.apps.catalog import MIGRATABLE_APPS
from repro.apps.common import AppSpec
from repro.experiments.harness import pair_label, run_pair

#: Rows shown per pair section.
DEFAULT_TOP = 25


def _strip_path(path: str) -> str:
    """``/abs/prefix/src/repro/x.py`` -> ``repro/x.py`` (stable across
    machines); stdlib/built-in locations pass through unchanged."""
    for marker in ("/repro/", "\\repro\\"):
        index = path.rfind(marker)
        if index >= 0:
            return "repro/" + path[index + len(marker):].replace("\\", "/")
    return path


def _stat_rows(profile: cProfile.Profile,
               top: int) -> List[Tuple[str, int, float, float]]:
    """(location, calls, tottime, cumtime) rows, deterministically ordered."""
    stats = pstats.Stats(profile)
    rows = []
    for (path, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        location = (f"{_strip_path(path)}:{line}({name})"
                    if line else f"{_strip_path(path)}({name})")
        rows.append((location, nc, tt, ct))
    rows.sort(key=lambda r: (-r[2], -r[1], r[0]))
    return rows[:top]


def _format_section(title: str, rows: Sequence[Tuple[str, int, float, float]],
                    wall_seconds: float) -> str:
    lines = [title, "=" * len(title),
             f"wall: {wall_seconds:.4f}s (informational; row order is "
             "deterministic up to measured-time ties)",
             f"{'calls':>9}  {'tottime':>9}  {'cumtime':>9}  location"]
    for location, calls, tottime, cumtime in rows:
        lines.append(
            f"{calls:>9}  {tottime:>9.4f}  {cumtime:>9.4f}  {location}")
    return "\n".join(lines)


def profile_sweep(apps: Sequence[AppSpec] = MIGRATABLE_APPS,
                  pairs: Sequence[Tuple[DeviceProfile, DeviceProfile]]
                  = PAPER_DEVICE_PAIRS,
                  seed: int = 0, include_failures: bool = False,
                  top: int = DEFAULT_TOP) -> str:
    """Profile each pair of the sweep serially; one report section per pair.

    Returns the full report text.  The profiled runs bypass the sweep
    cache by construction (each pair is run directly), so the numbers
    always reflect this process, this interpreter, now.
    """
    import time

    sections = []
    for home_profile, guest_profile in pairs:
        profile = cProfile.Profile()
        start = time.perf_counter()
        profile.enable()
        run_pair(home_profile, guest_profile, apps, seed=seed,
                 include_failures=include_failures)
        profile.disable()
        wall = time.perf_counter() - start
        sections.append(_format_section(
            pair_label(home_profile, guest_profile),
            _stat_rows(profile, top), wall))
    return "\n\n".join(sections) + "\n"


def top_offenders(report: str, count: int = 3) -> List[str]:
    """The first ``count`` locations of the first pair section (summary)."""
    offenders = []
    for line in report.splitlines():
        parts = line.split()
        if len(parts) == 4 and parts[0].isdigit():
            offenders.append(parts[3])
            if len(offenders) >= count:
                break
    return offenders


def write_profile(path: str, report: Optional[str] = None, **kwargs) -> str:
    """Write (generating if needed) a sweep profile report to ``path``."""
    if report is None:
        report = profile_sweep(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report)
    return report
