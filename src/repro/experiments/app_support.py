"""§4 app-support result: 16 of 18 top apps migrate.

Facebook fails (multi-process; unsupported by the prototype) and Subway
Surfers fails (requests a persistent EGL context); everything else
migrates across all four device pairs with its layout adapted to the
guest screen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.catalog import EXPECTED_FAILURES, TOP_APPS
from repro.core.cria.errors import MigrationRefusal
from repro.experiments.harness import format_table, run_sweep


@dataclass
class SupportRow:
    title: str
    package: str
    migrated: bool
    refusal: Optional[MigrationRefusal]


def run() -> List[SupportRow]:
    sweep = run_sweep(apps=TOP_APPS, include_failures=True)
    rows = []
    for spec in TOP_APPS:
        refusals = [r for (pair, pkg), r in sweep.refusals.items()
                    if pkg == spec.package]
        migrated = bool(sweep.reports_for_app(spec.package))
        rows.append(SupportRow(
            title=spec.title, package=spec.package, migrated=migrated,
            refusal=refusals[0] if refusals else None))
    return rows


def render() -> str:
    rows = run()
    table = []
    for row in rows:
        status = "migrated" if row.migrated else f"refused: {row.refusal.value}"
        expected = EXPECTED_FAILURES.get(row.package)
        verdict = "as paper" if (
            (expected is None and row.migrated)
            or (expected is not None and row.refusal is expected)) else "MISMATCH"
        table.append((row.title, status, verdict))
    migrated = sum(1 for r in rows if r.migrated)
    text = format_table(("app", "outcome", "vs paper"), table,
                        title="App support across all four device pairs")
    return f"{text}\n\n{migrated}/{len(rows)} apps migrated (paper: 16/18)"
