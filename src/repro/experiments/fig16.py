"""Figure 16: Quadrant + SunSpider scores on Flux, normalized to AOSP.

Paper: "the overhead is negligible in all cases."
"""

from __future__ import annotations

from typing import List

from repro.benchmarksuite.runner import NormalizedScore, run_fig16
from repro.experiments.harness import format_table

PAPER_MAX_OVERHEAD_PERCENT = 2.0   # "negligible"


def run() -> List[NormalizedScore]:
    return run_fig16()


def render() -> str:
    scores = run()
    rows = [(s.device, s.benchmark, f"{s.normalized:.4f}",
             f"{s.overhead_percent:.2f}%") for s in scores]
    text = format_table(
        ("device", "benchmark", "normalized score", "overhead"),
        rows, title="Figure 16: benchmark scores normalized to AOSP")
    worst = max(s.overhead_percent for s in scores)
    return (f"{text}\n\nworst-case overhead: {worst:.2f}% "
            f"(paper: negligible, < {PAPER_MAX_OVERHEAD_PERCENT:.0f}%)")
