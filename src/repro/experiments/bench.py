"""Sweep benchmark payloads and the ``bench-check`` regression gate.

``BENCH_sweep.json`` (repo root) records what regenerating the Figure 12
sweep costs and produces.  Schema 2 splits the record in two:

* ``wall`` — real serial/parallel wall-clock seconds for the sweep.
  **Informational only**: wall clock depends on the machine, the
  interpreter, and background load, so it is reported but never gated.
* ``sim`` — quantities computed *inside* the simulation: average stage
  timings on the virtual clock and the per-subsystem counter totals
  from the metrics registry.  These are deterministic for a given seed,
  so a drift here means the simulation's behavior changed — that is
  what :func:`check` gates, within a small tolerance band that absorbs
  intentional rounding.

``flux-sim bench-check`` runs the sweep, rebuilds the payload, and
compares it against the committed baseline; ``--update`` rewrites the
baseline instead (do this deliberately, in the commit that changes the
simulation, and say why in CHANGES.md).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import SweepResult, run_sweep
from repro.sim.metrics import rollup_counters


SCHEMA_VERSION = 2
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_sweep.json"
WORKERS = 4

#: Relative drift allowed on gated simulation quantities.  The sweep is
#: deterministic, so in principle this could be zero; 2% absorbs
#: deliberate rounding in the payload and tiny float-summation changes.
SIM_TOLERANCE = 0.02

#: The counter totals the gate watches — one load-bearing series per
#: instrumented subsystem, so a silent regression in any layer
#: (interposition, record, replay, chunk cache, link, CRIA) moves at
#: least one of them.
GATED_COUNTERS = (
    "binder/transactions",
    "binder/parcel_bytes",
    "record/calls_recorded",
    "record/calls_pruned",
    "replay/calls_replayed",
    "replay/calls_proxied",
    "chunks/wire_bytes",
    "link/bytes_total",
    "link/transfers",
    "cria/checkpoints",
    "cria/pages",
    "cria/restore_sub_ops",
)


def measure_sweep(workers: int = WORKERS
                  ) -> Tuple[SweepResult, SweepResult, float, float]:
    """Time the serial and parallel sweep; returns both plus seconds."""
    start = time.perf_counter()
    serial = run_sweep(use_cache=False, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(use_cache=False, workers=workers)
    parallel_s = time.perf_counter() - start
    return serial, parallel, serial_s, parallel_s


def build_payload(sweep: SweepResult, serial_s: float, parallel_s: float,
                  workers: int = WORKERS) -> Dict:
    """The schema-2 ``BENCH_sweep.json`` document for one sweep run."""
    rollup = rollup_counters(sweep.merged_metrics())
    dominant: Dict[str, int] = {}
    for report in sweep.all_reports():
        stage = report.dominant_stage or "?"
        dominant[stage] = dominant.get(stage, 0) + 1
    return {
        "benchmark": "fig12_sweep_wall_clock",
        "schema": SCHEMA_VERSION,
        "workers": workers,
        "cells": len(sweep.reports),
        "wall": {
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": (round(serial_s / parallel_s, 3)
                        if parallel_s else None),
        },
        "sim": {
            "avg_total_seconds": round(sweep.average_total_seconds(), 4),
            "avg_perceived_seconds": round(
                sweep.average_perceived_seconds(), 4),
            "avg_non_transfer_seconds": round(
                sweep.average_non_transfer_seconds(), 4),
            "dominant_stages": dict(sorted(dominant.items())),
            "counters": {key: rollup.get(key, 0) for key in GATED_COUNTERS},
        },
    }


def _relative_drift(current: float, baseline: float) -> float:
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return abs(current - baseline) / abs(baseline)


def check(current: Dict, baseline: Dict,
          tolerance: float = SIM_TOLERANCE) -> List[str]:
    """Problems (empty = pass) comparing ``current`` vs ``baseline``.

    Only the ``sim`` section gates; a schema-1 baseline (no ``sim``)
    is itself a problem — refresh it with ``bench-check --update``.
    """
    problems: List[str] = []
    base_sim = baseline.get("sim")
    if not base_sim:
        return [f"baseline has no 'sim' section (schema "
                f"{baseline.get('schema', 1)}); refresh it with "
                "'flux-sim bench-check --update'"]
    sim = current["sim"]

    if current.get("cells") != baseline.get("cells"):
        problems.append(f"sweep cells changed: {baseline.get('cells')} "
                        f"-> {current.get('cells')}")

    for field in ("avg_total_seconds", "avg_perceived_seconds",
                  "avg_non_transfer_seconds"):
        drift = _relative_drift(sim[field], base_sim.get(field, 0))
        if drift > tolerance:
            problems.append(
                f"{field}: {base_sim.get(field)} -> {sim[field]} "
                f"({drift:+.1%} > {tolerance:.0%} band)")

    base_counters = base_sim.get("counters", {})
    for key, value in sim["counters"].items():
        if key not in base_counters:
            continue            # counter added since the baseline: fine
        drift = _relative_drift(value, base_counters[key])
        if drift > tolerance:
            problems.append(
                f"counter {key}: {base_counters[key]} -> {value} "
                f"({drift:+.1%} > {tolerance:.0%} band)")

    if sim.get("dominant_stages") != base_sim.get("dominant_stages"):
        problems.append(
            f"dominant-stage mix changed: {base_sim.get('dominant_stages')} "
            f"-> {sim.get('dominant_stages')}")
    return problems


def format_report(current: Dict, baseline: Dict,
                  problems: List[str]) -> str:
    lines = []
    wall = current.get("wall", {})
    base_wall = baseline.get("wall", {})
    lines.append(
        f"sweep wall clock: serial {wall.get('serial_s')}s, "
        f"parallel({current.get('workers')}) {wall.get('parallel_s')}s "
        f"(baseline {base_wall.get('serial_s', '?')}s / "
        f"{base_wall.get('parallel_s', '?')}s; informational)")
    if problems:
        lines.append(f"BENCH CHECK FAILED ({len(problems)} problem(s)):")
        lines.extend(f"  - {p}" for p in problems)
    else:
        sim = current.get("sim", {})
        lines.append(
            f"bench check OK: {current.get('cells')} cells, avg total "
            f"{sim.get('avg_total_seconds')}s, all "
            f"{len(sim.get('counters', {}))} gated counters within "
            f"{SIM_TOLERANCE:.0%}")
    return "\n".join(lines)


def run_check(baseline_path: Optional[Path] = None, update: bool = False,
              tolerance: float = SIM_TOLERANCE,
              workers: int = WORKERS) -> Tuple[int, str]:
    """Drive a full bench check (or baseline refresh); (exit, text)."""
    path = Path(baseline_path) if baseline_path else BENCH_PATH
    sweep, _, serial_s, parallel_s = measure_sweep(workers=workers)
    current = build_payload(sweep, serial_s, parallel_s, workers=workers)

    if update or not path.exists():
        path.write_text(json.dumps(current, indent=2) + "\n")
        return 0, (f"wrote baseline {path} (schema {SCHEMA_VERSION}, "
                   f"{current['cells']} cells)")

    baseline = json.loads(path.read_text())
    problems = check(current, baseline, tolerance=tolerance)
    return (1 if problems else 0), format_report(current, baseline, problems)
