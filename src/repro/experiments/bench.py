"""Sweep benchmark payloads and the ``bench-check`` regression gate.

``BENCH_sweep.json`` (repo root) records what regenerating the Figure 12
sweep costs and produces.  Schema 3 split the record in two; schema 4
adds a third, **non-gating** ``fleet`` section — the pinned fleet run's
wall clock, simulated makespan, tail latency and refusal rate — so the
fleet layer's cost is tracked run over run without making the gate
flaky (the row is informational, like the wall section: :func:`check`
never compares it).

* ``wall`` — real wall-clock seconds for the sweep in all three
  executor modes (serial, thread pool, process pool) plus per-pair
  serial walls.  The absolute numbers are **informational only**: wall
  clock depends on the machine, the interpreter, and background load,
  so it is reported but never compared against the baseline.  The one
  wall-derived quantity that *does* gate is ``process_speedup`` — on a
  multi-core machine (``cpu_count >= 2``) the process executor must not
  be slower than serial, or the whole point of the executor layer has
  regressed.  Single-core machines skip that gate: there a process
  pool only adds fork overhead, which is expected.
* ``sim`` — quantities computed *inside* the simulation: average stage
  timings on the virtual clock and the per-subsystem counter totals
  from the metrics registry.  These are deterministic for a given seed,
  so a drift here means the simulation's behavior changed — that is
  what :func:`check` gates, within a small tolerance band that absorbs
  intentional rounding.

``flux-sim bench-check`` runs the sweep, rebuilds the payload, and
compares it against the committed baseline; ``--update`` rewrites the
baseline instead (do this deliberately, in the commit that changes the
simulation, and say why in CHANGES.md).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS
from repro.apps.catalog import MIGRATABLE_APPS
from repro.experiments.harness import (SweepResult, merge_pair_outcomes,
                                       pair_label, run_pair, run_sweep)
from repro.sim.metrics import rollup_counters


SCHEMA_VERSION = 4
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_sweep.json"
WORKERS = 4

#: The pinned fleet configuration the non-gating ``fleet`` row records
#: (matches the CI fleet smoke job and the placement ablation).
FLEET_BENCH = {"devices": 12, "arrivals": 40, "seed": 7,
               "policy": "cost-model"}

#: Relative drift allowed on gated simulation quantities.  The sweep is
#: deterministic, so in principle this could be zero; 2% absorbs
#: deliberate rounding in the payload and tiny float-summation changes.
SIM_TOLERANCE = 0.02

#: The counter totals the gate watches — one load-bearing series per
#: instrumented subsystem, so a silent regression in any layer
#: (interposition, record, replay, chunk cache, link, CRIA) moves at
#: least one of them.
GATED_COUNTERS = (
    "binder/transactions",
    "binder/parcel_bytes",
    "record/calls_recorded",
    "record/calls_pruned",
    "replay/calls_replayed",
    "replay/calls_proxied",
    "chunks/wire_bytes",
    "link/bytes_total",
    "link/transfers",
    "cria/checkpoints",
    "cria/pages",
    "cria/restore_sub_ops",
)


def measure_sweep(workers: int = WORKERS
                  ) -> Tuple[SweepResult, Dict[str, float],
                             float, float, float]:
    """Time the sweep in all three executor modes.

    The serial pass runs pair-by-pair so each pair's own wall clock is
    recorded (that per-pair breakdown is what tells you whether the
    sweep is balanced enough for a pool to help); the pair outcomes are
    then folded through :func:`merge_pair_outcomes`, the same merge the
    pooled executors use.  Returns ``(sweep, per_pair_serial_s,
    serial_s, thread_s, process_s)``.
    """
    per_pair: Dict[str, float] = {}
    outcomes = []
    start_all = time.perf_counter()
    for home_profile, guest_profile in PAPER_DEVICE_PAIRS:
        start = time.perf_counter()
        outcomes.append(run_pair(home_profile, guest_profile,
                                 MIGRATABLE_APPS, seed=0,
                                 include_failures=False))
        label = pair_label(home_profile, guest_profile)
        per_pair[label] = round(time.perf_counter() - start, 4)
    serial_s = time.perf_counter() - start_all
    sweep = merge_pair_outcomes(PAPER_DEVICE_PAIRS, MIGRATABLE_APPS,
                                outcomes)

    start = time.perf_counter()
    run_sweep(use_cache=False, workers=workers, executor="thread")
    thread_s = time.perf_counter() - start

    start = time.perf_counter()
    run_sweep(use_cache=False, workers=workers, executor="process")
    process_s = time.perf_counter() - start
    return sweep, per_pair, serial_s, thread_s, process_s


def measure_fleet() -> Dict:
    """The non-gating fleet row: run the pinned fleet, record its cost.

    ``wall_s`` is machine-dependent (informational, like the wall
    section); ``sim_makespan_s``, ``p95_s`` and ``refusal_rate`` are
    deterministic for the pinned seed but still not gated — the fleet
    byte-identity tests and the CI smoke job own that contract.
    """
    from repro.experiments.fleet import FleetSpec, run_fleet
    start = time.perf_counter()
    result = run_fleet(FleetSpec(**FLEET_BENCH))
    wall_s = time.perf_counter() - start
    return {
        **FLEET_BENCH,
        "wall_s": round(wall_s, 4),
        "sim_makespan_s": round(result.makespan, 4),
        "p95_s": result.slo["p95_s"],
        "refusal_rate": result.slo["refusal_rate"],
    }


def build_payload(sweep: SweepResult, serial_s: float, thread_s: float,
                  process_s: float,
                  per_pair_serial_s: Optional[Dict[str, float]] = None,
                  workers: int = WORKERS,
                  fleet_row: Optional[Dict] = None) -> Dict:
    """The schema-4 ``BENCH_sweep.json`` document for one sweep run."""
    rollup = rollup_counters(sweep.merged_metrics())
    dominant: Dict[str, int] = {}
    for report in sweep.all_reports():
        stage = report.dominant_stage or "?"
        dominant[stage] = dominant.get(stage, 0) + 1
    return {
        "benchmark": "fig12_sweep_wall_clock",
        "schema": SCHEMA_VERSION,
        "workers": workers,
        "executor": "process",
        "cpu_count": os.cpu_count() or 1,
        "cells": len(sweep.reports),
        "wall": {
            "serial_s": round(serial_s, 4),
            "thread_s": round(thread_s, 4),
            "process_s": round(process_s, 4),
            "thread_speedup": (round(serial_s / thread_s, 3)
                               if thread_s else None),
            "process_speedup": (round(serial_s / process_s, 3)
                                if process_s else None),
            "per_pair_serial_s": dict(sorted(
                (per_pair_serial_s or {}).items())),
        },
        "sim": {
            "avg_total_seconds": round(sweep.average_total_seconds(), 4),
            "avg_perceived_seconds": round(
                sweep.average_perceived_seconds(), 4),
            "avg_non_transfer_seconds": round(
                sweep.average_non_transfer_seconds(), 4),
            "dominant_stages": dict(sorted(dominant.items())),
            "counters": {key: rollup.get(key, 0) for key in GATED_COUNTERS},
        },
        # Informational only — check() never compares this section.
        "fleet": fleet_row or {},
    }


def _relative_drift(current: float, baseline: float) -> float:
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return abs(current - baseline) / abs(baseline)


def check(current: Dict, baseline: Dict,
          tolerance: float = SIM_TOLERANCE) -> List[str]:
    """Problems (empty = pass) comparing ``current`` vs ``baseline``.

    The ``sim`` section gates against the baseline; a schema-1 baseline
    (no ``sim``) is itself a problem — refresh it with ``bench-check
    --update``.  The wall section never compares against the baseline,
    but the *current* run's ``process_speedup`` must be >= 1.0 whenever
    the current machine has more than one core (single-core machines
    skip this: fork overhead with no parallelism is expected there).
    """
    problems: List[str] = []
    if current.get("cpu_count", 1) >= 2:
        speedup = current.get("wall", {}).get("process_speedup")
        if speedup is not None and speedup < 1.0:
            problems.append(
                f"process-executor sweep slower than serial on a "
                f"{current['cpu_count']}-core machine: speedup "
                f"{speedup} < 1.0")
    base_sim = baseline.get("sim")
    if not base_sim:
        problems.append(f"baseline has no 'sim' section (schema "
                        f"{baseline.get('schema', 1)}); refresh it with "
                        "'flux-sim bench-check --update'")
        return problems
    sim = current["sim"]

    if current.get("cells") != baseline.get("cells"):
        problems.append(f"sweep cells changed: {baseline.get('cells')} "
                        f"-> {current.get('cells')}")

    # One formatter for every drift message, shared with flux-sim diff:
    # the gate and the diff engine describe the same delta in the same
    # words, band edges included.
    from repro.sim.diffing import format_delta
    for field in ("avg_total_seconds", "avg_perceived_seconds",
                  "avg_non_transfer_seconds"):
        drift = _relative_drift(sim[field], base_sim.get(field, 0))
        if drift > tolerance:
            problems.append(format_delta(field, base_sim.get(field, 0),
                                         sim[field], tolerance))

    base_counters = base_sim.get("counters", {})
    for key, value in sim["counters"].items():
        if key not in base_counters:
            continue            # counter added since the baseline: fine
        drift = _relative_drift(value, base_counters[key])
        if drift > tolerance:
            problems.append(format_delta(f"counter {key}",
                                         base_counters[key], value,
                                         tolerance))

    if sim.get("dominant_stages") != base_sim.get("dominant_stages"):
        problems.append(
            f"dominant-stage mix changed: {base_sim.get('dominant_stages')} "
            f"-> {sim.get('dominant_stages')}")
    return problems


def format_report(current: Dict, baseline: Dict,
                  problems: List[str]) -> str:
    lines = []
    wall = current.get("wall", {})
    base_wall = baseline.get("wall", {})
    if wall:
        lines.append(
            f"sweep wall clock ({current.get('cpu_count', '?')} cpu): "
            f"serial {wall.get('serial_s')}s, "
            f"thread({current.get('workers')}) {wall.get('thread_s')}s "
            f"(x{wall.get('thread_speedup')}), "
            f"process({current.get('workers')}) {wall.get('process_s')}s "
            f"(x{wall.get('process_speedup')}) "
            f"(baseline serial {base_wall.get('serial_s', '?')}s; "
            "absolute walls informational)")
    else:
        # Bundles capture no wall clock; only the sim aggregates gate.
        lines.append("sweep wall clock: not captured (run bundle; "
                     "sim aggregates gated only)")
    fleet = current.get("fleet") or {}
    if fleet:
        lines.append(
            f"fleet row (informational): {fleet.get('devices')} devices / "
            f"{fleet.get('arrivals')} arrivals, seed {fleet.get('seed')}, "
            f"{fleet.get('policy')}: wall {fleet.get('wall_s')}s, sim "
            f"makespan {fleet.get('sim_makespan_s')}s, p95 "
            f"{fleet.get('p95_s')}s, refusal rate "
            f"{fleet.get('refusal_rate')}")
    if problems:
        lines.append(f"BENCH CHECK FAILED ({len(problems)} problem(s)):")
        lines.extend(f"  - {p}" for p in problems)
    else:
        sim = current.get("sim", {})
        lines.append(
            f"bench check OK: {current.get('cells')} cells, avg total "
            f"{sim.get('avg_total_seconds')}s, all "
            f"{len(sim.get('counters', {}))} gated counters within "
            f"{SIM_TOLERANCE:.0%}")
    return "\n".join(lines)


def sim_payload_from_bundle(bundle) -> Dict:
    """A gateable payload rebuilt from a sweep run bundle.

    The bundle's metrics document carries everything the ``sim``
    section gates on: per-migration stage maps (for the averages and
    the dominant-stage mix) and the counter rollup.  Wall clock was
    *not* captured — bundles are wall-free by design — so the ``wall``
    section is empty and ``cpu_count`` is pinned to 1, which skips the
    process-speedup gate.
    """
    document = bundle.metrics_document()
    rows = document.get("migrations") or []
    totals: List[float] = []
    perceived: List[float] = []
    non_transfer: List[float] = []
    dominant: Dict[str, int] = {}
    for row in rows:
        stages = row.get("stages") or {}
        total = float(row.get("total_seconds") or 0.0)
        hidden = (stages.get("preparation", 0.0)
                  + stages.get("checkpoint", 0.0))
        totals.append(total)
        perceived.append(total - hidden)
        non_transfer.append(total - hidden - stages.get("transfer", 0.0))
        stage = row.get("dominant_stage") or "?"
        dominant[stage] = dominant.get(stage, 0) + 1

    def _avg(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    rollup = document.get("rollup") or rollup_counters(bundle.snapshot())
    return {
        "benchmark": "fig12_sweep_wall_clock",
        "schema": SCHEMA_VERSION,
        "workers": bundle.fingerprint.get("workers"),
        "executor": bundle.fingerprint.get("executor"),
        "cpu_count": 1,
        "cells": len(rows),
        "wall": {},
        "sim": {
            "avg_total_seconds": round(_avg(totals), 4),
            "avg_perceived_seconds": round(_avg(perceived), 4),
            "avg_non_transfer_seconds": round(_avg(non_transfer), 4),
            "dominant_stages": dict(sorted(dominant.items())),
            "counters": {key: rollup.get(key, 0) for key in GATED_COUNTERS},
        },
        "fleet": {},
    }


def run_check(baseline_path: Optional[Path] = None, update: bool = False,
              tolerance: float = SIM_TOLERANCE,
              workers: int = WORKERS,
              bundle: Optional[str] = None) -> Tuple[int, str]:
    """Drive a full bench check (or baseline refresh); (exit, text).

    With ``bundle`` set, the sweep is *not* regenerated: the gate runs
    against the telemetry captured in that run bundle (from ``flux-sim
    sweep --bundle-out``), so a post-mortem can re-gate a historical
    run without its machine.
    """
    path = Path(baseline_path) if baseline_path else BENCH_PATH
    if bundle is not None:
        from repro.sim.bundle import BundleError, RunBundle
        try:
            loaded = RunBundle.load(bundle)
        except BundleError as error:
            return 2, str(error)
        if loaded.kind != "sweep":
            return 2, (f"--bundle expects a sweep bundle; {bundle} is a "
                       f"{loaded.kind!r} bundle")
        if update:
            return 2, ("--bundle cannot --update the baseline: bundles "
                       "capture no wall clock")
        if not path.exists():
            return 2, (f"no baseline at {path}; run 'flux-sim bench-check "
                       f"--update' first")
        current = sim_payload_from_bundle(loaded)
        baseline = json.loads(path.read_text())
        problems = check(current, baseline, tolerance=tolerance)
        return ((1 if problems else 0),
                format_report(current, baseline, problems))
    sweep, per_pair, serial_s, thread_s, process_s = measure_sweep(
        workers=workers)
    current = build_payload(sweep, serial_s, thread_s, process_s,
                            per_pair_serial_s=per_pair, workers=workers,
                            fleet_row=measure_fleet())

    if update or not path.exists():
        path.write_text(json.dumps(current, indent=2) + "\n")
        return 0, (f"wrote baseline {path} (schema {SCHEMA_VERSION}, "
                   f"{current['cells']} cells)")

    baseline = json.loads(path.read_text())
    problems = check(current, baseline, tolerance=tolerance)
    return (1 if problems else 0), format_report(current, baseline, problems)
