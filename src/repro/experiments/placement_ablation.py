"""Placement ablation: three routing policies on identical demand.

The fleet layer separates *what the population wants* (the seeded
demand stream) from *where each demand lands* (the placement engine),
so policies can be ablated on byte-identical workloads: every policy
sees the same devices, the same arrivals, the same app mixes — only the
guest choices differ.

Compared on the pinned fleet (12 devices / 3 sites, 40 arrivals,
seed 7):

* ``capability`` — biggest feasible screen wins.  Ignores load, so hot
  surfaces (the wall display, the fastest tablet) collect convoys.
* ``least-loaded`` — shortest projected queue wins.  Ignores transfer
  cost, so it happily routes large images over the slowest radios to
  idle-but-wrong surfaces.
* ``cost-model`` — predicted end-to-end migration seconds win
  (queue projection + transfer/restore prediction from the stage cost
  model + current medium contention).  Expected to dominate
  least-loaded on tail latency: the tail is exactly where a cheap queue
  on a slow link loses to a short wait for a fast one.

All three see the same feasibility gate, so refusal counts match by
construction; the interesting deltas are p50/p95/p99 and makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.fleet import (
    FleetResult,
    FleetSpec,
    run_fleet,
)
from repro.experiments.harness import format_table

SEED = 7
DEVICES = 12
ARRIVALS = 40
POLICIES = ("capability", "least-loaded", "cost-model")


@dataclass
class PolicyRow:
    policy: str
    migrated: int
    refused: int
    rejected: int
    p50_s: float
    p95_s: float
    p99_s: float
    refusal_rate: float
    makespan_s: float


@dataclass
class AblationResult:
    rows: List[PolicyRow]
    results: Dict[str, FleetResult]

    def row_for(self, policy: str) -> PolicyRow:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)


def run(seed: int = SEED, devices: int = DEVICES,
        arrivals: int = ARRIVALS) -> AblationResult:
    rows: List[PolicyRow] = []
    results: Dict[str, FleetResult] = {}
    for policy in POLICIES:
        result = run_fleet(FleetSpec(devices=devices, arrivals=arrivals,
                                     seed=seed, policy=policy))
        slo = result.slo
        results[policy] = result
        rows.append(PolicyRow(
            policy=policy,
            migrated=slo["migrated"],
            refused=slo["refused"],
            rejected=slo["rejected"],
            p50_s=slo["p50_s"],
            p95_s=slo["p95_s"],
            p99_s=slo["p99_s"],
            refusal_rate=slo["refusal_rate"],
            makespan_s=result.makespan))
    return AblationResult(rows=rows, results=results)


def render() -> str:
    result = run()
    headers = ["policy", "migrated", "refused", "p50 (s)", "p95 (s)",
               "p99 (s)", "refusal rate", "makespan (s)"]
    rows = [[r.policy, r.migrated, r.refused, f"{r.p50_s:.3f}",
             f"{r.p95_s:.3f}", f"{r.p99_s:.3f}",
             f"{r.refusal_rate:.1%}", f"{r.makespan_s:.1f}"]
            for r in result.rows]
    cost = result.row_for("cost-model")
    loaded = result.row_for("least-loaded")
    lines = [
        format_table(headers, rows,
                     title=f"Placement ablation: {DEVICES} devices, "
                           f"{ARRIVALS} arrivals, seed {SEED}, "
                           f"identical demand per policy"),
        "",
        f"cost-model vs least-loaded p95: {cost.p95_s:.3f}s vs "
        f"{loaded.p95_s:.3f}s "
        f"({(1 - cost.p95_s / loaded.p95_s):.0%} lower tail latency)",
    ]
    return "\n".join(lines)
