"""Figure 14: user-perceived migration time excluding data transfer.

Paper: preparation and checkpoint hide behind the target-selection menu
(user-perceived average ≈ 5.8 s of the 7.88 s total); excluding the
transfer stage as well leaves an average of 1.35 s — the floor better
networks approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.catalog import MIGRATABLE_APPS
from repro.experiments.harness import SweepResult, format_table, run_sweep

PAPER_AVERAGE_NON_TRANSFER_SECONDS = 1.35
PAPER_AVERAGE_PERCEIVED_SECONDS = 5.8


@dataclass
class Fig14Row:
    title: str
    package: str
    seconds_by_pair: Dict[str, float]


def run(sweep: SweepResult = None) -> List[Fig14Row]:
    sweep = sweep or run_sweep()
    rows = []
    for spec in MIGRATABLE_APPS:
        seconds = {
            pair: sweep.report_for(pair, spec.package).non_transfer_seconds
            for pair in sweep.pair_labels}
        rows.append(Fig14Row(title=spec.title, package=spec.package,
                             seconds_by_pair=seconds))
    return rows


def averages(sweep: SweepResult = None) -> Dict[str, float]:
    sweep = sweep or run_sweep()
    return {
        "non_transfer": sweep.average_non_transfer_seconds(),
        "perceived": sweep.average_perceived_seconds(),
    }


def render() -> str:
    sweep = run_sweep()
    rows = run(sweep)
    table = [
        (r.title, *(f"{r.seconds_by_pair[p]:.2f}" for p in sweep.pair_labels))
        for r in rows]
    text = format_table(
        ("app", *sweep.pair_labels), table,
        title="Figure 14: user-perceived migration time excluding "
              "transfer (seconds)")
    avg = averages(sweep)
    return (f"{text}\n\naverage non-transfer: {avg['non_transfer']:.2f} s "
            f"(paper: {PAPER_AVERAGE_NON_TRANSFER_SECONDS:.2f} s); "
            f"average perceived: {avg['perceived']:.2f} s "
            f"(paper: {PAPER_AVERAGE_PERCEIVED_SECONDS:.1f} s)")
