"""Regenerate every table and figure: ``python -m repro.experiments``.

Pass experiment names (e.g. ``fig12 table2``) to run a subset.
"""

import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv) -> int:
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"choose from {sorted(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        print(ALL_EXPERIMENTS[name].render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
