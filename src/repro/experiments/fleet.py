"""Fleet layer: seeded demand over a device population, placed and run.

A *fleet* scales the scenario runner from one hand-written world to a
population: ``--devices N`` surfaces (profiles cycling through
:data:`~repro.android.hardware.profiles.FLEET_PROFILE_CYCLE`) are
partitioned into *sites* of ``site_size`` devices.  Each site is a
sealed scenario world — its own virtual clock, its own shared-WiFi
:class:`~repro.android.net.link.Medium`, its own admission resources —
exactly the sealed-simulation shape the sweep's executor layer already
exploits, which is what makes fleet runs shardable.

Per site, a seeded arrival process (exponential interarrivals on the
site's own RNG stream) generates migration *demands*: at ``t``, device
``H`` wants to move the next package from its seeded app mix somewhere.
Each demand is routed through the chosen
:class:`~repro.core.migration.placement.PlacementEngine`; feasible
assignments compile into :class:`~repro.experiments.scenario.SessionSpec`
sessions (placement decision attached, so the flight recorder carries a
``placement.decision`` event per session) and run on the existing
discrete-event scheduler.  Infeasible demands are refused with
``NO_FEASIBLE_GUEST``; under ``admission="shed"`` demands aimed at
overloaded surfaces are shed at compile time instead of queued.

Determinism contract: population, demands, and placements are pure
functions of the :class:`FleetSpec`; sites are independent simulations
merged in site order regardless of executor or shard grouping.  The
same spec therefore produces byte-identical fleet documents across
runs, ``--shard`` counts, and serial vs process executors.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.android.hardware.profiles import FLEET_PROFILE_CYCLE, DeviceProfile
from repro.apps.catalog import TOP_APPS, app_by_package
from repro.core.migration.placement import (
    Demand,
    LoadLedger,
    PlacementDecision,
    PLACEMENT_POLICIES,
    engine_for,
    infeasibility,
    predict_migration_seconds,
    recorded_needs,
)
from repro.experiments.harness import FORWARDED_ENV, _mp_context, format_table
from repro.experiments.scenario import ScenarioSpec, SessionSpec, run_scenario
from repro.sim.metrics import merge_snapshots, rollup_counters
from repro.sim.rng import RngFactory, derive_seed
from repro.sim.timeline import series_key, split_series_key


class FleetError(Exception):
    pass


FLEET_ADMISSION_POLICIES = ("queue", "refuse", "shed")

#: Mean seconds between demand arrivals at one site.
MEAN_INTERARRIVAL_S = 4.0


@dataclass(frozen=True)
class FleetSpec:
    """A fleet run's full configuration (the determinism unit)."""

    devices: int = 12
    arrivals: int = 40
    seed: int = 0
    policy: str = "cost-model"
    site_size: int = 4
    admission: str = "queue"
    #: Under ``admission="shed"``: a demand is shed (dropped at compile
    #: time) when either endpoint's projected queue depth reaches this.
    shed_depth: int = 4

    def __post_init__(self) -> None:
        if self.devices < 2:
            raise FleetError(f"a fleet needs >= 2 devices, got "
                             f"{self.devices}")
        if self.arrivals < 0:
            raise FleetError(f"negative arrivals {self.arrivals!r}")
        if self.site_size < 2:
            raise FleetError(f"a site needs >= 2 devices, got "
                             f"site_size={self.site_size}")
        if self.policy not in PLACEMENT_POLICIES:
            raise FleetError(f"unknown placement policy {self.policy!r} "
                             f"(use one of {PLACEMENT_POLICIES})")
        if self.admission not in FLEET_ADMISSION_POLICIES:
            raise FleetError(
                f"unknown admission policy {self.admission!r} "
                f"(use one of {FLEET_ADMISSION_POLICIES})")
        if self.shed_depth < 1:
            raise FleetError(f"shed_depth must be >= 1, got "
                             f"{self.shed_depth}")


class Site(NamedTuple):
    """One sealed slice of the population: a scenario world to be."""

    index: int
    name: str
    devices: Tuple[Tuple[str, DeviceProfile], ...]
    arrivals: int


class SiteOutcome(NamedTuple):
    """What one site's simulation produced (picklable, JSON-able)."""

    site: str
    rows: List[Dict]
    metrics: Dict
    events: List[Dict]
    timeline: Dict[str, List[List[float]]]
    makespan: float
    device_utilization: Dict[str, float]
    medium_utilization: float


@dataclass
class FleetResult:
    """Everything a fleet run produced, merged in site order."""

    spec: FleetSpec
    sites: List[str]
    #: One row per demand, site-major then arrival order: placement
    #: decision plus (for compiled sessions) the scenario outcome.
    rows: List[Dict]
    metrics: Dict
    #: Every site's event stream, site-labeled, concatenated in site
    #: order (sites are independent clocks; merging by time would be
    #: meaningless — same shape as the sweep's pair-labeled stream).
    events: List[Dict]
    #: Every site's timeline, ``site=<name>`` folded into the keys.
    timeline: Dict[str, List[List[float]]] = field(default_factory=dict)
    makespan_by_site: Dict[str, float] = field(default_factory=dict)
    device_utilization: Dict[str, float] = field(default_factory=dict)
    medium_utilization: Dict[str, float] = field(default_factory=dict)
    slo: Dict = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Fleet completion: the slowest site's makespan (sites run in
        parallel wall-clock-wise; their virtual clocks are private)."""
        return max(self.makespan_by_site.values(), default=0.0)


# -- population / demand generation ------------------------------------------


def build_sites(spec: FleetSpec) -> List[Site]:
    """Partition the population into sites and apportion the arrivals.

    Device ``i`` is named ``dev{i:02d}`` (globally unique, so merged
    fleet telemetry never collides) with profile ``FLEET_PROFILE_CYCLE[i
    % len]``.  Sites take ``site_size`` consecutive devices; a trailing
    singleton folds into the previous site (a one-device site could
    never host a migration).  Arrivals spread round-robin-evenly:
    ``arrivals // S`` per site plus one for the first ``arrivals % S``.
    """
    names = [f"dev{i:02d}" for i in range(spec.devices)]
    profiles = [FLEET_PROFILE_CYCLE[i % len(FLEET_PROFILE_CYCLE)]
                for i in range(spec.devices)]
    groups: List[List[Tuple[str, DeviceProfile]]] = []
    for start in range(0, spec.devices, spec.site_size):
        groups.append(list(zip(names[start:start + spec.site_size],
                               profiles[start:start + spec.site_size])))
    if len(groups) > 1 and len(groups[-1]) < 2:
        groups[-2].extend(groups.pop())
    site_count = len(groups)
    base, remainder = divmod(spec.arrivals, site_count)
    per_site = [base + (1 if i < remainder else 0)
                for i in range(site_count)]
    capacity = len(TOP_APPS)
    if max(per_site) > capacity:
        raise FleetError(
            f"{max(per_site)} arrivals at one site exceeds the "
            f"{capacity}-app catalog (each site demands each package at "
            f"most once); add devices or reduce --arrivals")
    return [Site(index=i, name=f"site{i}", devices=tuple(group),
                 arrivals=per_site[i])
            for i, group in enumerate(groups)]


def site_demands(spec: FleetSpec, site: Site) -> List[Demand]:
    """The site's seeded demand stream — a pure function of the spec.

    One RNG stream per site drives arrivals and home selection; one
    stream per device shuffles its app mix.  A package is demanded at
    most once per site (the scenario contract: each (home, package)
    launches once; keeping it site-unique also keeps guests from
    hosting two instances of one package).
    """
    factory = RngFactory(spec.seed)
    rng = factory.stream("fleet", site.name, "arrivals")
    profile_of = dict(site.devices)
    mixes: Dict[str, List[str]] = {}
    for name, profile in site.devices:
        # A device only demands packages it can host itself: the app
        # must launch and run its workload at home before it can be
        # migrated anywhere (a wall display never demands a vibrator
        # app — that app could not have started there).
        packages = [app.package for app in TOP_APPS
                    if infeasibility(recorded_needs(app), profile,
                                     profile) is None]
        factory.stream("fleet", site.name, name, "mix").shuffle(packages)
        mixes[name] = packages
    used: set = set()
    demands: List[Demand] = []
    t = 0.0
    for _ in range(site.arrivals):
        t += rng.expovariate(1.0 / MEAN_INTERARRIVAL_S)
        eligible = [name for name, _ in site.devices
                    if any(p not in used for p in mixes[name])]
        if not eligible:
            break
        home = eligible[rng.randrange(len(eligible))]
        package = next(p for p in mixes[home] if p not in used)
        used.add(package)
        demands.append(Demand(arrival=round(t, 6), home=home,
                              package=package))
    return demands


# -- placement compilation ---------------------------------------------------


def place_site(spec: FleetSpec, site: Site, demands: Sequence[Demand]
               ) -> Tuple[List[SessionSpec], List[Dict]]:
    """Route every demand through the engine; compile the accepted ones.

    Returns ``(sessions, rows)`` where each row carries the demand, the
    decision, and a provisional status (``placed`` rows are finalized
    from the scenario outcome by :func:`run_site`).
    """
    engine = engine_for(spec.policy)
    ledger = LoadLedger()
    profile_of = dict(site.devices)
    sessions: List[SessionSpec] = []
    rows: List[Dict] = []
    for demand in demands:
        now = demand.arrival
        app = app_by_package(demand.package)
        home_view = ledger.view(demand.home, profile_of[demand.home], now)
        candidates = [ledger.view(name, profile, now)
                      for name, profile in site.devices
                      if name != demand.home]
        decision = engine.choose(demand, app, home_view, candidates)
        row = {
            "site": site.name,
            "arrival": demand.arrival,
            "home": demand.home,
            "guest": decision.guest,
            "package": demand.package,
            "placement": dict(decision.attrs()),
            "status": "placed",
            "session": None,
            "refusal": None,
        }
        if decision.guest is None:
            row["status"] = "refused"
            row["refusal"] = decision.refusal.value
            rows.append(row)
            continue
        if spec.admission == "shed":
            guest_view = next(c for c in candidates
                              if c.name == decision.guest)
            depth = max(home_view.queue_depth, guest_view.queue_depth)
            if depth >= spec.shed_depth:
                row["status"] = "shed"
                row["placement"]["detail"] = (
                    f"shed: projected queue depth {depth} >= "
                    f"{spec.shed_depth}")
                rows.append(row)
                continue
        prediction = predict_migration_seconds(
            app, profile_of[demand.home], profile_of[decision.guest],
            active_flows=next(c for c in candidates
                              if c.name == decision.guest).active_flows)
        ledger.commit(demand.home, decision.guest, now, prediction)
        sessions.append(SessionSpec(home=demand.home, guest=decision.guest,
                                    package=demand.package,
                                    start=demand.arrival,
                                    placement=decision.attrs()))
        rows.append(row)
    return sessions, rows


# -- site execution ----------------------------------------------------------


def _medium_busy_seconds(timeline: Dict[str, List[List[float]]]) -> float:
    """Seconds the site medium had at least one active flow, integrated
    from its edge-sampled ``medium/active_flows`` series."""
    samples = timeline.get(series_key("medium/active_flows",
                                      {"medium": "medium"}), [])
    busy, prev_t, prev_v = 0.0, None, 0.0
    for t, value in samples:
        if prev_t is not None and prev_v > 0:
            busy += t - prev_t
        prev_t, prev_v = t, value
    return busy


def run_site(spec: FleetSpec, site: Site) -> SiteOutcome:
    """Generate, place, and execute one site; resolve its rows."""
    demands = site_demands(spec, site)
    sessions, rows = place_site(spec, site, demands)
    scenario_spec = ScenarioSpec(
        devices=site.devices,
        sessions=tuple(sessions),
        seed=derive_seed(spec.seed, "fleet", site.name),
        admission=("refuse" if spec.admission == "refuse" else "queue"))
    result = run_scenario(scenario_spec)
    by_route = {(o.spec.home, o.spec.package): o for o in result.sessions}
    for row in rows:
        if row["status"] != "placed":
            row.update(submitted=None, queued_seconds=None,
                       wait_profile=None, stages={}, critical_path=[],
                       faulted_stage=None, total_seconds=None,
                       transferred_bytes=0)
            continue
        outcome = by_route[(row["home"], row["package"])]
        report = outcome.report
        row.update({
            "status": outcome.status,
            "session": outcome.session or None,
            "refusal": (outcome.refusal.value if outcome.refusal
                        else None),
            "submitted": round(outcome.submitted, 6),
            "queued_seconds": round(outcome.queued_seconds, 6),
            "wait_profile": ({k: round(v, 6) for k, v in
                              sorted(outcome.wait_profile.items())}
                             if outcome.wait_profile else None),
            "stages": ({s: round(v, 6) for s, v in report.stages.items()}
                       if report is not None else {}),
            "critical_path": (report.critical_path
                              if report is not None else []),
            "faulted_stage": (report.faulted_stage
                              if report is not None else None),
            "total_seconds": (round(report.total_seconds, 6)
                              if report is not None else None),
            "transferred_bytes": (report.transferred_bytes
                                  if report is not None else 0),
        })
    makespan = round(result.makespan, 6)
    busy = _medium_busy_seconds(result.timeline)
    return SiteOutcome(
        site=site.name,
        rows=rows,
        metrics=result.metrics,
        events=result.events,
        timeline=result.timeline,
        makespan=makespan,
        device_utilization={name: round(value, 6) for name, value in
                            result.device_utilization.items()},
        medium_utilization=(round(busy / makespan, 6)
                            if makespan > 0 else 0.0))


# -- executor layer ----------------------------------------------------------


def _site_worker(spec: FleetSpec, site: Site,
                 env: Dict[str, Optional[str]]) -> SiteOutcome:
    """Process-pool entry point: re-apply the parent's telemetry env
    (spawn-safe, like the sweep's ``_pair_worker``), run one site."""
    for key, value in env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    return run_site(spec, site)


def _resolve_workers(workers: Union[int, str, None], site_count: int) -> int:
    if workers is None:
        workers = 1
    if workers == "auto":
        workers = os.cpu_count() or 1
    try:
        workers = int(workers)
    except ValueError:
        workers = 1
    return max(1, min(workers, max(site_count, 1)))


def _run_sites(spec: FleetSpec, sites: Sequence[Site], workers: int,
               executor: str,
               start_method: Optional[str] = None) -> List[SiteOutcome]:
    """Run sites on the chosen executor; results in given site order."""
    if executor == "serial" or workers <= 1:
        return [run_site(spec, site) for site in sites]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_site, spec, site) for site in sites]
            return [f.result() for f in futures]
    if executor != "process":
        raise FleetError(f"unknown executor {executor!r}; choose from "
                         f"('serial', 'thread', 'process')")
    env = {key: os.environ.get(key) for key in FORWARDED_ENV}
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_mp_context(start_method)) as pool:
        futures = [pool.submit(_site_worker, spec, site, env)
                   for site in sites]
        return [f.result() for f in futures]


# -- merging / reporting -----------------------------------------------------


def _percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile over an ascending sequence (0.0 empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * p // 100))  # ceil(n*p/100)
    return sorted_values[int(rank) - 1]


def fleet_slo(rows: Sequence[Dict]) -> Dict:
    """The fleet report's headline numbers, from the demand rows alone."""
    walls = sorted(row["wait_profile"]["wall_s"] for row in rows
                   if row["status"] == "migrated" and row.get("wait_profile"))
    counts: Dict[str, int] = {}
    for row in rows:
        counts[row["status"]] = counts.get(row["status"], 0) + 1
    demands = len(rows)
    refused = counts.get("refused", 0) + counts.get("rejected", 0)
    shed = counts.get("shed", 0)
    return {
        "demands": demands,
        "migrated": counts.get("migrated", 0),
        "faulted": counts.get("faulted", 0),
        "refused": counts.get("refused", 0),
        "rejected": counts.get("rejected", 0),
        "shed": shed,
        "p50_s": round(_percentile(walls, 50), 6),
        "p95_s": round(_percentile(walls, 95), 6),
        "p99_s": round(_percentile(walls, 99), 6),
        "refusal_rate": round(refused / demands, 6) if demands else 0.0,
        "shed_rate": round(shed / demands, 6) if demands else 0.0,
    }


def merge_site_outcomes(spec: FleetSpec, sites: Sequence[Site],
                        outcomes: Sequence[SiteOutcome]) -> FleetResult:
    """Fold per-site outcomes (any executor's, any shard grouping's)
    into one FleetResult — always in the given site order, which
    callers keep in global site-index order; that is the whole
    shard-merge determinism story."""
    rows: List[Dict] = []
    events: List[Dict] = []
    timeline: Dict[str, List[List[float]]] = {}
    makespans: Dict[str, float] = {}
    device_utilization: Dict[str, float] = {}
    medium_utilization: Dict[str, float] = {}
    for outcome in outcomes:
        rows.extend(outcome.rows)
        for event in outcome.events:
            tagged = dict(event)
            tagged["site"] = outcome.site
            events.append(tagged)
        for key, samples in outcome.timeline.items():
            name, labels = split_series_key(key)
            labels["site"] = outcome.site
            timeline[series_key(name, labels)] = samples
        makespans[outcome.site] = outcome.makespan
        device_utilization.update(outcome.device_utilization)
        medium_utilization[outcome.site] = outcome.medium_utilization
    metrics = merge_snapshots([o.metrics for o in outcomes])
    return FleetResult(
        spec=spec,
        sites=[site.name for site in sites],
        rows=rows,
        metrics=metrics,
        events=events,
        timeline={key: timeline[key] for key in sorted(timeline)},
        makespan_by_site=makespans,
        device_utilization=device_utilization,
        medium_utilization=medium_utilization,
        slo=fleet_slo(rows))


def run_fleet(spec: FleetSpec,
              shard: Optional[Tuple[int, int]] = None,
              shard_count: Optional[int] = None,
              workers: Union[int, str, None] = None,
              executor: Optional[str] = None,
              start_method: Optional[str] = None) -> FleetResult:
    """Run a fleet (or one shard of it) and merge in site order.

    ``shard=(k, n)`` runs only sites ``i % n == k`` — a *partial* fleet
    for distributed runs; ``shard_count=n`` runs all ``n`` shard groups
    (each group a separate executor batch) and reassembles the outcomes
    in global site order, which is byte-identical to the unsharded run.
    """
    if shard is not None and shard_count is not None:
        raise FleetError("pass shard=(k, n) or shard_count=n, not both")
    sites = build_sites(spec)
    if executor is None:
        executor = "serial" if _resolve_workers(workers, 1) <= 1 \
            else "process"
    if shard is not None:
        k, n = shard
        if n < 1 or not 0 <= k < n:
            raise FleetError(f"bad shard {k}/{n}: need 0 <= K < N")
        selected = [site for site in sites if site.index % n == k]
        workers_n = _resolve_workers(workers, len(selected))
        outcomes = _run_sites(spec, selected, workers_n, executor,
                              start_method)
        return merge_site_outcomes(spec, selected, outcomes)
    groups = ([sites] if not shard_count else
              [[site for site in sites if site.index % shard_count == g]
               for g in range(shard_count)])
    by_index: Dict[int, SiteOutcome] = {}
    for group in groups:
        if not group:
            continue
        workers_n = _resolve_workers(workers, len(group))
        for site, outcome in zip(group, _run_sites(spec, group, workers_n,
                                                   executor, start_method)):
            by_index[site.index] = outcome
    ordered = [by_index[site.index] for site in sites]
    return merge_site_outcomes(spec, sites, ordered)


# -- documents / rendering ---------------------------------------------------


def fleet_metrics_document(spec: FleetSpec, result: FleetResult,
                           shard: Optional[str] = None) -> Dict:
    """The fleet's merged metrics + per-demand rows, JSON-ready.

    What ``flux-sim fleet --metrics-out`` writes and a fleet run bundle
    stores as ``metrics.json``; the rows carry both the placement
    decisions and the wait profiles, so the diff engine can attribute a
    latency regression to placement or to contention.
    """
    return {
        "schema": 1,
        "fleet": {
            "devices": spec.devices,
            "arrivals": spec.arrivals,
            "seed": spec.seed,
            "policy": spec.policy,
            "site_size": spec.site_size,
            "admission": spec.admission,
            "shard": shard,
            "sites": list(result.sites),
            "slo": result.slo,
            "makespan_by_site": {s: round(m, 6) for s, m in
                                 sorted(result.makespan_by_site.items())},
            "device_utilization": {d: round(u, 6) for d, u in
                                   sorted(result.device_utilization.items())},
            "medium_utilization": {s: round(u, 6) for s, u in
                                   sorted(result.medium_utilization.items())},
            "sessions": result.rows,
        },
        "metrics": result.metrics,
        "rollup": rollup_counters(result.metrics),
    }


def render_fleet(result: FleetResult) -> str:
    """The human-readable fleet report ``flux-sim fleet`` prints."""
    rows = []
    for row in result.rows:
        guest = row["guest"] or "-"
        profile = row.get("wait_profile") or {}
        rows.append((
            row["site"],
            f"{row['home']}->{guest}",
            row["package"],
            row["status"].upper(),
            row["session"] or "-",
            (f"{profile['wall_s']:.3f}" if profile else "-"),
            row["placement"].get("detail", "") or row.get("refusal") or "",
        ))
    slo = result.slo
    lines = [format_table(
        ("site", "route", "package", "status", "session", "wall (s)",
         "why"),
        rows, title=f"fleet: {result.spec.devices} devices / "
                    f"{len(result.sites)} sites, "
                    f"{slo['demands']} demands, "
                    f"policy={result.spec.policy}, "
                    f"seed={result.spec.seed}")]
    lines.append("")
    lines.append(
        f"latency: p50 {slo['p50_s']:.3f}s  p95 {slo['p95_s']:.3f}s  "
        f"p99 {slo['p99_s']:.3f}s  ({slo['migrated']} migrated)")
    lines.append(
        f"refusals: {slo['refusal_rate']:.1%} "
        f"({slo['refused']} refused, {slo['rejected']} rejected), "
        f"shed {slo['shed_rate']:.1%} ({slo['shed']})")
    busiest = sorted(result.device_utilization.items(),
                     key=lambda item: (-item[1], item[0]))[:3]
    if busiest:
        lines.append("busiest devices: " + ", ".join(
            f"{name} {value:.0%}" for name, value in busiest))
    lines.append("medium utilization: " + ", ".join(
        f"{site} {value:.0%}" for site, value in
        sorted(result.medium_utilization.items())))
    return "\n".join(lines)
