"""Figure 13: percentage breakdown of migration time by stage.

Paper: relative stage costs are fairly constant across apps, with data
transfer dominating — over half the time on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.catalog import MIGRATABLE_APPS
from repro.core.migration.migration import STAGES
from repro.experiments.harness import SweepResult, format_table, run_sweep

PAPER_TRANSFER_FRACTION_MIN = 0.50


@dataclass
class Fig13Row:
    title: str
    package: str
    fractions: Dict[str, float]    # stage -> mean fraction across pairs


def run(sweep: SweepResult = None) -> List[Fig13Row]:
    sweep = sweep or run_sweep()
    rows = []
    for spec in MIGRATABLE_APPS:
        reports = sweep.reports_for_app(spec.package)
        fractions = {
            stage: sum(r.stage_fraction(stage) for r in reports)
            / len(reports)
            for stage in STAGES}
        rows.append(Fig13Row(title=spec.title, package=spec.package,
                             fractions=fractions))
    return rows


def average_transfer_fraction(sweep: SweepResult = None) -> float:
    sweep = sweep or run_sweep()
    return sweep.average_stage_fraction("transfer")


def render() -> str:
    sweep = run_sweep()
    rows = run(sweep)
    table = [
        (r.title, *(f"{r.fractions[s] * 100:.1f}%" for s in STAGES))
        for r in rows]
    text = format_table(("app", *STAGES), table,
                        title="Figure 13: migration time breakdown "
                              "(mean % across device pairs)")
    avg = average_transfer_fraction(sweep)
    return (f"{text}\n\naverage transfer share: {avg * 100:.1f}% "
            f"(paper: > {PAPER_TRANSFER_FRACTION_MIN * 100:.0f}%)")
