"""Ablation: retry-with-resume vs retry-from-scratch after a link fault.

BinderCracker-style systematic fault injection (see ISSUE 2 / DESIGN.md)
gives every migration fault a defined outcome: the stage pipeline rolls
completed stages back, the app keeps running on the home device, and the
guest holds no partial process state.  What a rollback deliberately
*keeps* is cache — under ``FluxExtensions.pipelined_transfer`` the
content-addressed chunks that fully crossed the wire before the drop
stay in the guest's chunk store — so a retry resumes, negotiating
digests and moving only the chunks the guest has never seen.  The serial
(paper-faithful) path has no such cache and retries from scratch.

Measured here: migrate the largest catalog app (Candy Crush, ~13.5 MB
compressed image) over a link armed to drop after ``DROP_AFTER_BYTES``
cumulative payload bytes (~60% through the image), then retry over a
healthy link.  The interesting column is the retry's image wire bytes:
from-scratch pays the full image again; resume pays roughly the lost
tail plus the always-fresh descriptor/record-log chunks and the digest
negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import repro.sim.units as units
from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_7_2013
from repro.android.net.link import LinkFaultPlan, link_between
from repro.apps import app_by_title
from repro.core.cria.errors import MigrationError
from repro.core.extensions import FluxExtensions
from repro.experiments.harness import format_table
from repro.sim import SimClock
from repro.sim.rng import RngFactory


APP_TITLE = "Candy Crush Saga"
SEED = 23
#: Cumulative link-payload offset of the injected drop — roughly 60%
#: through Candy Crush's compressed image, so a resumed retry has a
#: large delivered prefix to skip.
DROP_AFTER_BYTES = units.mb(8)


@dataclass
class FaultAblationRow:
    config: str
    faulted_stage: str
    first_wire_bytes: int          # image bytes delivered before the drop
    retry_wire_bytes: int          # image bytes the retry moved
    retry_chunk_hit_rate: float
    retry_seconds: float
    home_still_running: bool       # app usable at home between attempts
    guest_partial_processes: int   # guest residue after the rollback


def _measure(config: str, extensions: FluxExtensions,
             seed: int = SEED) -> FaultAblationRow:
    clock = SimClock()
    factory = RngFactory(seed)
    home = Device(NEXUS_7_2013, clock, factory, name="home")
    guest = Device(NEXUS_7_2013, clock, factory, name="guest")
    spec = app_by_title(APP_TITLE)
    spec.install_and_launch(home)
    home.pairing_service.pair(guest)

    link = link_between(home.profile, guest.profile, home.rng_factory,
                        metrics=home.metrics)
    link.inject_fault(LinkFaultPlan(drop_after_bytes=DROP_AFTER_BYTES))
    try:
        home.migration_service.migrate(guest, spec.package, link=link,
                                       extensions=extensions)
        raise AssertionError("injected link fault did not fire")
    except MigrationError:
        pass
    failed = home.migration_service.history[-1]

    home_ok = home.running_packages() == [spec.package]
    residue = len(guest.kernel.processes_of_package(spec.package))

    retry = home.migration_service.migrate(guest, spec.package,
                                           extensions=extensions)
    return FaultAblationRow(
        config=config,
        faulted_stage=failed.faulted_stage or "?",
        first_wire_bytes=failed.image_wire_bytes,
        retry_wire_bytes=retry.image_wire_bytes,
        retry_chunk_hit_rate=retry.chunk_hit_rate,
        retry_seconds=retry.total_seconds,
        home_still_running=home_ok,
        guest_partial_processes=residue)


def run(seed: int = SEED) -> List[FaultAblationRow]:
    configs: List[Tuple[str, FluxExtensions]] = [
        ("serial, retry from scratch", FluxExtensions.none()),
        ("pipelined, retry with resume",
         FluxExtensions(pipelined_transfer=True)),
    ]
    return [_measure(name, extensions, seed=seed)
            for name, extensions in configs]


def resume_savings(rows: List[FaultAblationRow] = None) -> float:
    """Fraction of retry image bytes the chunk-cache resume avoids."""
    rows = rows or run()
    scratch = next(r for r in rows if "scratch" in r.config)
    resume = next(r for r in rows if "resume" in r.config)
    if not scratch.retry_wire_bytes:
        return 0.0
    return 1.0 - resume.retry_wire_bytes / scratch.retry_wire_bytes


def render() -> str:
    rows = run()
    table = [(r.config, r.faulted_stage,
              units.format_size(r.first_wire_bytes),
              units.format_size(r.retry_wire_bytes),
              f"{r.retry_chunk_hit_rate * 100:.0f}%",
              f"{r.retry_seconds:.2f}",
              "yes" if r.home_still_running else "NO",
              str(r.guest_partial_processes))
             for r in rows]
    text = format_table(
        ("configuration", "faulted stage", "delivered before drop",
         "retry image wire", "retry chunk hits", "retry s",
         "home app alive", "guest residue"),
        table,
        title="Fault ablation: link drop at "
              f"{units.format_size(DROP_AFTER_BYTES)} cumulative, then "
              f"retry ({APP_TITLE})")
    savings = resume_savings(rows)
    return (f"{text}\n\nretry image bytes avoided by chunk-cache resume "
            f"(vs retry-from-scratch): {savings:.0%}; every fault rolls "
            "back to a running home app and a clean guest")
