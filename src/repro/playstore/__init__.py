"""Synthetic Google Play catalog and the paper's app-analysis study."""

from repro.playstore.analyzer import (
    DEFAULT_CDF_POINTS,
    AnalysisReport,
    analyze_catalog,
    scan_sources,
)
from repro.playstore.catalog import (
    PAPER_CATALOG_SIZE,
    PAPER_PRESERVE_EGL_COUNT,
    PlayStoreApp,
    generate_catalog,
    size_cdf,
)

__all__ = [
    "DEFAULT_CDF_POINTS", "AnalysisReport", "analyze_catalog",
    "scan_sources", "PAPER_CATALOG_SIZE", "PAPER_PRESERVE_EGL_COUNT",
    "PlayStoreApp", "generate_catalog", "size_cdf",
]
