"""Synthetic Google Play catalog (the PlayDrone substitute).

The paper analyzed 488,259 free apps crawled with PlayDrone (§4).  We
generate a deterministic synthetic catalog of the same size whose
install-size distribution is calibrated to the published CDF anchors:
roughly 60% of apps under 1 MB and roughly 90% under 10 MB (Figure 17).
A log-normal fits both anchors: solving

    CDF(1 MB) = 0.60  and  CDF(10 MB) = 0.90

gives sigma = ln(10) / (z_.90 - z_.60) ≈ 2.238 and
mu = ln(1 MB) - z_.60 * sigma ≈ 13.249 (natural log of bytes).

``calls_preserve_egl`` is set for exactly 3,300 apps, the paper's count
of apps calling ``setPreserveEGLContextOnPause``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.sim import units
from repro.sim.rng import RngFactory


PAPER_CATALOG_SIZE = 488_259
PAPER_PRESERVE_EGL_COUNT = 3_300

# Log-normal parameters (bytes), derived in the module docstring.
SIZE_MU = 13.249
SIZE_SIGMA = 2.238
MIN_SIZE = 10 * 1024          # Figure 17's x-axis starts at 10 KB
MAX_SIZE = 4 * units.GB

CATEGORIES = (
    "games", "social", "tools", "media", "productivity", "shopping",
    "travel", "education", "finance", "health", "news", "weather",
)


@dataclass(frozen=True)
class PlayStoreApp:
    package: str
    category: str
    install_size: int            # metadata-reported installation size
    apk_size: int                # actual APK size (paper verified equal)
    calls_preserve_egl: bool
    multi_process: bool

    @property
    def sources_mention_preserve_egl(self) -> bool:
        """What decompiling the APK finds (analyzer-facing alias)."""
        return self.calls_preserve_egl


def _draw_size(rng) -> int:
    size = int(rng.lognormvariate(SIZE_MU, SIZE_SIGMA))
    return max(MIN_SIZE, min(size, MAX_SIZE))


def generate_catalog(count: int = PAPER_CATALOG_SIZE,
                     preserve_egl_count: Optional[int] = None,
                     seed: int = 0) -> List[PlayStoreApp]:
    """The deterministic synthetic catalog.

    ``preserve_egl_count`` defaults to the paper's 3,300 scaled by
    ``count / PAPER_CATALOG_SIZE`` when a smaller catalog is requested.
    """
    if preserve_egl_count is None:
        preserve_egl_count = round(PAPER_PRESERVE_EGL_COUNT
                                   * count / PAPER_CATALOG_SIZE)
    factory = RngFactory(seed)
    size_rng = factory.stream("playstore", "sizes")
    meta_rng = factory.stream("playstore", "meta")
    flag_rng = factory.stream("playstore", "flags")

    egl_indices = set(flag_rng.sample(range(count),
                                      min(preserve_egl_count, count)))
    apps: List[PlayStoreApp] = []
    for i in range(count):
        size = _draw_size(size_rng)
        category = CATEGORIES[i % len(CATEGORIES)]
        apps.append(PlayStoreApp(
            package=f"com.play.{category}.app{i:06d}",
            category=category,
            install_size=size,
            apk_size=size,       # installation size == APK size (paper §4)
            calls_preserve_egl=i in egl_indices,
            multi_process=meta_rng.random() < 0.004,
        ))
    return apps


def size_cdf(apps: Sequence[PlayStoreApp],
             points: Sequence[int]) -> List[float]:
    """CDF of install size evaluated at each byte threshold in ``points``."""
    sizes = sorted(app.install_size for app in apps)
    out = []
    import bisect
    for threshold in points:
        out.append(bisect.bisect_right(sizes, threshold) / len(sizes))
    return out
