"""Static analysis over the Play catalog (the paper's §4 study).

Mirrors the three findings the paper draws from its PlayDrone crawl:

1. how many apps call ``setPreserveEGLContextOnPause`` (3,300 of
   488,259 — Flux's GL-preparation approach covers the vast majority),
2. that metadata installation size matches actual APK size (verified on
   a random selection), and
3. the installation-size CDF of Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.playstore.catalog import PlayStoreApp, size_cdf
from repro.sim import units
from repro.sim.rng import RngFactory


@dataclass
class AnalysisReport:
    total_apps: int
    preserve_egl_count: int
    multi_process_count: int
    size_verified_sample: int
    size_mismatches: int
    cdf_points: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def preserve_egl_fraction(self) -> float:
        return self.preserve_egl_count / self.total_apps

    @property
    def migratable_fraction(self) -> float:
        """Apps not defeated by preserved GL contexts."""
        return 1.0 - self.preserve_egl_fraction

    def cdf_at(self, size_bytes: int) -> float:
        for threshold, value in self.cdf_points:
            if threshold == size_bytes:
                return value
        raise KeyError(f"no CDF point at {size_bytes}")


#: Figure 17's x-axis points, in bytes (10 KB ... 10 GB, log scale).
DEFAULT_CDF_POINTS = (
    10 * units.KB, 100 * units.KB, units.MB, 10 * units.MB,
    100 * units.MB, units.GB, 10 * units.GB,
)


def scan_sources(app: PlayStoreApp) -> bool:
    """'Decompile' one app and grep for setPreserveEGLContextOnPause."""
    return app.sources_mention_preserve_egl


def analyze_catalog(apps: Sequence[PlayStoreApp],
                    cdf_points: Sequence[int] = DEFAULT_CDF_POINTS,
                    size_check_sample: int = 500,
                    seed: int = 0) -> AnalysisReport:
    preserve_egl = sum(1 for app in apps if scan_sources(app))
    multi_process = sum(1 for app in apps if app.multi_process)

    rng = RngFactory(seed).stream("analyzer", "size-check")
    sample_n = min(size_check_sample, len(apps))
    sample = rng.sample(list(apps), sample_n)
    mismatches = sum(1 for app in sample
                     if app.install_size != app.apk_size)

    values = size_cdf(apps, cdf_points)
    return AnalysisReport(
        total_apps=len(apps),
        preserve_egl_count=preserve_egl,
        multi_process_count=multi_process,
        size_verified_sample=sample_n,
        size_mismatches=mismatches,
        cdf_points=list(zip(cdf_points, values)))
