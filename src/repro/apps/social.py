"""Social apps: Facebook, Twitter, Pinterest, WhatsApp, Skype.

Facebook is the paper's multi-process example: it requests a second
process and is therefore refused by the Flux prototype (§4).
"""

from __future__ import annotations

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification
from repro.apps.common import AppSpec, WorkloadActivity


class FacebookActivity(WorkloadActivity):
    VIEW_COUNT = 22


def facebook_workload(thread, device) -> None:
    """Post comment on news feed."""
    nm = thread.context.get_system_service("notification")
    nm.notify(11, Notification("Facebook", "3 new comments on your post"))
    ime = thread.context.get_system_service("input_method")
    ime.show_soft_input()
    activity = next(iter(thread.activities.values()))
    activity.saved_state["draft_comment"] = "congrats!"
    activity.render()


class TwitterActivity(WorkloadActivity):
    VIEW_COUNT = 20


def twitter_workload(thread, device) -> None:
    """View a user's Tweets."""
    nm = thread.context.get_system_service("notification")
    nm.notify(5, Notification("Twitter", "@someone mentioned you"))
    alarm = thread.context.get_system_service("alarm")
    poll = PendingIntent(thread.package,
                         Intent("com.twitter.android.POLL"))
    alarm.set_repeating(alarm.RTC, device.clock.now + 900.0, 900.0, poll)
    activity = next(iter(thread.activities.values()))
    activity.saved_state["timeline_position"] = 41
    activity.render()


class PinterestActivity(WorkloadActivity):
    VIEW_COUNT = 24


def pinterest_workload(thread, device) -> None:
    """Explore 'pinned' items of interest."""
    nm = thread.context.get_system_service("notification")
    nm.notify(8, Notification("Pinterest", "New pins for you"))
    nm.cancel(8)     # acknowledged: the pair must annihilate in the log
    activity = next(iter(thread.activities.values()))
    activity.saved_state["board"] = "workshop-ideas"
    activity.render()


class WhatsAppActivity(WorkloadActivity):
    VIEW_COUNT = 14


def whatsapp_workload(thread, device) -> None:
    """Send text to friend."""
    nm = thread.context.get_system_service("notification")
    nm.notify(21, Notification("WhatsApp", "Dan: see you at 6"))
    vibrator = thread.context.get_system_service("vibrator")
    vibrator.vibrate(30)
    alarm = thread.context.get_system_service("alarm")
    backup = PendingIntent(thread.package,
                           Intent("com.whatsapp.BACKUP"))
    alarm.set(alarm.RTC_WAKEUP, device.clock.now + 3600.0, backup)
    clipboard = thread.context.get_system_service("clipboard")
    clipboard.set_text("see you at 6")
    activity = next(iter(thread.activities.values()))
    activity.saved_state["chat"] = "dan"
    activity.render()


class SkypeActivity(WorkloadActivity):
    VIEW_COUNT = 12


def skype_workload(thread, device) -> None:
    """View contact status."""
    wifi = thread.context.get_system_service("wifi")
    wifi.acquire_lock("skype-signalling")
    audio = thread.context.get_system_service("audio")
    audio.setMode(2)     # MODE_IN_COMMUNICATION
    nm = thread.context.get_system_service("notification")
    nm.notify(2, Notification("Skype", "alice is online", ongoing=True))
    activity = next(iter(thread.activities.values()))
    activity.saved_state["contact_filter"] = "online"
    activity.render()


FACEBOOK = AppSpec(
    package="com.facebook.katana", title="Facebook",
    workload_desc="Post comment on news feed",
    apk_mb=28.0, heap_mb=16.0, data_mb=4.0,
    activity_cls=FacebookActivity, workload=facebook_workload,
    multi_process=True)

TWITTER = AppSpec(
    package="com.twitter.android", title="Twitter",
    workload_desc="View a user's Tweets",
    apk_mb=11.0, heap_mb=10.0, data_mb=2.0,
    activity_cls=TwitterActivity, workload=twitter_workload)

PINTEREST = AppSpec(
    package="com.pinterest", title="Pinterest",
    workload_desc="Explore 'pinned' items of interest",
    apk_mb=8.0, heap_mb=10.0, data_mb=2.0,
    activity_cls=PinterestActivity, workload=pinterest_workload)

WHATSAPP = AppSpec(
    package="com.whatsapp", title="WhatsApp",
    workload_desc="Send text to friend",
    apk_mb=15.0, heap_mb=7.0, data_mb=3.0,
    activity_cls=WhatsAppActivity, workload=whatsapp_workload)

SKYPE = AppSpec(
    package="com.skype.raider", title="Skype",
    workload_desc="View contact status",
    apk_mb=25.0, heap_mb=12.0, data_mb=2.0,
    activity_cls=SkypeActivity, workload=skype_workload)
