"""Shared machinery for the Table 3 workload apps.

Each app is an :class:`AppSpec`: package metadata (APK size, heap
footprint), an Activity class that builds a plausible UI (games attach a
GLSurfaceView), and a ``workload`` function that exercises the system
services the way the paper's Table 3 describes the app being used before
migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

from repro.android.app.activity import Activity
from repro.android.app.views import GLSurfaceView, View, ViewGroup
from repro.android.storage.apk import ApkFile
from repro.sim import units


class WorkloadActivity(Activity):
    """Base activity: builds a list-style UI of ``VIEW_COUNT`` views."""

    VIEW_COUNT = 12
    USES_GL = False
    GL_TEXTURE_MB = 8.0
    PRESERVE_EGL = False

    def on_create(self, saved_state) -> None:
        root = ViewGroup("content-root")
        toolbar = ViewGroup("toolbar")
        toolbar.add_view(View("title"))
        toolbar.add_view(View("menu-button"))
        root.add_view(toolbar)
        body = ViewGroup("body")
        for i in range(self.VIEW_COUNT):
            body.add_view(View(f"item-{i}"))
        root.add_view(body)
        if self.USES_GL:
            gl_view = GLSurfaceView("gl-surface",
                                    texture_bytes=int(self.GL_TEXTURE_MB
                                                      * units.MB))
            gl_view.attach_gl(self.thread.framework.gl, self.thread.process)
            if self.PRESERVE_EGL:
                gl_view.set_preserve_egl_context_on_pause(True)
            gl_view.on_resume_gl()
            root.add_view(gl_view)
        self.set_content_view(root)


@dataclass(frozen=True)
class AppSpec:
    package: str
    title: str
    workload_desc: str             # Table 3's usage description
    apk_mb: float
    heap_mb: float
    activity_cls: Type[Activity]
    workload: Callable             # (thread, device) -> None
    data_mb: float = 2.0
    sdcard_mb: float = 0.0
    version_code: int = 40
    multi_process: bool = False
    preserve_egl: bool = False
    permissions: Tuple[str, ...] = ()

    def apk(self) -> ApkFile:
        return ApkFile(
            package=self.package, version_code=self.version_code,
            size_bytes=units.mb(self.apk_mb), permissions=self.permissions,
            calls_preserve_egl=self.preserve_egl,
            multi_process=self.multi_process)

    @property
    def heap_bytes(self) -> int:
        return units.mb(self.heap_mb)

    def install(self, device) -> None:
        """Install on ``device`` without launching."""
        if not device.package_service.is_installed(self.package):
            device.install_app(self.apk(), data_bytes=units.mb(self.data_mb),
                               sdcard_bytes=units.mb(self.sdcard_mb))

    def install_and_launch(self, device):
        """Install on ``device``, start it, and run the Table 3 workload."""
        self.install(device)
        extra = 1 if self.multi_process else 0
        thread = device.launch_app(self.package, self.activity_cls,
                                   heap_bytes=self.heap_bytes,
                                   extra_processes=extra)
        self.workload(thread, device)
        self._dirty_app_data(device)
        return thread

    def _dirty_app_data(self, device) -> None:
        """Using the app modifies a little on-disk state, so migration's
        verify pass finds a small data delta (paper §4: compressed data
        sync + record log "never exceeded a combined 200 KB")."""
        prefs = f"/data/data/{self.package}/shared_prefs/prefs.xml"
        run = device.clock.now
        if device.storage.exists(prefs):
            device.storage.remove(prefs)
        device.storage.add_file(prefs, units.kb(96),
                                f"{self.package}/data/prefs/run-{run}")
