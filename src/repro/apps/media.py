"""Media apps: Netflix, Instagram, Vine, Snapchat, ZEDGE."""

from __future__ import annotations

from repro.android.app.notification import Notification
from repro.apps.common import AppSpec, WorkloadActivity


class NetflixActivity(WorkloadActivity):
    VIEW_COUNT = 20      # browse rows of box art


def netflix_workload(thread, device) -> None:
    """Browse available movies."""
    audio = thread.context.get_system_service("audio")
    audio.request_audio_focus("netflix-playback")
    audio.set_stream_volume(audio.STREAM_MUSIC, 12)
    power = thread.context.get_system_service("power")
    lock = power.new_wake_lock(power.SCREEN_DIM_WAKE_LOCK, "netflix")
    lock.acquire()
    thread.register_receiver(lambda intent: None,
                             ["android.net.conn.CONNECTIVITY_CHANGE"])
    activity = next(iter(thread.activities.values()))
    activity.saved_state["browse_row"] = 4
    activity.render()


class InstagramActivity(WorkloadActivity):
    VIEW_COUNT = 18


def instagram_workload(thread, device) -> None:
    """Browse a friend's photos."""
    location = thread.context.get_system_service("location")
    location.request_updates("network", "instagram-geotag")
    nm = thread.context.get_system_service("notification")
    nm.notify(3, Notification("Instagram", "somefriend liked your photo"))
    activity = next(iter(thread.activities.values()))
    activity.saved_state["feed_position"] = 23
    activity.render()


class VineActivity(WorkloadActivity):
    VIEW_COUNT = 15


def vine_workload(thread, device) -> None:
    """Browse a user's video feed."""
    audio = thread.context.get_system_service("audio")
    audio.request_audio_focus("vine-loop")
    power = thread.context.get_system_service("power")
    lock = power.new_wake_lock(power.SCREEN_DIM_WAKE_LOCK, "vine")
    lock.acquire()
    activity = next(iter(thread.activities.values()))
    activity.saved_state["video_index"] = 7
    activity.render()


class SnapchatActivity(WorkloadActivity):
    VIEW_COUNT = 6


def snapchat_workload(thread, device) -> None:
    """Take photo and compose text."""
    camera = thread.context.get_system_service("camera")
    camera.open(0)
    camera.close(0)      # photo taken; camera released before composing
    ime = thread.context.get_system_service("input_method")
    ime.show_soft_input()
    activity = next(iter(thread.activities.values()))
    activity.saved_state["draft_caption"] = "look at this"
    activity.render()


class ZedgeActivity(WorkloadActivity):
    VIEW_COUNT = 16


def zedge_workload(thread, device) -> None:
    """Browse ringtones and select one."""
    audio = thread.context.get_system_service("audio")
    audio.set_stream_volume(audio.STREAM_RING, 5)
    audio.request_audio_focus("zedge-preview", audio.STREAM_RING)
    audio.abandon_audio_focus("zedge-preview")
    activity = next(iter(thread.activities.values()))
    activity.saved_state["selected_ringtone"] = "marimba-remix"
    activity.render()


NETFLIX = AppSpec(
    package="com.netflix.mediaclient", title="Netflix",
    workload_desc="Browse available movies",
    apk_mb=9.5, heap_mb=11.0, data_mb=2.5,
    activity_cls=NetflixActivity, workload=netflix_workload)

INSTAGRAM = AppSpec(
    package="com.instagram.android", title="Instagram",
    workload_desc="Browse a friend's photos",
    apk_mb=13.0, heap_mb=12.0, data_mb=3.0, sdcard_mb=1.5,
    activity_cls=InstagramActivity, workload=instagram_workload)

VINE = AppSpec(
    package="co.vine.android", title="Vine",
    workload_desc="Browse a user's video feed",
    apk_mb=15.0, heap_mb=12.0, data_mb=2.0,
    activity_cls=VineActivity, workload=vine_workload)

SNAPCHAT = AppSpec(
    package="com.snapchat.android", title="Snapchat",
    workload_desc="Take photo and compose text",
    apk_mb=10.0, heap_mb=9.0, data_mb=2.0, sdcard_mb=1.0,
    activity_cls=SnapchatActivity, workload=snapchat_workload)

ZEDGE = AppSpec(
    package="net.zedge.android", title="ZEDGE",
    workload_desc="Browse ringtones and select one",
    apk_mb=7.0, heap_mb=6.0, data_mb=1.5, sdcard_mb=2.0,
    activity_cls=ZedgeActivity, workload=zedge_workload)
