"""The Table 3 app catalog: eighteen top free Google Play apps.

``TOP_APPS`` preserves the paper's ordering; ``MIGRATABLE_APPS`` is the
sixteen the prototype migrates successfully; ``EXPECTED_FAILURES`` maps
the two refusals to their reasons (Facebook: multi-process;
Subway Surfers: preserved EGL context).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.common import AppSpec
from repro.apps.games import BUBBLE_WITCH, CANDY_CRUSH, FLAPPY_BIRD, SUBWAY_SURFERS
from repro.apps.media import INSTAGRAM, NETFLIX, SNAPCHAT, VINE, ZEDGE
from repro.apps.social import FACEBOOK, PINTEREST, SKYPE, TWITTER, WHATSAPP
from repro.apps.tools import BIBLE, EBAY, FLASHLIGHT, GROUPON
from repro.core.cria.errors import MigrationRefusal


# Table 3 order.
TOP_APPS: Tuple[AppSpec, ...] = (
    BIBLE,
    BUBBLE_WITCH,
    CANDY_CRUSH,
    EBAY,
    FLAPPY_BIRD,
    FLASHLIGHT,
    GROUPON,
    INSTAGRAM,
    NETFLIX,
    PINTEREST,
    SNAPCHAT,
    SKYPE,
    TWITTER,
    VINE,
    SUBWAY_SURFERS,
    FACEBOOK,
    WHATSAPP,
    ZEDGE,
)

EXPECTED_FAILURES: Dict[str, MigrationRefusal] = {
    FACEBOOK.package: MigrationRefusal.MULTI_PROCESS,
    SUBWAY_SURFERS.package: MigrationRefusal.PRESERVED_EGL_CONTEXT,
}

MIGRATABLE_APPS: Tuple[AppSpec, ...] = tuple(
    app for app in TOP_APPS if app.package not in EXPECTED_FAILURES)


def app_by_package(package: str) -> AppSpec:
    for app in TOP_APPS:
        if app.package == package:
            return app
    raise KeyError(f"no app {package!r} in the catalog")


def app_by_title(title: str) -> AppSpec:
    for app in TOP_APPS:
        if app.title == title:
            return app
    raise KeyError(f"no app titled {title!r} in the catalog")
