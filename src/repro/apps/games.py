"""Game apps: Bubble Witch Saga, Candy Crush Saga, Flappy Bird,
Subway Surfers.

All use 3D-accelerated rendering through a GLSurfaceView; Subway Surfers
additionally asks to preserve its EGL context across pause, the one GL
pattern Flux cannot migrate (paper §3.4/§4).
"""

from __future__ import annotations

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification
from repro.apps.common import AppSpec, WorkloadActivity


class BubbleWitchActivity(WorkloadActivity):
    VIEW_COUNT = 8
    USES_GL = True
    GL_TEXTURE_MB = 10.0

    def on_create(self, saved_state) -> None:
        super().on_create(saved_state)
        self.saved_state.setdefault("level", 37)
        self.saved_state.setdefault("score", 12450)


def bubble_witch_workload(thread, device) -> None:
    """Play witch-themed puzzle game."""
    audio = thread.context.get_system_service("audio")
    audio.request_audio_focus("bubblewitch-music")
    audio.set_stream_volume(audio.STREAM_MUSIC, 9)
    vibrator = thread.context.get_system_service("vibrator")
    vibrator.vibrate(40)
    activity = next(iter(thread.activities.values()))
    activity.saved_state["level"] = 38
    activity.render()


class CandyCrushActivity(WorkloadActivity):
    VIEW_COUNT = 10
    USES_GL = True
    GL_TEXTURE_MB = 14.0

    def on_create(self, saved_state) -> None:
        super().on_create(saved_state)
        self.saved_state.setdefault("level", 181)
        self.saved_state.setdefault("lives", 3)


def candy_crush_workload(thread, device) -> None:
    """Play candy-themed puzzle game."""
    activity = next(iter(thread.activities.values()))
    activity.saved_state["lives"] = 2
    alarm = thread.context.get_system_service("alarm")
    refill = PendingIntent(thread.package,
                           Intent("com.king.candycrush.LIFE_REFILL"))
    alarm.set(alarm.RTC_WAKEUP, device.clock.now + 1800.0, refill)
    nm = thread.context.get_system_service("notification")
    nm.notify(77, Notification("Candy Crush Saga",
                               "Your friends sent you lives!"))
    activity.render()


class FlappyBirdActivity(WorkloadActivity):
    VIEW_COUNT = 3
    USES_GL = True
    GL_TEXTURE_MB = 2.0


def flappy_bird_workload(thread, device) -> None:
    """Play obstacle game (tilt input via the accelerometer channel)."""
    sensors = thread.context.get_system_service("sensor")
    accelerometer = sensors.default_sensor("accelerometer")
    events = []
    sensors.register_listener(events.append, accelerometer.handle,
                              sampling_rate=50)
    device.service("sensor").inject_event(accelerometer.handle, b"tilt:+0.3")
    sensors.poll_events()
    vibrator = thread.context.get_system_service("vibrator")
    vibrator.vibrate(60)    # death buzz
    activity = next(iter(thread.activities.values()))
    activity.saved_state["best_score"] = 17
    activity.render()


class SubwaySurfersActivity(WorkloadActivity):
    VIEW_COUNT = 6
    USES_GL = True
    GL_TEXTURE_MB = 12.0
    PRESERVE_EGL = True      # setPreserveEGLContextOnPause(true)


def subway_surfers_workload(thread, device) -> None:
    """Play fast-paced obstacle game."""
    audio = thread.context.get_system_service("audio")
    audio.request_audio_focus("subway-music")
    activity = next(iter(thread.activities.values()))
    activity.saved_state["coins"] = 2210
    activity.render()


BUBBLE_WITCH = AppSpec(
    package="com.king.bubblewitch",
    title="Bubble Witch Saga",
    workload_desc="Play witch-themed puzzle game",
    apk_mb=46.0, heap_mb=18.0, data_mb=3.0,
    activity_cls=BubbleWitchActivity, workload=bubble_witch_workload)

CANDY_CRUSH = AppSpec(
    package="com.king.candycrushsaga",
    title="Candy Crush Saga",
    workload_desc="Play candy-themed puzzle game",
    apk_mb=43.0, heap_mb=24.0, data_mb=3.5,
    activity_cls=CandyCrushActivity, workload=candy_crush_workload)

FLAPPY_BIRD = AppSpec(
    package="com.dotgears.flappybird",
    title="Flappy Bird",
    workload_desc="Play obstacle game",
    apk_mb=0.9, heap_mb=4.0, data_mb=0.3,
    activity_cls=FlappyBirdActivity, workload=flappy_bird_workload)

SUBWAY_SURFERS = AppSpec(
    package="com.kiloo.subwaysurf",
    title="Subway Surfers",
    workload_desc="Play fast-paced obstacle game",
    apk_mb=38.0, heap_mb=20.0, data_mb=4.0,
    activity_cls=SubwaySurfersActivity, workload=subway_surfers_workload,
    preserve_egl=True)
