"""The eighteen Table 3 workload apps."""

from repro.apps.catalog import (
    EXPECTED_FAILURES,
    MIGRATABLE_APPS,
    TOP_APPS,
    app_by_package,
    app_by_title,
)
from repro.apps.common import AppSpec, WorkloadActivity

__all__ = [
    "EXPECTED_FAILURES", "MIGRATABLE_APPS", "TOP_APPS", "app_by_package",
    "app_by_title", "AppSpec", "WorkloadActivity",
]
