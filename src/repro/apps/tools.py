"""Tool/commerce apps: Bible, eBay, Surpax Flashlight, GroupOn."""

from __future__ import annotations

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification
from repro.apps.common import AppSpec, WorkloadActivity


class BibleActivity(WorkloadActivity):
    VIEW_COUNT = 10


def bible_workload(thread, device) -> None:
    """View page of the Bible."""
    alarm = thread.context.get_system_service("alarm")
    verse = PendingIntent(thread.package,
                          Intent("com.sirma.bible.DAILY_VERSE"))
    alarm.set_repeating(alarm.RTC, device.clock.now + 86400.0, 86400.0,
                        verse)
    clipboard = thread.context.get_system_service("clipboard")
    clipboard.set_text("John 3:16")
    activity = next(iter(thread.activities.values()))
    activity.saved_state["book"] = "John"
    activity.saved_state["chapter"] = 3
    activity.render()


class EbayActivity(WorkloadActivity):
    VIEW_COUNT = 14


def ebay_workload(thread, device) -> None:
    """View online auction."""
    alarm = thread.context.get_system_service("alarm")
    ending = PendingIntent(thread.package,
                           Intent("com.ebay.AUCTION_ENDING", item=42137))
    alarm.set(alarm.RTC_WAKEUP, device.clock.now + 5400.0, ending)
    nm = thread.context.get_system_service("notification")
    nm.notify(4, Notification("eBay", "You've been outbid!"))
    activity = next(iter(thread.activities.values()))
    activity.saved_state["watched_item"] = 42137
    activity.render()


class FlashlightActivity(WorkloadActivity):
    VIEW_COUNT = 2


def flashlight_workload(thread, device) -> None:
    """Use LED flashlight."""
    camera = thread.context.get_system_service("camera")
    camera.setTorchMode(0, True)
    power = thread.context.get_system_service("power")
    lock = power.new_wake_lock(power.SCREEN_DIM_WAKE_LOCK, "flashlight")
    lock.acquire()
    activity = next(iter(thread.activities.values()))
    activity.saved_state["torch_on"] = True
    activity.render()


class GrouponActivity(WorkloadActivity):
    VIEW_COUNT = 16


def groupon_workload(thread, device) -> None:
    """View discount offer."""
    location = thread.context.get_system_service("location")
    provider = location.getBestProvider(True) or "network"
    location.request_updates(provider, "groupon-nearby")
    nm = thread.context.get_system_service("notification")
    nm.notify(6, Notification("GroupOn", "60% off at a bistro near you"))
    activity = next(iter(thread.activities.values()))
    activity.saved_state["deal_id"] = 99817
    activity.render()


BIBLE = AppSpec(
    package="com.sirma.mobile.bible.android", title="Bible",
    workload_desc="View page of the Bible",
    apk_mb=18.0, heap_mb=7.0, data_mb=6.0,
    activity_cls=BibleActivity, workload=bible_workload)

EBAY = AppSpec(
    package="com.ebay.mobile", title="eBay",
    workload_desc="View online auction",
    apk_mb=12.0, heap_mb=9.0, data_mb=2.0,
    activity_cls=EbayActivity, workload=ebay_workload)

FLASHLIGHT = AppSpec(
    package="com.surpax.ledflashlight", title="Surpax Flashlight",
    workload_desc="Use LED flashlight",
    apk_mb=2.5, heap_mb=2.5, data_mb=0.2,
    activity_cls=FlashlightActivity, workload=flashlight_workload)

GROUPON = AppSpec(
    package="com.groupon", title="GroupOn",
    workload_desc="View discount offer",
    apk_mb=9.0, heap_mb=8.0, data_mb=1.5,
    activity_cls=GrouponActivity, workload=groupon_workload)
