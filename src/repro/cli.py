"""flux-sim: command-line front end for the Flux reproduction.

Subcommands::

    flux-sim devices                       list device profiles
    flux-sim apps                          list the Table 3 catalog
    flux-sim pair --home P --guest P       pairing cost between two devices
    flux-sim migrate --home P --guest P --app TITLE [--extensions ...]
    flux-sim sweep                         the paper's 4-pair x 16-app sweep
    flux-sim experiments [NAME ...]        regenerate tables/figures
    flux-sim bench-check [--update]        gate sweep metrics vs BENCH_sweep.json
    flux-sim explain EVENTS_JSONL|BUNDLE   post-mortem a migration's event log
    flux-sim scenario                      concurrent migrations on one clock
    flux-sim fleet                         seeded demand + placement at scale
    flux-sim diff A B                      compare two run bundles

``migrate`` and ``sweep`` take ``--metrics-out PATH`` to dump the
per-subsystem metrics registry as JSON and ``--events-out PATH`` to dump
the causal event log as JSONL (see ``flux-sim explain``); ``migrate
--trace-out`` includes the registry's counter tracks and the event log's
instants in the Chrome trace.  ``scenario`` adds ``--timeline-out``
(the edge-sampled time-series plane) and ``--trace-out`` (one track per
session plus counter tracks); ``explain --why LABEL`` ranks where a
session's wall time went, from the event log alone.

``fleet`` scales the scenario layer to a seeded device population:
demands from a seeded arrival process are routed by a placement policy
(``--policy capability|least-loaded|cost-model``), executed per site,
and reported as fleet SLOs (p50/p95/p99, refusal/shed rate, per-device
and per-medium utilization); ``--shard K/N`` runs a deterministic
slice.  ``migrate``, ``sweep``, ``scenario`` and ``fleet`` all take
``--bundle-out PATH``
to capture *every* plane the run produced — plus a config/env
fingerprint and a digest manifest — as one self-describing run bundle
(a directory, or ``.tar.gz``).  ``flux-sim explain BUNDLE`` post-mortems
straight from a bundle, ``flux-sim bench-check --bundle PATH`` gates
one without re-running the sweep, and ``flux-sim diff A B`` compares
two bundles plane by plane, ranking regression suspects (exit 0
identical, 1 within tolerance, 2 regressed).

Installed as a console script (``pip install -e .``), or run with
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.android.device import Device
from repro.android.hardware.profiles import ALL_PROFILES, profile_by_name
from repro.apps import TOP_APPS, app_by_title
from repro.core.cria.errors import MigrationError
from repro.core.extensions import FluxExtensions
from repro.experiments.harness import format_table
from repro.sim import SimClock, units
from repro.sim.rng import RngFactory


def _parse_extensions(spec: Optional[str]) -> FluxExtensions:
    if not spec:
        return FluxExtensions.none()
    if spec == "all":
        return FluxExtensions.all()
    flags = {}
    valid = set(FluxExtensions.__dataclass_fields__)
    for name in spec.split(","):
        name = name.strip()
        if name not in valid:
            raise SystemExit(
                f"unknown extension {name!r}; choose from {sorted(valid)} "
                "or 'all'")
        flags[name] = True
    return FluxExtensions(**flags)


def _boot_pair(home_name: str, guest_name: str, seed: int):
    clock = SimClock()
    factory = RngFactory(seed)
    home = Device(profile_by_name(home_name), clock, factory, name="home")
    guest = Device(profile_by_name(guest_name), clock, factory, name="guest")
    return home, guest


# -- subcommands -----------------------------------------------------------


def cmd_devices(args) -> int:
    rows = [(p.name, p.model, str(p.screen), p.gpu_name, p.kernel_version,
             f"{p.wifi_effective_mbps:.0f} Mbit/s")
            for p in ALL_PROFILES]
    print(format_table(("id", "model", "screen", "GPU", "kernel", "wifi"),
                       rows, title="Device profiles"))
    return 0


def cmd_apps(args) -> int:
    rows = [(a.title, a.package, f"{a.apk_mb:.1f} MB", a.workload_desc)
            for a in TOP_APPS]
    print(format_table(("title", "package", "APK", "workload"), rows,
                       title="Table 3 app catalog"))
    return 0


def cmd_pair(args) -> int:
    home, guest = _boot_pair(args.home, args.guest, args.seed)
    for spec in TOP_APPS:
        spec.install(home)
    report = home.pairing_service.pair(guest)
    print(f"paired {home.profile.model} -> {guest.profile.model} "
          f"in {report.seconds:.1f}s (simulated)")
    print(f"  constant data:   "
          f"{units.format_size(report.constant_bytes_total)}")
    print(f"  after hardlinks: "
          f"{units.format_size(report.constant_bytes_after_linking)}")
    print(f"  over the wire:   "
          f"{units.format_size(report.constant_bytes_compressed)}")
    print(f"  apps paired:     {len(report.apps)}"
          + (f" ({len(report.incompatible)} incompatible)"
             if report.incompatible else ""))
    return 0


def _merged_events(home, guest):
    """Both devices' flight recorders as one causal JSONL-ready stream."""
    from repro.sim.events import merge_streams
    return merge_streams(home.events.export(), guest.events.export())


def _write_events(path: str, home, guest) -> None:
    from repro.sim.events import write_jsonl
    count = write_jsonl(path, _merged_events(home, guest))
    print(f"wrote {count} events to {path} (flux-sim explain {path})")


def _migrate_fingerprint(args, package: str):
    from repro.sim.bundle import collect_fingerprint
    return collect_fingerprint(
        "migrate",
        workload=[package],
        pairs=[f"{args.home}->{args.guest}"],
        seed=args.seed,
        extra={
            "extensions": args.extensions or "",
            "drop_link_after_bytes": args.drop_link_after_bytes,
            "fail_restore_after": args.fail_restore_after,
        })


def _write_migrate_outputs(args, home, guest, report) -> None:
    """The migrate artifacts (--trace/metrics/events/bundle-out), shared
    by the success and the fault/refusal exits — a failed run's bundle
    is the one a post-mortem needs most."""
    merged_events = _merged_events(home, guest)
    if args.trace_out:
        home.tracer.write_chrome_trace(args.trace_out, metrics=home.metrics,
                                       events=merged_events)
        print(f"wrote Chrome trace to {args.trace_out}")
    if args.metrics_out:
        _write_migrate_metrics(args.metrics_out, home, guest, report)
        print(f"wrote metrics to {args.metrics_out}")
    if args.events_out:
        _write_events(args.events_out, home, guest)
    if args.bundle_out:
        from repro.sim.bundle import write_bundle
        from repro.sim.timeline import merge_timelines
        write_bundle(
            args.bundle_out,
            kind="migrate",
            fingerprint=_migrate_fingerprint(args, report.package),
            metrics=_migrate_metrics_document(home, guest, report),
            events=merged_events,
            timeline=merge_timelines(home.timeline.export(),
                                     guest.timeline.export()),
            trace=home.tracer.chrome_trace(metrics=home.metrics,
                                           events=merged_events))
        print(f"wrote run bundle to {args.bundle_out} "
              f"(flux-sim diff {args.bundle_out} OTHER)")


def cmd_migrate(args) -> int:
    try:
        spec = app_by_title(args.app)
    except KeyError:
        matching = [a.title for a in TOP_APPS
                    if args.app.lower() in a.title.lower()]
        if len(matching) != 1:
            raise SystemExit(f"unknown app {args.app!r}; "
                             f"try one of {[a.title for a in TOP_APPS]}")
        spec = app_by_title(matching[0])
    extensions = _parse_extensions(args.extensions)
    home, guest = _boot_pair(args.home, args.guest, args.seed)
    spec.install_and_launch(home)
    home.pairing_service.pair(guest)

    # Deterministic fault injection (see DESIGN.md / README): a link
    # that drops at a byte offset, and/or a restore that fails after N
    # steps.  Both exercise the stage pipeline's rollback path.
    link = None
    restore_fault = None
    if args.drop_link_after_bytes is not None:
        from repro.android.net.link import LinkFaultPlan, link_between
        link = link_between(home.profile, guest.profile, home.rng_factory)
        link.inject_fault(
            LinkFaultPlan(drop_after_bytes=args.drop_link_after_bytes))
    if args.fail_restore_after is not None:
        from repro.core.cria.restore import RestoreFaultPlan
        restore_fault = RestoreFaultPlan(
            fail_after_steps=args.fail_restore_after)

    try:
        report = home.migration_service.migrate(
            guest, spec.package, link=link, extensions=extensions,
            restore_fault=restore_fault)
    except MigrationError as error:
        failed = home.migration_service.history[-1]
        if failed.faulted_stage:
            print(f"FAULTED in {failed.faulted_stage} stage: {error}")
            print(f"rolled back: {spec.title} still running on "
                  f"{home.profile.model} "
                  f"(guest processes: "
                  f"{len(guest.kernel.processes_of_package(spec.package))})")
        else:
            print(f"REFUSED: {error}")
        if error.reason.value in ("multi-process", "preserved-egl-context"):
            print("hint: retry with --extensions all")
        _write_migrate_outputs(args, home, guest, failed)
        return 1
    print(f"migrated {spec.title}: {home.profile.model} -> "
          f"{guest.profile.model}")
    rows = [(stage, f"{seconds:.3f}",
             f"{report.stage_fraction(stage) * 100:.1f}%")
            for stage, seconds in report.stages.items()]
    rows.append(("TOTAL", f"{report.total_seconds:.3f}", "100%"))
    print(format_table(("stage", "seconds", "share"), rows))
    print(f"transferred {units.format_size(report.transferred_bytes)} "
          f"({report.record_log_entries} log entries replayed: "
          f"{report.replay.replayed} direct, {report.replay.proxied} via "
          f"proxy, {report.replay.skipped} skipped)")
    for note in report.replay.adaptations:
        print(f"  adapted: {note}")
    if report.transfer_chunks_total:
        cached = report.transfer_chunks_cached
        total = report.transfer_chunks_total
        print(f"chunk cache: {cached}/{total} chunks served from the "
              f"guest's store ({report.chunk_hit_rate:.0%} hit rate, "
              f"{units.format_size(report.chunk_bytes_cached)} not resent)")
    if report.dominant_stage:
        chain = " > ".join(
            f"{entry['name']} {float(entry['seconds']):.3f}s"
            for entry in report.critical_path)
        print(f"critical path: {chain}")
    if args.timeline:
        from repro.core.migration.timeline import render_timeline
        print()
        print(render_timeline(report))
    _write_migrate_outputs(args, home, guest, report)
    return 0


def _migrate_metrics_document(home, guest, report) -> dict:
    """One migration's merged metrics + critical path, JSON-ready."""
    from repro.sim.metrics import merge_snapshots, rollup_counters
    merged = merge_snapshots([home.metrics.snapshot(),
                              guest.metrics.snapshot()])
    return {
        "schema": 1,
        "migration": {
            "package": report.package,
            "success": report.success,
            "refusal": report.refusal.value if report.refusal else None,
            "faulted_stage": report.faulted_stage,
            "stages": {s: round(v, 6) for s, v in report.stages.items()},
            "dominant_stage": report.dominant_stage,
            "critical_path": report.critical_path,
            "transferred_bytes": report.transferred_bytes,
            "chunk_hit_rate": round(report.chunk_hit_rate, 4),
            "wait_profile": ({k: round(v, 6) for k, v in
                              sorted(report.wait_profile.items())}
                             if report.wait_profile else None),
        },
        "metrics": merged,
        "rollup": rollup_counters(merged),
    }


def _write_migrate_metrics(path: str, home, guest, report) -> None:
    import json
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_migrate_metrics_document(home, guest, report), handle,
                  indent=1)


def cmd_interface(args) -> int:
    from repro.android.aidl.parser import parse
    from repro.android.aidl.printer import print_interface
    from repro.android.services.aidl_sources import AIDL_SOURCES, spec_for
    try:
        spec = spec_for(args.service)
    except KeyError:
        raise SystemExit(f"unknown service {args.service!r}; choose from "
                         f"{sorted(AIDL_SOURCES)}")
    document = parse(AIDL_SOURCES[spec.key])
    for iface in document.interfaces:
        print(print_interface(iface))
        print()
    return 0


def cmd_sweep(args) -> int:
    import os

    from repro.experiments import fig12, fig13, fig14, fig15
    from repro.experiments.harness import (
        SWEEP_EXECUTOR_ENV,
        SWEEP_WORKERS_ENV,
    )
    if args.workers is not None:
        # The figure modules call run_sweep() themselves; the env knob
        # is how their shared sweep picks up the parallelism.  Results
        # are bit-identical to the serial run either way.
        os.environ[SWEEP_WORKERS_ENV] = str(args.workers)
    if args.executor is not None:
        os.environ[SWEEP_EXECUTOR_ENV] = args.executor
    print(fig12.render())
    print()
    print(fig13.render())
    print()
    print(fig14.render())
    print()
    print(fig15.render())
    if args.metrics_out:
        import json

        from repro.experiments.harness import (
            run_sweep,
            sweep_metrics_document,
        )
        document = sweep_metrics_document(run_sweep())
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
        print(f"\nwrote sweep metrics to {args.metrics_out} "
              f"({len(document['rollup'])} counter series, "
              f"{len(document['apps'])} apps)")
    if args.events_out:
        from repro.experiments.harness import run_sweep
        from repro.sim.events import write_jsonl
        count = write_jsonl(args.events_out, run_sweep().merged_events())
        print(f"wrote {count} events to {args.events_out} "
              f"(flux-sim explain {args.events_out})")
    profile_report = None
    if args.profile_out:
        from repro.experiments.profiling import top_offenders, write_profile
        profile_report = write_profile(args.profile_out)
        offenders = top_offenders(profile_report)
        print(f"\nwrote per-pair cProfile report to {args.profile_out}")
        if offenders:
            print("top offenders: " + ", ".join(offenders))
    if args.bundle_out:
        from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS
        from repro.apps.catalog import MIGRATABLE_APPS
        from repro.experiments.harness import (
            _resolve_executor,
            _resolve_workers,
            pair_label,
            run_sweep,
            sweep_metrics_document,
            sweep_timeline_series,
        )
        from repro.sim.bundle import collect_fingerprint, write_bundle
        sweep = run_sweep()
        workers = _resolve_workers(args.workers, len(PAPER_DEVICE_PAIRS))
        fingerprint = collect_fingerprint(
            "sweep",
            workload=[a.package for a in MIGRATABLE_APPS],
            pairs=[pair_label(h, g) for h, g in PAPER_DEVICE_PAIRS],
            seed=0,
            executor=_resolve_executor(args.executor, workers),
            workers=workers)
        write_bundle(args.bundle_out,
                     kind="sweep",
                     fingerprint=fingerprint,
                     metrics=sweep_metrics_document(sweep),
                     events=sweep.merged_events(),
                     timeline=sweep_timeline_series(sweep),
                     profile=profile_report)
        print(f"\nwrote run bundle to {args.bundle_out} "
              f"(flux-sim diff {args.bundle_out} OTHER)")
    return 0


def cmd_bench_check(args) -> int:
    from repro.experiments import bench
    tolerance = (bench.SIM_TOLERANCE if args.tolerance is None
                 else args.tolerance)
    code, text = bench.run_check(baseline_path=args.baseline,
                                 update=args.update,
                                 tolerance=tolerance,
                                 bundle=args.bundle)
    print(text)
    return code


def cmd_explain(args) -> int:
    import json

    from repro.core.migration.postmortem import (
        PostmortemError,
        build_blame,
        build_postmortem,
        critical_path_from_metrics,
        postmortem_from_bundle,
        render_blame,
        render_postmortem,
    )
    from repro.sim.bundle import BundleError, RunBundle, is_bundle_path
    from repro.sim.events import EventsError, read_jsonl
    bundle = None
    if is_bundle_path(args.events):
        # A run bundle: the events (and, unless --metrics overrides,
        # the critical path) come from the bundle alone.
        try:
            bundle = RunBundle.load(args.events)
            events = bundle.events()
        except (BundleError, EventsError) as error:
            raise SystemExit(str(error))
    else:
        try:
            events = read_jsonl(args.events)
        except OSError as error:
            raise SystemExit(f"cannot read {args.events!r}: {error}")
        except EventsError as error:
            raise SystemExit(str(error))
    if args.why:
        # Blame mode: rank where the session's wall time went, resolved
        # from the event log alone (no live scheduler state needed).
        try:
            blame = build_blame(events, args.why)
        except PostmortemError as error:
            raise SystemExit(f"{args.events}: {error}")
        print(render_blame(blame))
        return 0
    critical_path = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as error:
            raise SystemExit(f"cannot read {args.metrics!r}: {error}")
        critical_path = critical_path_from_metrics(document, args.package)
    try:
        if bundle is not None and critical_path is None:
            postmortem = postmortem_from_bundle(bundle,
                                                package=args.package,
                                                last=args.last,
                                                session=args.session)
        else:
            postmortem = build_postmortem(events, package=args.package,
                                          last=args.last,
                                          critical_path=critical_path,
                                          session=args.session)
    except PostmortemError as error:
        raise SystemExit(f"{args.events}: {error}")
    print(render_postmortem(postmortem))
    return 0


def cmd_diff(args) -> int:
    import json

    from repro.sim.bundle import BundleError, RunBundle
    from repro.sim.diffing import (
        DEFAULT_CONTEXT,
        DEFAULT_TOLERANCE,
        DiffError,
        diff_bundles,
        exit_code,
        render_diff,
    )
    tolerance = (DEFAULT_TOLERANCE if args.tolerance is None
                 else args.tolerance)
    context = DEFAULT_CONTEXT if args.context is None else args.context
    try:
        bundle_a = RunBundle.load(args.a)
        bundle_b = RunBundle.load(args.b)
        document = diff_bundles(bundle_a, bundle_b,
                                tolerance=tolerance,
                                context=context)
    except (BundleError, DiffError) as error:
        raise SystemExit(str(error))
    print(render_diff(document, limit=args.limit))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
        print(f"wrote diff document to {args.json_out}")
    return exit_code(document)


def _resolve_package(name: str) -> str:
    """An app as the CLI spells it: exact package, else title substring."""
    from repro.apps.catalog import app_by_package
    try:
        return app_by_package(name).package
    except KeyError:
        pass
    matching = [a for a in TOP_APPS if name.lower() in a.title.lower()]
    if len(matching) != 1:
        raise SystemExit(f"unknown app {name!r}; use a package or a "
                         f"unique title substring from flux-sim apps")
    return matching[0].package


def _parse_session_arg(raw: str):
    """``HOME:GUEST:APP[@START]`` -> (home, guest, package, start)."""
    parts = raw.split(":", 2)
    if len(parts) != 3:
        raise SystemExit(f"bad --migrate {raw!r}; "
                         "expected HOME:GUEST:APP[@START]")
    home, guest, app = parts
    start = 0.0
    if "@" in app:
        app, _, offset = app.rpartition("@")
        try:
            start = float(offset)
        except ValueError:
            raise SystemExit(f"bad start offset {offset!r} in "
                             f"--migrate {raw!r}")
    return home, guest, _resolve_package(app), start


def cmd_scenario(args) -> int:
    from repro.experiments.scenario import (
        ScenarioError,
        ScenarioSpec,
        SessionSpec,
        run_scenario,
    )

    if args.device:
        devices = []
        for raw in args.device:
            name, sep, profile = raw.partition("=")
            if not sep:
                raise SystemExit(f"bad --device {raw!r}; "
                                 "expected NAME=PROFILE")
            devices.append((name, profile_by_name(profile)))
    else:
        devices = [("home", profile_by_name("nexus4")),
                   ("guest", profile_by_name("nexus7_2013"))]
    if args.migrate:
        sessions = [SessionSpec(h, g, pkg, start=start)
                    for h, g, pkg, start in
                    (_parse_session_arg(raw) for raw in args.migrate)]
    else:
        # The default demo: two concurrent migrations on one device
        # pair — the second queues behind the first (admission control).
        from repro.apps.catalog import MIGRATABLE_APPS
        h, g = devices[0][0], devices[1][0] if len(devices) > 1 else None
        if g is None:
            raise SystemExit("the default demo needs two devices")
        sessions = [SessionSpec(h, g, app.package)
                    for app in MIGRATABLE_APPS[:2]]
    try:
        spec = ScenarioSpec(devices=tuple(devices),
                            sessions=tuple(sessions),
                            seed=args.seed, admission=args.admission)
        result = run_scenario(spec)
    except ScenarioError as error:
        raise SystemExit(str(error))

    print(f"scenario: {len(devices)} devices, {len(sessions)} sessions, "
          f"admission={args.admission}, seed={args.seed}")
    rows = []
    for outcome in result.sessions:
        report = outcome.report
        rows.append((
            f"{outcome.spec.home}->{outcome.spec.guest}",
            outcome.spec.package,
            outcome.status.upper(),
            outcome.session or "-",
            f"{outcome.queued_seconds:.3f}",
            f"{report.total_seconds:.3f}" if report is not None else "-",
            (units.format_size(report.transferred_bytes)
             if report is not None and report.success else "-"),
        ))
    print(format_table(("route", "package", "status", "session",
                        "queued (s)", "total (s)", "transferred"), rows))
    failures = [o for o in result.sessions if o.status != "migrated"]
    for outcome in failures:
        detail = outcome.refusal_detail or (
            outcome.refusal.value if outcome.refusal else "")
        print(f"  {outcome.spec.package}: {outcome.status} ({detail})")
    if args.metrics_out:
        import json

        from repro.experiments.scenario import scenario_metrics_document
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(scenario_metrics_document(spec, result), handle,
                      indent=1)
        print(f"wrote metrics to {args.metrics_out}")
    if args.events_out:
        from repro.sim.events import write_jsonl
        count = write_jsonl(args.events_out, result.events)
        print(f"wrote {count} events to {args.events_out} "
              f"(flux-sim explain {args.events_out})")
    if args.timeline_out:
        from repro.sim.timeline import write_timeline
        count = write_timeline(args.timeline_out, result.timeline,
                               meta={"devices": [n for n, _ in spec.devices],
                                     "seed": spec.seed})
        print(f"wrote {count} timeline series to {args.timeline_out}")
    if args.trace_out:
        import json

        from repro.experiments.scenario import scenario_trace_document
        document = scenario_trace_document(result)
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
        print(f"wrote Chrome trace to {args.trace_out} "
              f"(chrome://tracing / Perfetto)")
    if args.bundle_out:
        from repro.experiments.scenario import (
            scenario_metrics_document,
            scenario_trace_document,
        )
        from repro.sim.bundle import collect_fingerprint, write_bundle
        fingerprint = collect_fingerprint(
            "scenario",
            workload=[s.package for s in sessions],
            pairs=[f"{s.home}->{s.guest}" for s in
                   sorted(sessions, key=lambda s: s.canonical_key)],
            seed=args.seed,
            extra={
                "admission": args.admission,
                "devices": [f"{name}={profile.name}"
                            for name, profile in devices],
                "sessions": sorted(
                    f"{s.home}:{s.guest}:{s.package}@{s.start:g}"
                    for s in sessions),
            })
        write_bundle(args.bundle_out,
                     kind="scenario",
                     fingerprint=fingerprint,
                     metrics=scenario_metrics_document(spec, result),
                     events=result.events,
                     timeline=result.timeline,
                     trace=scenario_trace_document(result))
        print(f"wrote run bundle to {args.bundle_out} "
              f"(flux-sim diff {args.bundle_out} OTHER)")
    return 0 if not failures else 1


def _parse_shard(raw: Optional[str]):
    """``K/N`` -> partial shard (k, n); plain ``N`` -> run all N groups."""
    if raw is None:
        return None, None
    if "/" in raw:
        k_raw, _, n_raw = raw.partition("/")
        try:
            k, n = int(k_raw), int(n_raw)
        except ValueError:
            raise SystemExit(f"bad --shard {raw!r}; expected K/N or N")
        if n < 1 or not 0 <= k < n:
            raise SystemExit(f"bad --shard {raw!r}: need 0 <= K < N")
        return (k, n), None
    try:
        n = int(raw)
    except ValueError:
        raise SystemExit(f"bad --shard {raw!r}; expected K/N or N")
    if n < 1:
        raise SystemExit(f"bad --shard {raw!r}: need N >= 1")
    return None, n


def cmd_fleet(args) -> int:
    from repro.experiments.fleet import (
        FleetError,
        FleetSpec,
        fleet_metrics_document,
        render_fleet,
        run_fleet,
    )
    shard, shard_count = _parse_shard(args.shard)
    try:
        spec = FleetSpec(devices=args.devices, arrivals=args.arrivals,
                         seed=args.seed, policy=args.policy,
                         site_size=args.site_size,
                         admission=args.admission,
                         shed_depth=args.shed_depth)
        result = run_fleet(spec, shard=shard, shard_count=shard_count,
                           workers=args.workers, executor=args.executor)
    except FleetError as error:
        raise SystemExit(str(error))

    print(render_fleet(result))
    shard_label = (f"{shard[0]}/{shard[1]}" if shard is not None else None)
    document = fleet_metrics_document(spec, result, shard=shard_label)
    if args.metrics_out:
        import json
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
        print(f"wrote metrics to {args.metrics_out}")
    if args.events_out:
        from repro.sim.events import write_jsonl
        count = write_jsonl(args.events_out, result.events)
        print(f"wrote {count} events to {args.events_out} "
              f"(flux-sim explain {args.events_out})")
    if args.timeline_out:
        from repro.sim.timeline import write_timeline
        count = write_timeline(args.timeline_out, result.timeline,
                               meta={"sites": result.sites,
                                     "seed": spec.seed})
        print(f"wrote {count} timeline series to {args.timeline_out}")
    if args.bundle_out:
        from repro.sim.bundle import collect_fingerprint, write_bundle
        # Executor/workers/shard-count are deliberately absent from the
        # fingerprint: a full fleet run's bundle must be byte-identical
        # however it was parallelized.  A *partial* run (--shard K/N)
        # covers different sites, so it does record its shard.
        extra = {
            "policy": spec.policy,
            "devices": spec.devices,
            "arrivals": spec.arrivals,
            "site_size": spec.site_size,
            "admission": spec.admission,
        }
        if shard_label is not None:
            extra["shard"] = shard_label
        fingerprint = collect_fingerprint(
            "fleet",
            workload=sorted({row["package"] for row in result.rows}),
            pairs=result.sites,
            seed=spec.seed,
            extra=extra)
        write_bundle(args.bundle_out,
                     kind="fleet",
                     fingerprint=fingerprint,
                     metrics=document,
                     events=result.events,
                     timeline=result.timeline)
        print(f"wrote run bundle to {args.bundle_out} "
              f"(flux-sim diff {args.bundle_out} OTHER)")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main
    return experiments_main(args.names)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flux-sim",
        description="Flux (EuroSys 2015) reproduction: app migration "
                    "across simulated Android devices.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list device profiles") \
        .set_defaults(func=cmd_devices)
    sub.add_parser("apps", help="list the Table 3 app catalog") \
        .set_defaults(func=cmd_apps)

    pair = sub.add_parser("pair", help="pairing cost between two devices")
    pair.add_argument("--home", default="nexus7")
    pair.add_argument("--guest", default="nexus7_2013")
    pair.add_argument("--seed", type=int, default=0)
    pair.set_defaults(func=cmd_pair)

    migrate = sub.add_parser("migrate", help="migrate one app")
    migrate.add_argument("--home", default="nexus4")
    migrate.add_argument("--guest", default="nexus7_2013")
    migrate.add_argument("--app", required=True,
                         help="app title from the catalog (substring ok)")
    migrate.add_argument("--extensions", default="",
                         help="comma-separated FluxExtensions flags, "
                              "or 'all'")
    migrate.add_argument("--seed", type=int, default=0)
    migrate.add_argument("--timeline", action="store_true",
                         help="render an ASCII stage timeline")
    migrate.add_argument("--trace-out", metavar="PATH", default=None,
                         help="write the migration's hierarchical span "
                              "tree as Chrome-trace JSON "
                              "(chrome://tracing / Perfetto)")
    migrate.add_argument("--drop-link-after-bytes", type=int, default=None,
                         metavar="N",
                         help="fault injection: drop the link once N "
                              "cumulative payload bytes crossed it")
    migrate.add_argument("--fail-restore-after", type=int, default=None,
                         metavar="N",
                         help="fault injection: fail the guest-side "
                              "restore after N completed steps")
    migrate.add_argument("--metrics-out", metavar="PATH", default=None,
                         help="write the merged home+guest metrics "
                              "registry (counters, gauges, histograms, "
                              "critical path) as JSON")
    migrate.add_argument("--events-out", metavar="PATH", default=None,
                         help="write the merged home+guest causal event "
                              "log as JSONL (input to flux-sim explain)")
    migrate.add_argument("--bundle-out", metavar="PATH", default=None,
                         help="write a self-describing run bundle (all "
                              "telemetry planes + config fingerprint) as "
                              "a directory, or .tar.gz if PATH ends in "
                              ".tar.gz/.tgz (input to flux-sim diff)")
    migrate.set_defaults(func=cmd_migrate)

    interface = sub.add_parser(
        "interface", help="show a service's decorated AIDL interface")
    interface.add_argument("service",
                           help="service key, e.g. notification, alarm")
    interface.set_defaults(func=cmd_interface)

    sweep = sub.add_parser("sweep", help="the paper's full migration sweep")
    sweep.add_argument("--workers", default=None, metavar="N",
                       help="run device pairs on N workers, or 'auto' "
                            "for one per core (results identical to "
                            "serial)")
    sweep.add_argument("--executor", default=None,
                       choices=("serial", "thread", "process"),
                       help="how parallel pairs run: 'process' (default "
                            "when --workers > 1; true multi-core), "
                            "'thread' (GIL-bound), or 'serial'")
    sweep.add_argument("--profile-out", metavar="PATH", default=None,
                       help="run each pair serially under cProfile and "
                            "write a deterministic-ordered per-pair "
                            "report (the serial hot-path measuring "
                            "plane)")
    sweep.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write per-pair, per-app and total metrics "
                            "snapshots for the sweep as JSON")
    sweep.add_argument("--events-out", metavar="PATH", default=None,
                       help="write every pair's causal event stream, "
                            "pair-labeled, as JSONL")
    sweep.add_argument("--bundle-out", metavar="PATH", default=None,
                       help="write a self-describing run bundle (all "
                            "telemetry planes + config fingerprint) as a "
                            "directory, or .tar.gz if PATH ends in "
                            ".tar.gz/.tgz (input to flux-sim diff)")
    sweep.set_defaults(func=cmd_sweep)

    bench_check = sub.add_parser(
        "bench-check",
        help="regenerate the sweep and gate its deterministic metrics "
             "against BENCH_sweep.json")
    bench_check.add_argument("--baseline", metavar="PATH", default=None,
                             help="baseline file (default: repo root "
                                  "BENCH_sweep.json)")
    bench_check.add_argument("--update", action="store_true",
                             help="rewrite the baseline from this run "
                                  "instead of gating")
    bench_check.add_argument("--tolerance", type=float, default=None,
                             help="relative drift band for simulated "
                                  "quantities (default 0.02)")
    bench_check.add_argument("--bundle", metavar="PATH", default=None,
                             help="gate a previously captured sweep "
                                  "bundle (from sweep --bundle-out) "
                                  "instead of regenerating the sweep")
    bench_check.set_defaults(func=cmd_bench_check)

    explain = sub.add_parser(
        "explain",
        help="post-mortem a migration from its --events-out JSONL: "
             "outcome, causal chain, flight-recorder tail")
    explain.add_argument("events", metavar="EVENTS_JSONL",
                         help="event log written by migrate/sweep "
                              "--events-out")
    explain.add_argument("--package", default=None,
                         help="explain this app's migration (default: "
                              "the most recent failure, else the last "
                              "migration in the log)")
    explain.add_argument("--metrics", metavar="PATH", default=None,
                         help="a --metrics-out JSON document; annotates "
                              "the post-mortem with the critical path")
    explain.add_argument("--last", type=int, default=10, metavar="N",
                         help="flight-recorder tail length: events shown "
                              "before the fault (default 10)")
    explain.add_argument("--session", default=None, metavar="LABEL",
                         help="explain this migration session of an "
                              "interleaved scenario log (label as "
                              "printed by flux-sim scenario, e.g. "
                              "home/net.zedge.android@0)")
    explain.add_argument("--why", default=None, metavar="LABEL",
                         help="rank where this session's wall time went "
                              "(admission queue, link dilation, own "
                              "work), reconstructed from the event log "
                              "alone")
    explain.set_defaults(func=cmd_explain)

    scenario = sub.add_parser(
        "scenario",
        help="run a multi-device world with staggered concurrent "
             "migrations on the discrete-event scheduler")
    scenario.add_argument("--device", action="append", metavar="NAME=PROFILE",
                          help="add a named device (repeatable); default: "
                               "home=nexus4 guest=nexus7_2013")
    scenario.add_argument("--migrate", action="append",
                          metavar="HOME:GUEST:APP[@START]",
                          help="queue a migration session (repeatable); "
                               "APP is a package or unique title "
                               "substring, START a virtual-seconds "
                               "offset; default: two concurrent "
                               "migrations on the default pair")
    scenario.add_argument("--admission", default="queue",
                          choices=("queue", "refuse"),
                          help="what a session does when an endpoint is "
                               "already hosting a migration (default: "
                               "queue FIFO)")
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--metrics-out", metavar="PATH", default=None,
                          help="write the merged all-device metrics "
                               "registry plus per-session outcomes as "
                               "JSON")
    scenario.add_argument("--events-out", metavar="PATH", default=None,
                          help="write the causally-merged all-device "
                               "event log as JSONL (input to flux-sim "
                               "explain, which segments it by session)")
    scenario.add_argument("--timeline-out", metavar="PATH", default=None,
                          help="write the edge-sampled time-series plane "
                               "(link shares, queue depths, sessions in "
                               "flight) as JSON")
    scenario.add_argument("--trace-out", metavar="PATH", default=None,
                          help="write a Chrome trace with one track per "
                               "session plus timeline counter tracks")
    scenario.add_argument("--bundle-out", metavar="PATH", default=None,
                          help="write a self-describing run bundle (all "
                               "telemetry planes + config fingerprint) "
                               "as a directory, or .tar.gz if PATH ends "
                               "in .tar.gz/.tgz (input to flux-sim diff)")
    scenario.set_defaults(func=cmd_scenario)

    fleet = sub.add_parser(
        "fleet",
        help="seeded fleet: generate demand over a device population, "
             "place each migration with a pluggable policy, run every "
             "site on the scheduler, report fleet SLOs")
    fleet.add_argument("--devices", type=int, default=12, metavar="N",
                       help="population size; profiles cycle through the "
                            "fleet variants (default 12)")
    fleet.add_argument("--arrivals", type=int, default=40, metavar="M",
                       help="total migration demands across the fleet "
                            "(default 40)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="root seed for arrivals, app mixes and "
                            "per-site scenario worlds (default 0)")
    fleet.add_argument("--policy", default="cost-model",
                       choices=("capability", "least-loaded",
                                "cost-model"),
                       help="placement engine routing each demand to a "
                            "guest surface (default cost-model)")
    fleet.add_argument("--site-size", type=int, default=4, metavar="D",
                       help="devices per site; each site is a sealed "
                            "world with its own shared WiFi medium "
                            "(default 4)")
    fleet.add_argument("--admission", default="queue",
                       choices=("queue", "refuse", "shed"),
                       help="busy-endpoint policy: queue FIFO, refuse, "
                            "or shed at placement time once the "
                            "projected queue hits --shed-depth")
    fleet.add_argument("--shed-depth", type=int, default=4, metavar="Q",
                       help="projected queue depth that sheds a demand "
                            "under --admission shed (default 4)")
    fleet.add_argument("--workers", default=None, metavar="N",
                       help="run sites on N workers, or 'auto' for one "
                            "per core (results identical to serial)")
    fleet.add_argument("--executor", default=None,
                       choices=("serial", "thread", "process"),
                       help="how parallel sites run (default: process "
                            "when --workers > 1, else serial)")
    fleet.add_argument("--shard", default=None, metavar="K/N",
                       help="K/N runs only sites with index %% N == K "
                            "(a partial fleet for distributed runs); a "
                            "plain N runs all N shard groups and merges "
                            "— byte-identical to the unsharded run")
    fleet.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write merged fleet metrics, SLO summary "
                            "and per-demand rows (placement decisions, "
                            "wait profiles) as JSON")
    fleet.add_argument("--events-out", metavar="PATH", default=None,
                       help="write every site's causal event stream, "
                            "site-labeled, as JSONL (input to flux-sim "
                            "explain --why)")
    fleet.add_argument("--timeline-out", metavar="PATH", default=None,
                       help="write the edge-sampled time-series plane "
                            "of every site, site-labeled, as JSON")
    fleet.add_argument("--bundle-out", metavar="PATH", default=None,
                       help="write a self-describing run bundle (all "
                            "telemetry planes + config fingerprint) as "
                            "a directory, or .tar.gz if PATH ends in "
                            ".tar.gz/.tgz (input to flux-sim diff)")
    fleet.set_defaults(func=cmd_fleet)

    diff = sub.add_parser(
        "diff",
        help="compare two run bundles: per-counter/histogram deltas with "
             "tolerance bands, per-migration critical-path diffs, wait "
             "profile deltas, first event divergence, ranked suspects")
    diff.add_argument("a", metavar="BUNDLE_A",
                      help="baseline bundle (directory or .tar.gz from "
                           "--bundle-out)")
    diff.add_argument("b", metavar="BUNDLE_B",
                      help="candidate bundle to compare against the "
                           "baseline")
    diff.add_argument("--tolerance", type=float, default=None,
                      help="relative drift band before a delta counts "
                           "as a regression (default 0.02)")
    diff.add_argument("--context", type=int, default=None, metavar="N",
                      help="events of flight-recorder context around "
                           "the first divergence (default 5)")
    diff.add_argument("--limit", type=int, default=10, metavar="N",
                      help="suspects shown in the ranked table "
                           "(default 10)")
    diff.add_argument("--json-out", metavar="PATH", default=None,
                      help="also write the full machine-readable diff "
                           "document as JSON")
    diff.set_defaults(func=cmd_diff)

    experiments = sub.add_parser("experiments",
                                 help="regenerate tables/figures")
    experiments.add_argument("names", nargs="*")
    experiments.set_defaults(func=cmd_experiments)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
