"""The userspace ServiceManager.

Services register name -> node; clients look names up to obtain handles.
The ServiceManager is itself a binder node, installed as the driver's
context manager so every process reaches it at handle 0 (paper §2).
CRIA's restore path asks the *guest* ServiceManager for equivalent
services by the names recorded in the checkpoint image.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.android.binder.driver import BinderDriver, BinderError, BinderNode
from repro.android.binder.ibinder import Binder, IBinder
from repro.android.binder.parcel import Parcel


class ServiceManager(Binder):
    def __init__(self, driver: BinderDriver, owner_process) -> None:
        super().__init__()
        self._driver = driver
        self._process = owner_process
        self._registry: Dict[str, BinderNode] = {}
        node = driver.create_node(owner_process, self, "servicemanager",
                                  system_service=True)
        self.attach_node(node)
        driver.set_context_manager(node)

    # -- registration (service side) -----------------------------------------

    def add_service(self, name: str, node: BinderNode) -> None:
        if name in self._registry and self._registry[name].alive:
            raise BinderError(f"service {name!r} already registered")
        self._registry[name] = node

    def add_binder_service(self, name: str, service: Binder, owner_process,
                           system: bool = True) -> BinderNode:
        """Convenience: create a node for ``service`` and register it."""
        node = self._driver.create_node(owner_process, service, name,
                                        system_service=system)
        service.attach_node(node)
        self.add_service(name, node)
        return node

    # -- lookup (client side) --------------------------------------------------

    def get_service(self, client_process, name: str) -> IBinder:
        node = self._lookup(name)
        if node is None:
            raise BinderError(f"no service registered as {name!r}")
        handle = self._driver.acquire_ref(client_process, node)
        return IBinder(self._driver, client_process, handle)

    def check_service(self, name: str) -> bool:
        return self._lookup(name) is not None

    def list_services(self) -> List[str]:
        return sorted(n for n, node in self._registry.items() if node.alive)

    def name_of_node(self, node_id: int) -> Optional[str]:
        for name, node in self._registry.items():
            if node.node_id == node_id and node.alive:
                return name
        return None

    def node_of(self, name: str) -> Optional[BinderNode]:
        return self._lookup(name)

    def _lookup(self, name: str) -> Optional[BinderNode]:
        node = self._registry.get(name)
        if node is not None and node.alive:
            return node
        return None

    # ServiceManager RPC interface (when reached via handle 0).
    def on_transact(self, method: str, parcel: Parcel, caller):
        if method == "getService":
            (name,) = parcel.values()
            return self.get_service(caller, name)
        if method == "checkService":
            (name,) = parcel.values()
            return self.check_service(name)
        if method == "listServices":
            return self.list_services()
        raise BinderError(f"unknown ServiceManager method {method!r}")
