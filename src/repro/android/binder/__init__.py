"""Binder IPC: driver, nodes/handles, parcels, ServiceManager."""

from repro.android.binder.driver import (
    BinderDriver,
    BinderError,
    BinderNode,
    BinderRef,
    DeadObjectError,
    ProcessBinderState,
)
from repro.android.binder.ibinder import Binder, CallerAwareBinder, IBinder
from repro.android.binder.parcel import BinderToken, FdToken, Parcel, ParcelError
from repro.android.binder.service_manager import ServiceManager

__all__ = [
    "BinderDriver", "BinderError", "BinderNode", "BinderRef",
    "DeadObjectError", "ProcessBinderState", "Binder", "CallerAwareBinder",
    "IBinder", "BinderToken", "FdToken", "Parcel", "ParcelError",
    "ServiceManager",
]
