"""Client- and service-side binder object wrappers.

``IBinder`` is what application code holds: a (process, handle) pair bound
to a driver, with a ``transact`` method.  ``Binder`` is the base class for
service implementations; subclasses simply define methods and the default
``on_transact`` dispatches to them.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.android.binder.driver import BinderDriver, BinderNode
from repro.android.binder.parcel import Parcel


class IBinder:
    """A client-side reference: process-local handle plus driver."""

    def __init__(self, driver: BinderDriver, process, handle: int) -> None:
        self._driver = driver
        self._process = process
        self.handle = handle

    def transact(self, method: str, *args: Any) -> Any:
        parcel = Parcel().write_all(args)
        return self._driver.transact(self._process, self.handle, method, parcel)

    def node(self) -> BinderNode:
        return self._driver.resolve(self._process, self.handle)

    @property
    def alive(self) -> bool:
        try:
            node = self.node()
        except Exception:
            return False
        return node.alive and node.owner.alive

    def __repr__(self) -> str:
        return f"IBinder(pid={self._process.pid}, handle={self.handle})"


class Binder:
    """Base class for binder service implementations."""

    def __init__(self) -> None:
        self._node: Optional[BinderNode] = None

    def attach_node(self, node: BinderNode) -> None:
        self._node = node

    @property
    def binder_node(self) -> Optional[BinderNode]:
        return self._node

    def on_transact(self, method: str, parcel: Parcel, caller) -> Any:
        func = getattr(self, method, None)
        if func is None or not callable(func) or method.startswith("_"):
            raise AttributeError(
                f"{type(self).__name__} has no transaction method {method!r}")
        return self.dispatch(func, parcel, caller)

    def dispatch(self, func, parcel: Parcel, caller) -> Any:
        """Unpack the parcel and invoke; subclasses may inject the caller."""
        return func(*parcel.values())


class CallerAwareBinder(Binder):
    """A service whose methods receive the calling process first.

    System services need the caller identity to key app-specific state
    (the paper's services track per-app notifications, alarms, etc.).
    """

    def dispatch(self, func, parcel: Parcel, caller) -> Any:
        return func(caller, *parcel.values())
