"""Parcel: the typed payload container for Binder transactions.

Real parcels are flat byte buffers with interleaved objects (binder
references, file descriptors).  We keep the typed structure — what
matters for Flux is that the record log can serialize call arguments and
that binder objects / fds embedded in a parcel are visible to CRIA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple


class ParcelError(Exception):
    """Malformed parcel contents."""


@dataclass(frozen=True)
class BinderToken:
    """A binder object embedded in a parcel, identified by node id."""
    node_id: int


@dataclass(frozen=True)
class FdToken:
    """A file descriptor embedded in a parcel."""
    fd: int


class Parcel:
    """An ordered sequence of typed values."""

    _SIMPLE_TYPES = (int, float, str, bool, bytes, type(None))

    def __init__(self) -> None:
        self._values: List[Tuple[str, Any]] = []
        self._cursor = 0

    # -- writing ------------------------------------------------------------

    def write(self, value: Any) -> "Parcel":
        if isinstance(value, BinderToken):
            self._values.append(("binder", value))
        elif isinstance(value, FdToken):
            self._values.append(("fd", value))
        elif isinstance(value, self._SIMPLE_TYPES):
            self._values.append(("simple", value))
        elif isinstance(value, (list, tuple)):
            self._values.append(("list", list(value)))
        elif isinstance(value, dict):
            self._values.append(("dict", dict(value)))
        else:
            # Parcelable object: stored by reference, serialized on demand.
            self._values.append(("parcelable", value))
        return self

    def write_all(self, values) -> "Parcel":
        for value in values:
            self.write(value)
        return self

    # -- reading ------------------------------------------------------------

    def read(self) -> Any:
        if self._cursor >= len(self._values):
            raise ParcelError("read past end of parcel")
        _, value = self._values[self._cursor]
        self._cursor += 1
        return value

    def rewind(self) -> None:
        self._cursor = 0

    def values(self) -> List[Any]:
        return [v for _, v in self._values]

    def binder_tokens(self) -> List[BinderToken]:
        return [v for t, v in self._values if t == "binder"]

    def fd_tokens(self) -> List[FdToken]:
        return [v for t, v in self._values if t == "fd"]

    def size_bytes(self) -> int:
        """Rough wire size, used for transaction-buffer accounting."""
        total = 0
        for tag, value in self._values:
            if tag == "simple":
                if isinstance(value, str):
                    total += 4 + 2 * len(value)
                elif isinstance(value, bytes):
                    total += 4 + len(value)
                else:
                    total += 8
            elif tag in ("binder", "fd"):
                total += 16
            else:
                total += 64
        return total

    def describe(self) -> List[Dict[str, Any]]:
        """A serializable description, used by the record log."""
        out = []
        for tag, value in self._values:
            if tag == "binder":
                out.append({"type": "binder", "node_id": value.node_id})
            elif tag == "fd":
                out.append({"type": "fd", "fd": value.fd})
            elif tag == "parcelable":
                out.append({"type": "parcelable",
                            "class": type(value).__name__,
                            "repr": repr(value)})
            else:
                out.append({"type": tag, "value": value})
        return out

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values())

    def __len__(self) -> int:
        return len(self._values)
