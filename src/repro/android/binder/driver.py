"""The Binder kernel driver.

Object model (paper §2): the *service* side of a connection is a **node**
owned by the process that created it; clients hold process-specific
integer **handles** that the driver maps to nodes.  A process cannot talk
to a node without having been handed a reference by the node's owner or
another reference holder — in practice, by the ServiceManager.

CRIA hooks: :meth:`state_of` captures the complete per-process binder
state (handles with their classification, owned nodes, buffer sizes) and
:meth:`inject_ref` re-creates a reference *under a caller-chosen handle
id* on restore so the app keeps seeing the ids it saw on the home device.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.android.kernel.process import Process
from repro.android.binder.parcel import Parcel
from repro.sim.events import FlightRecorder
from repro.sim.metrics import (
    MetricsRegistry,
    TIME_BUCKETS_S,
    fold_instance_label,
)


class BinderError(Exception):
    """Binder protocol violations."""


class DeadObjectError(BinderError):
    """Transaction sent to a dead node (owner exited)."""


class BinderNode:
    """The service end of a binder connection."""

    _ids = itertools.count(1)

    def __init__(self, owner: Process, service: Any, label: str,
                 system_service: bool = False) -> None:
        self.node_id = next(self._ids)
        self.owner = owner
        self.service = service          # object whose methods serve transactions
        self.label = label
        self.system_service = system_service
        self.alive = True
        self.death_recipients: List[Callable[["BinderNode"], None]] = []

    def notify_death(self) -> None:
        recipients, self.death_recipients = self.death_recipients, []
        for recipient in recipients:
            recipient(self)

    def __repr__(self) -> str:
        return (f"BinderNode(id={self.node_id}, label={self.label!r}, "
                f"owner={self.owner.pid}, system={self.system_service})")


@dataclass
class BinderRef:
    """A process's reference to a node, via a local handle number."""
    handle: int
    node: BinderNode
    strong_count: int = 1


@dataclass
class ProcessBinderState:
    """Per-process driver state."""
    refs: Dict[int, BinderRef] = field(default_factory=dict)  # handle -> ref
    owned_nodes: List[BinderNode] = field(default_factory=list)
    next_handle: int = 1     # handle 0 is reserved for the ServiceManager
    buffer_bytes: int = 0    # outstanding transaction buffer usage
    transactions: int = 0


class BinderDriver:
    """One instance per kernel; attaches itself as ``kernel.binder``."""

    SERVICE_MANAGER_HANDLE = 0

    def __init__(self, kernel, transaction_cost: float = 0.0,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[FlightRecorder] = None) -> None:
        self.kernel = kernel
        self.transaction_cost = transaction_cost
        self._states: Dict[int, ProcessBinderState] = {}
        self._context_manager: Optional[BinderNode] = None
        #: Monotonic per-device transaction counter; doubles as the
        #: causal transaction id (``txn``) in the event log.  It
        #: increments whether or not event logging is enabled, so ids
        #: are stable across both modes.
        self.total_transactions = 0
        #: Telemetry sink; a disabled registry when the driver is used
        #: standalone (unit tests), the device's registry otherwise.
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(enabled=False))
        #: Causal event log; a disabled recorder standalone.
        self.events = (events if events is not None
                       else FlightRecorder(enabled=False))
        kernel.binder = self

    # -- state bookkeeping ---------------------------------------------------

    def state(self, process: Process) -> ProcessBinderState:
        return self._states.setdefault(process.pid, ProcessBinderState())

    def has_state(self, pid: int) -> bool:
        return pid in self._states

    # -- node / reference management ------------------------------------------

    def create_node(self, owner: Process, service: Any, label: str,
                    system_service: bool = False) -> BinderNode:
        node = BinderNode(owner, service, label, system_service)
        self.state(owner).owned_nodes.append(node)
        return node

    def set_context_manager(self, node: BinderNode) -> None:
        """Register the ServiceManager node, reachable at handle 0."""
        if self._context_manager is not None and self._context_manager.alive:
            raise BinderError("context manager already set")
        self._context_manager = node

    @property
    def context_manager(self) -> Optional[BinderNode]:
        return self._context_manager

    def acquire_ref(self, process: Process, node: BinderNode) -> int:
        """Give ``process`` a reference to ``node``; returns the handle.

        An existing reference is reused with its strong count bumped,
        matching the driver's real reference-consolidation behaviour.
        """
        if not node.alive:
            raise DeadObjectError(f"node {node.node_id} is dead")
        state = self.state(process)
        for ref in state.refs.values():
            if ref.node is node:
                ref.strong_count += 1
                return ref.handle
        handle = state.next_handle
        state.next_handle += 1
        state.refs[handle] = BinderRef(handle=handle, node=node)
        return handle

    def inject_ref(self, process: Process, handle: int, node: BinderNode) -> None:
        """Force a reference at a specific handle id (CRIA restore path)."""
        if not node.alive:
            raise DeadObjectError(f"node {node.node_id} is dead")
        state = self.state(process)
        if handle in state.refs:
            raise BinderError(
                f"pid {process.pid} already holds handle {handle}")
        if handle == self.SERVICE_MANAGER_HANDLE:
            raise BinderError("handle 0 is reserved for the context manager")
        state.refs[handle] = BinderRef(handle=handle, node=node)
        state.next_handle = max(state.next_handle, handle + 1)

    def release_ref(self, process: Process, handle: int) -> None:
        state = self.state(process)
        ref = state.refs.get(handle)
        if ref is None:
            raise BinderError(f"pid {process.pid} holds no handle {handle}")
        ref.strong_count -= 1
        if ref.strong_count <= 0:
            del state.refs[handle]

    def link_to_death(self, process: Process, handle: int,
                      recipient: Callable[[BinderNode], None]) -> None:
        """Register ``recipient`` to run when the target node dies.

        Mirrors IBinder.linkToDeath: system services use it to learn
        that an app process has exited and clean its state.
        """
        node = self.resolve(process, handle)
        if not node.alive:
            raise DeadObjectError(f"node {node.node_id} already dead")
        node.death_recipients.append(recipient)

    def unlink_to_death(self, process: Process, handle: int,
                        recipient) -> bool:
        node = self.resolve(process, handle)
        if recipient in node.death_recipients:
            node.death_recipients.remove(recipient)
            return True
        return False

    def resolve(self, process: Process, handle: int) -> BinderNode:
        if handle == self.SERVICE_MANAGER_HANDLE:
            if self._context_manager is None:
                raise BinderError("no context manager registered")
            return self._context_manager
        ref = self.state(process).refs.get(handle)
        if ref is None:
            raise BinderError(f"pid {process.pid} holds no handle {handle}")
        return ref.node

    def handle_for_node(self, process: Process, node: BinderNode) -> Optional[int]:
        for ref in self.state(process).refs.values():
            if ref.node is node:
                return ref.handle
        return None

    # -- transactions ----------------------------------------------------------

    def transact(self, caller: Process, handle: int, method: str,
                 parcel: Optional[Parcel] = None) -> Any:
        """Synchronous transaction: dispatch ``method`` on the target node.

        The node's service object must expose ``method`` as a callable or
        implement ``on_transact(method, parcel, caller)``.
        """
        node = self.resolve(caller, handle)
        if not node.alive or not node.owner.alive:
            raise DeadObjectError(
                f"transaction to dead node {node.node_id} ({node.label})")
        parcel = parcel or Parcel()
        state = self.state(caller)
        state.transactions += 1
        state.buffer_bytes = max(state.buffer_bytes, parcel.size_bytes())
        self.total_transactions += 1
        txn_id = self.total_transactions
        metrics = self.metrics
        events = self.events
        interface = fold_instance_label(node.label)
        metrics.counter("binder", "transactions",
                        interface=interface, app=caller.package).inc()
        metrics.counter("binder", "parcel_bytes",
                        app=caller.package).inc(parcel.size_bytes())
        dispatch_start = self.kernel.clock.now
        if self.transaction_cost:
            self.kernel.clock.advance(self.transaction_cost)
        self.kernel.tracer.emit("binder", "transact", caller=caller.pid,
                                target=node.label, method=method)
        # Enter the transaction's causal context: nested transactions
        # and everything the dispatch touches (the recorder, services)
        # emit events tagged with this txn id.
        parent_txn = events.current_txn
        events.push_txn(txn_id)
        events.emit("binder.transact", txn=txn_id, parent_txn=parent_txn,
                    interface=interface, method=method, caller=caller.pid,
                    app=caller.package)
        try:
            dispatcher = getattr(node.service, "on_transact", None)
            if dispatcher is not None:
                return dispatcher(method, parcel, caller)
            func = getattr(node.service, method, None)
            if func is None or not callable(func):
                raise BinderError(
                    f"node {node.label!r} has no transaction method "
                    f"{method!r}")
            return func(*parcel.values())
        finally:
            events.pop_txn()
            # Dispatch latency on the virtual clock: the fixed driver
            # cost plus whatever the service handler charged (e.g. the
            # recorder's enqueue cost on decorated methods).
            metrics.histogram(
                "binder", "transact_seconds", bounds=TIME_BUCKETS_S,
                interface=interface,
            ).observe(self.kernel.clock.now - dispatch_start)

    # -- process teardown --------------------------------------------------------

    def release_process(self, process: Process) -> None:
        """Drop all refs and kill owned nodes when a process exits."""
        state = self._states.pop(process.pid, None)
        if state is None:
            return
        for node in state.owned_nodes:
            if node.alive:
                node.alive = False
                node.notify_death()
        if (self._context_manager is not None
                and self._context_manager.owner.pid == process.pid):
            self._context_manager = None

    # -- CRIA checkpoint support ----------------------------------------------

    def state_of(self, process: Process) -> Dict[str, Any]:
        """Complete serializable binder state for one process."""
        state = self.state(process)
        refs = []
        for handle, ref in sorted(state.refs.items()):
            refs.append({
                "handle": handle,
                "node_id": ref.node.node_id,
                "label": ref.node.label,
                "strong_count": ref.strong_count,
                "owner_pid": ref.node.owner.pid,
                "owner_package": ref.node.owner.package,
                "system_service": ref.node.system_service,
            })
        nodes = [{
            "node_id": n.node_id,
            "label": n.label,
            "system_service": n.system_service,
        } for n in state.owned_nodes if n.alive]
        return {
            "refs": refs,
            "owned_nodes": nodes,
            "buffer_bytes": state.buffer_bytes,
            "transactions": state.transactions,
        }
