"""Recursive-descent parser for decorated AIDL.

Grammar (EBNF-ish)::

    document     := interface*
    interface    := "interface" IDENT "{" method* "}"
    method       := decoration? "oneway"? type IDENT "(" params? ")" ";"
    decoration   := "@record" ( ";" | block )?
    block        := "{" stmt* "}"
    stmt         := "@drop" namelist ";"
                  | "@if" namelist ";"
                  | "@elif" namelist ";"
                  | "@replayproxy" IDENT ";"
    params       := param ("," param)*
    param        := ("in"|"out"|"inout")? type IDENT
    type         := IDENT generic? array?
    generic      := "<" type ("," type)* ">"
    array        := "[" "]"

A bare ``@record`` with no block records unconditionally.  An ``@if``
or ``@elif`` must follow a ``@drop`` in the same block.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.android.aidl.ast import (
    THIS,
    AidlDocument,
    Decoration,
    DropRule,
    InterfaceDecl,
    MethodDecl,
    Param,
)
from repro.android.aidl.errors import ParseError, SemanticError
from repro.android.aidl.tokens import Token, TokenKind, tokenize

_DIRECTIONS = ("in", "out", "inout")


class _Parser:
    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source

    # -- token helpers --------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind is not kind or (text is not None and token.text != text):
            want = text or kind.value
            raise ParseError(f"expected {want!r}, got {token.text!r}", token.line)
        return token

    def _accept(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind is kind and (text is None or token.text == text):
            return self._next()
        return None

    # -- grammar --------------------------------------------------------------

    def parse_document(self) -> AidlDocument:
        interfaces = []
        while self._peek().kind is not TokenKind.EOF:
            interfaces.append(self.parse_interface())
        if not interfaces:
            raise ParseError("empty document", 1)
        return AidlDocument(interfaces=tuple(interfaces), source=self._source)

    def parse_interface(self) -> InterfaceDecl:
        start = self._expect(TokenKind.IDENT, "interface")
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LBRACE)
        methods: List[MethodDecl] = []
        while not self._accept(TokenKind.RBRACE):
            methods.append(self.parse_method())
        iface = InterfaceDecl(name=name, methods=tuple(methods), line=start.line)
        self._check_semantics(iface)
        return iface

    def parse_method(self) -> MethodDecl:
        decoration = None
        if self._peek().kind is TokenKind.DECORATOR:
            decoration = self.parse_decoration()
        oneway = bool(self._accept(TokenKind.IDENT, "oneway"))
        return_type = self.parse_type()
        name_tok = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.LPAREN)
        params: List[Param] = []
        if not self._accept(TokenKind.RPAREN):
            params.append(self.parse_param())
            while self._accept(TokenKind.COMMA):
                params.append(self.parse_param())
            self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return MethodDecl(name=name_tok.text, return_type=return_type,
                          params=tuple(params), decoration=decoration,
                          oneway=oneway, line=name_tok.line)

    def parse_decoration(self) -> Decoration:
        start = self._expect(TokenKind.DECORATOR, "@record")
        start_line = start.line
        drop_rules: List[DropRule] = []
        replay_proxy: Optional[str] = None
        end_line = start_line
        if self._accept(TokenKind.LBRACE):
            pending_targets: Optional[Tuple[str, ...]] = None
            pending_sigs: List[Tuple[str, ...]] = []

            def flush() -> None:
                nonlocal pending_targets, pending_sigs
                if pending_targets is not None:
                    drop_rules.append(DropRule(targets=pending_targets,
                                               signatures=tuple(pending_sigs)))
                pending_targets = None
                pending_sigs = []

            while True:
                closing = self._accept(TokenKind.RBRACE)
                if closing:
                    end_line = closing.line
                    break
                token = self._next()
                if token.kind is not TokenKind.DECORATOR:
                    raise ParseError(
                        f"expected decoration statement, got {token.text!r}",
                        token.line)
                if token.text == "@drop":
                    flush()
                    pending_targets = self._parse_namelist()
                elif token.text == "@if":
                    if pending_targets is None:
                        raise ParseError("@if without preceding @drop", token.line)
                    if pending_sigs:
                        raise ParseError("duplicate @if; use @elif", token.line)
                    pending_sigs.append(self._parse_namelist())
                elif token.text == "@elif":
                    if pending_targets is None or not pending_sigs:
                        raise ParseError("@elif without preceding @if", token.line)
                    pending_sigs.append(self._parse_namelist())
                elif token.text == "@replayproxy":
                    path = self._expect(TokenKind.IDENT).text
                    self._expect(TokenKind.SEMI)
                    if replay_proxy is not None:
                        raise ParseError("duplicate @replayproxy", token.line)
                    replay_proxy = path
                else:
                    raise ParseError(
                        f"{token.text} not valid inside a @record block",
                        token.line)
            flush()
        return Decoration(record=True, drop_rules=tuple(drop_rules),
                          replay_proxy=replay_proxy,
                          source_lines=end_line - start_line + 1)

    def _parse_namelist(self) -> Tuple[str, ...]:
        names = [self._expect(TokenKind.IDENT).text]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect(TokenKind.IDENT).text)
        self._expect(TokenKind.SEMI)
        return tuple(names)

    def parse_param(self) -> Param:
        direction = "in"
        token = self._peek()
        if token.kind is TokenKind.IDENT and token.text in _DIRECTIONS:
            direction = self._next().text
        type_name = self.parse_type()
        name = self._expect(TokenKind.IDENT).text
        return Param(type_name=type_name, name=name, direction=direction)

    def parse_type(self) -> str:
        base = self._expect(TokenKind.IDENT).text
        if self._accept(TokenKind.LT):
            inner = [self.parse_type()]
            while self._accept(TokenKind.COMMA):
                inner.append(self.parse_type())
            self._expect(TokenKind.GT)
            base = f"{base}<{', '.join(inner)}>"
        if self._accept(TokenKind.LBRACKET):
            self._expect(TokenKind.RBRACKET)
            base = f"{base}[]"
        return base

    # -- semantic checks --------------------------------------------------------

    def _check_semantics(self, iface: InterfaceDecl) -> None:
        names = [m.name for m in iface.methods]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SemanticError(
                f"interface {iface.name}: duplicate methods {sorted(dupes)}")
        for method in iface.methods:
            if method.decoration is None:
                continue
            own_params = set(method.param_names())
            for rule in method.decoration.drop_rules:
                for target in rule.targets:
                    if target != THIS and target not in names:
                        raise SemanticError(
                            f"{iface.name}.{method.name}: @drop target "
                            f"{target!r} is not a method of {iface.name}")
                for sig in rule.signatures:
                    unknown = set(sig) - own_params
                    if unknown:
                        raise SemanticError(
                            f"{iface.name}.{method.name}: @if argument(s) "
                            f"{sorted(unknown)} not parameters of the method")


def parse(source: str) -> AidlDocument:
    """Parse decorated AIDL source into an :class:`AidlDocument`."""
    return _Parser(tokenize(source), source).parse_document()


def parse_interface(source: str) -> InterfaceDecl:
    """Parse a document expected to contain exactly one interface."""
    document = parse(source)
    if len(document.interfaces) != 1:
        raise SemanticError(
            f"expected one interface, found {len(document.interfaces)}")
    return document.interfaces[0]
