"""AIDL pretty-printer: AST back to canonical decorated-AIDL source.

Round-tripping (``parse(print(ast)) == ast``) is the compiler's
self-check: it proves the AST captures everything in the grammar and
the printer emits only valid syntax.  The printer is also what the
``flux-sim`` tooling uses to show users a service's decorated interface.
"""

from __future__ import annotations

from typing import List

from repro.android.aidl.ast import (
    THIS,
    AidlDocument,
    Decoration,
    DropRule,
    InterfaceDecl,
    MethodDecl,
    Param,
)

INDENT = "    "


def print_param(param: Param) -> str:
    if param.direction != "in":
        return f"{param.direction} {param.type_name} {param.name}"
    # 'in' is implicit for primitives but canonical for parcelables; we
    # keep the source compact and re-parseable by always omitting it.
    return f"{param.type_name} {param.name}"


def print_decoration(decoration: Decoration, indent: str = INDENT) -> List[str]:
    """Lines for one @record decoration (without trailing method)."""
    has_block = bool(decoration.drop_rules or decoration.replay_proxy)
    if not has_block:
        return [f"{indent}@record"]
    lines = [f"{indent}@record {{"]
    inner = indent + INDENT
    for rule in decoration.drop_rules:
        lines.append(f"{inner}@drop {', '.join(rule.targets)};")
        for i, signature in enumerate(rule.signatures):
            keyword = "@if" if i == 0 else "@elif"
            lines.append(f"{inner}{keyword} {', '.join(signature)};")
    if decoration.replay_proxy:
        lines.append(f"{inner}@replayproxy {decoration.replay_proxy};")
    lines.append(f"{indent}}}")
    return lines


def print_method(method: MethodDecl, indent: str = INDENT) -> List[str]:
    lines: List[str] = []
    if method.decoration is not None:
        lines.extend(print_decoration(method.decoration, indent))
    params = ", ".join(print_param(p) for p in method.params)
    oneway = "oneway " if method.oneway else ""
    lines.append(f"{indent}{oneway}{method.return_type} "
                 f"{method.name}({params});")
    return lines


def print_interface(iface: InterfaceDecl) -> str:
    lines = [f"interface {iface.name} {{"]
    for i, method in enumerate(iface.methods):
        if i:
            lines.append("")
        lines.extend(print_method(method))
    lines.append("}")
    return "\n".join(lines)


def print_document(document: AidlDocument) -> str:
    return "\n\n".join(print_interface(i) for i in document.interfaces) + "\n"


def strip_positions(iface: InterfaceDecl) -> InterfaceDecl:
    """Drop line numbers and decoration-LOC (layout-dependent) so two
    differently formatted parses of the same interface compare equal."""
    methods = []
    for method in iface.methods:
        decoration = method.decoration
        if decoration is not None:
            decoration = Decoration(record=decoration.record,
                                    drop_rules=decoration.drop_rules,
                                    replay_proxy=decoration.replay_proxy,
                                    source_lines=0)
        methods.append(MethodDecl(
            name=method.name, return_type=method.return_type,
            params=method.params, decoration=decoration,
            oneway=method.oneway, line=0))
    return InterfaceDecl(name=iface.name, methods=tuple(methods), line=0)
