"""Lexer for the AIDL dialect with Flux decorations.

Token kinds are deliberately few: identifiers (which include dotted proxy
paths like ``flux.recordreplay.Proxies.alarmMgrSet``), decorator names
(``@record`` etc.), punctuation, and keywords recognized at parse time.
Line and block comments are skipped but newlines inside them still count
for error positions and LOC accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.android.aidl.errors import LexError


class TokenKind(enum.Enum):
    IDENT = "ident"          # interface, void, method names, types, dotted paths
    DECORATOR = "decorator"  # @record, @drop, @if, @elif, @replayproxy
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    SEMI = ";"
    LT = "<"
    GT = ">"
    LBRACKET = "["
    RBRACKET = "]"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, L{self.line})"


_PUNCT = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
}

KNOWN_DECORATORS = frozenset(
    {"@record", "@drop", "@if", "@elif", "@replayproxy"})


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "._"


def tokenize(source: str) -> List[Token]:
    """Tokenize AIDL ``source``; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def advance(count: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n\\":
            # A backslash continues a statement onto the next line
            # (used by the paper's @replayproxy example); treat as space.
            advance()
            continue
        if ch == "/" and source[i:i + 2] == "//":
            while i < n and source[i] != "\n":
                advance()
            continue
        if ch == "/" and source[i:i + 2] == "/*":
            advance(2)
            while i < n and source[i:i + 2] != "*/":
                advance()
            if i >= n:
                raise LexError("unterminated block comment", line, col)
            advance(2)
            continue
        if ch == "@":
            start_line, start_col = line, col
            j = i + 1
            while j < n and _is_ident_char(source[j]):
                j += 1
            text = source[i:j]
            if text not in KNOWN_DECORATORS:
                raise LexError(f"unknown decorator {text!r}", start_line, start_col)
            tokens.append(Token(TokenKind.DECORATOR, text, start_line, start_col))
            advance(j - i)
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, line, col))
            advance()
            continue
        if _is_ident_start(ch):
            start_line, start_col = line, col
            j = i
            while j < n and _is_ident_char(source[j]):
                j += 1
            tokens.append(
                Token(TokenKind.IDENT, source[i:j], start_line, start_col))
            advance(j - i)
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens


def iter_significant_lines(source: str) -> Iterator[str]:
    """Non-blank, non-comment source lines (used for LOC accounting)."""
    in_block = False
    for raw in source.splitlines():
        stripped = raw.strip()
        if in_block:
            if "*/" in stripped:
                in_block = False
                stripped = stripped.split("*/", 1)[1].strip()
            else:
                continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block = True
            continue
        if not stripped or stripped.startswith("//"):
            continue
        yield stripped
