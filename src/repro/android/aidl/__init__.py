"""AIDL dialect compiler with Flux decorations: lexer, parser, codegen."""

from repro.android.aidl.ast import (
    THIS,
    AidlDocument,
    Decoration,
    DropRule,
    InterfaceDecl,
    MethodDecl,
    Param,
)
from repro.android.aidl.codegen import (
    InterfaceMeta,
    MethodMeta,
    build_meta,
    compile_interface,
    generate_source,
)
from repro.android.aidl.errors import AidlError, LexError, ParseError, SemanticError
from repro.android.aidl.parser import parse, parse_interface
from repro.android.aidl.printer import (
    print_document,
    print_interface,
    strip_positions,
)
from repro.android.aidl.registry import CompiledInterface, InterfaceRegistry
from repro.android.aidl.tokens import Token, TokenKind, iter_significant_lines, tokenize

__all__ = [
    "THIS", "AidlDocument", "Decoration", "DropRule", "InterfaceDecl",
    "MethodDecl", "Param", "InterfaceMeta", "MethodMeta", "build_meta",
    "compile_interface", "generate_source", "AidlError", "LexError",
    "ParseError", "SemanticError", "parse", "parse_interface",
    "CompiledInterface", "InterfaceRegistry", "Token", "TokenKind",
    "iter_significant_lines", "tokenize", "print_document",
    "print_interface", "strip_positions",
]
