"""Registry of compiled AIDL interfaces.

The framework compiles every system-service interface once at boot; apps
then instantiate proxies against service binders.  The registry also
keeps the statistics Table 2 reports: method counts, decoration LOC, and
generated-code LOC per interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.android.aidl.ast import AidlDocument, InterfaceDecl
from repro.android.aidl.codegen import InterfaceMeta, build_meta, compile_interface
from repro.android.aidl.errors import AidlError
from repro.android.aidl.parser import parse
from repro.android.aidl.tokens import iter_significant_lines


@dataclass
class CompiledInterface:
    decl: InterfaceDecl
    meta: InterfaceMeta
    proxy_class: type
    stub_class: type
    generated_source: str

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def method_count(self) -> int:
        return len(self.decl.methods)

    @property
    def decoration_loc(self) -> int:
        return self.decl.decoration_loc

    @property
    def generated_loc(self) -> int:
        return sum(1 for _ in iter_significant_lines(self.generated_source))

    def new_proxy(self, remote, recorder=None):
        return self.proxy_class(remote, recorder)

    def new_stub(self, impl):
        return self.stub_class(impl)


class InterfaceRegistry:
    def __init__(self) -> None:
        self._interfaces: Dict[str, CompiledInterface] = {}

    def compile_source(self, source: str) -> List[CompiledInterface]:
        """Compile every interface in ``source`` and register them."""
        document = parse(source)
        return [self._register(iface) for iface in document.interfaces]

    def compile_document(self, document: AidlDocument) -> List[CompiledInterface]:
        return [self._register(iface) for iface in document.interfaces]

    def _register(self, iface: InterfaceDecl) -> CompiledInterface:
        if iface.name in self._interfaces:
            raise AidlError(f"interface {iface.name!r} already registered")
        namespace = compile_interface(iface)
        compiled = CompiledInterface(
            decl=iface,
            meta=build_meta(iface),
            proxy_class=namespace[f"{iface.name}Proxy"],  # type: ignore[index]
            stub_class=namespace[f"{iface.name}Stub"],    # type: ignore[index]
            generated_source=namespace["__generated_source__"],  # type: ignore[assignment]
        )
        self._interfaces[iface.name] = compiled
        return compiled

    def get(self, name: str) -> CompiledInterface:
        try:
            return self._interfaces[name]
        except KeyError:
            raise AidlError(f"interface {name!r} not registered") from None

    def has(self, name: str) -> bool:
        return name in self._interfaces

    def names(self) -> List[str]:
        return sorted(self._interfaces)

    def all(self) -> List[CompiledInterface]:
        return [self._interfaces[n] for n in self.names()]

    def meta(self, name: str) -> InterfaceMeta:
        return self.get(name).meta
