"""Registry of compiled AIDL interfaces.

The framework compiles every system-service interface once at boot; apps
then instantiate proxies against service binders.  The registry also
keeps the statistics Table 2 reports: method counts, decoration LOC, and
generated-code LOC per interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.android.aidl.ast import AidlDocument, InterfaceDecl
from repro.android.aidl.codegen import InterfaceMeta, build_meta, compile_interface
from repro.android.aidl.errors import AidlError
from repro.android.aidl.parser import parse
from repro.android.aidl.tokens import iter_significant_lines


@dataclass
class CompiledInterface:
    decl: InterfaceDecl
    meta: InterfaceMeta
    proxy_class: type
    stub_class: type
    generated_source: str

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def method_count(self) -> int:
        return len(self.decl.methods)

    @property
    def decoration_loc(self) -> int:
        return self.decl.decoration_loc

    @property
    def generated_loc(self) -> int:
        return sum(1 for _ in iter_significant_lines(self.generated_source))

    def new_proxy(self, remote, recorder=None):
        return self.proxy_class(remote, recorder)

    def new_stub(self, impl):
        return self.stub_class(impl)


#: Process-level memo of compiled interfaces, keyed by the source text.
#: Every device boot compiles the same system-service sources; the AST,
#: metadata and generated proxy/stub classes are all immutable (proxy
#: and stub instances carry their state, the classes none), so one
#: compilation is shared by every registry in the process.  This turns
#: the per-device lex/parse/codegen/exec cost — the second-largest item
#: in the sweep profile — into a one-time cost.
_COMPILED_SOURCE_CACHE: Dict[str, List[CompiledInterface]] = {}


class InterfaceRegistry:
    def __init__(self) -> None:
        self._interfaces: Dict[str, CompiledInterface] = {}

    def compile_source(self, source: str) -> List[CompiledInterface]:
        """Compile every interface in ``source`` and register them."""
        compiled = _COMPILED_SOURCE_CACHE.get(source)
        if compiled is None:
            document = parse(source)
            compiled = [self._compile(iface) for iface in document.interfaces]
            _COMPILED_SOURCE_CACHE[source] = compiled
        return [self._register(c) for c in compiled]

    def compile_document(self, document: AidlDocument) -> List[CompiledInterface]:
        return [self._register(self._compile(iface))
                for iface in document.interfaces]

    @staticmethod
    def _compile(iface: InterfaceDecl) -> CompiledInterface:
        namespace = compile_interface(iface)
        return CompiledInterface(
            decl=iface,
            meta=build_meta(iface),
            proxy_class=namespace[f"{iface.name}Proxy"],  # type: ignore[index]
            stub_class=namespace[f"{iface.name}Stub"],    # type: ignore[index]
            generated_source=namespace["__generated_source__"],  # type: ignore[assignment]
        )

    def _register(self, compiled: CompiledInterface) -> CompiledInterface:
        if compiled.name in self._interfaces:
            raise AidlError(f"interface {compiled.name!r} already registered")
        self._interfaces[compiled.name] = compiled
        return compiled

    def get(self, name: str) -> CompiledInterface:
        try:
            return self._interfaces[name]
        except KeyError:
            raise AidlError(f"interface {name!r} not registered") from None

    def has(self, name: str) -> bool:
        return name in self._interfaces

    def names(self) -> List[str]:
        return sorted(self._interfaces)

    def all(self) -> List[CompiledInterface]:
        return [self._interfaces[n] for n in self.names()]

    def meta(self, name: str) -> InterfaceMeta:
        return self.get(name).meta
