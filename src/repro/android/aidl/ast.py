"""AST for AIDL interfaces and Flux decorations.

Decoration semantics (paper §3.2, Figures 6–10, Table 1):

* ``@record`` — calls to the following method are recorded in the call
  log (subject to the drop rule below).
* ``@drop t1, t2, ...;`` — when the decorated method is called, remove
  previous log entries for the listed target methods.  ``this`` names
  the decorated method itself.
* ``@if a1, a2, ...;`` — qualifies the preceding ``@drop``: a previous
  entry is removed only when every listed argument (matched by parameter
  *name*) has the same value as in the current call.
* ``@elif a1, ...;`` — an alternative signature for the same drop rule.
* ``@replayproxy path;`` — during replay, call the named proxy function
  instead of replaying the recorded call verbatim.

One subtlety the paper's examples imply but never state outright: when a
call's drop rule removes a previous call *to a different method* (e.g.
``cancelNotification`` annihilating a matching ``enqueueNotification``),
the current call itself is **not** recorded — the pair cancels out.  When
the rule only removes previous calls to the *same* method (e.g. a new
``set`` replacing an old alarm), the current call **is** recorded.  Both
behaviours are needed for the paper's NotificationManager and
AlarmManager examples to be correct simultaneously; see
``repro.core.record.rules`` for the executable semantics and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


THIS = "this"


@dataclass(frozen=True)
class Param:
    type_name: str
    name: str
    direction: str = "in"      # in | out | inout

    def __str__(self) -> str:
        prefix = f"{self.direction} " if self.direction != "in" else ""
        return f"{prefix}{self.type_name} {self.name}"


@dataclass(frozen=True)
class DropRule:
    """One @drop statement with its @if/@elif signatures."""

    targets: Tuple[str, ...]                  # method names; may include THIS
    signatures: Tuple[Tuple[str, ...], ...] = ()  # each a tuple of arg names

    @property
    def unconditional(self) -> bool:
        return not self.signatures

    def drops_this(self) -> bool:
        return THIS in self.targets

    def other_targets(self) -> Tuple[str, ...]:
        return tuple(t for t in self.targets if t != THIS)


@dataclass(frozen=True)
class Decoration:
    record: bool = False
    drop_rules: Tuple[DropRule, ...] = ()
    replay_proxy: Optional[str] = None
    source_lines: int = 0     # decoration LOC, for Table 2 accounting


@dataclass(frozen=True)
class MethodDecl:
    name: str
    return_type: str
    params: Tuple[Param, ...]
    decoration: Optional[Decoration] = None
    oneway: bool = False
    line: int = 0

    @property
    def recorded(self) -> bool:
        return self.decoration is not None and self.decoration.record

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def signature(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        return f"{self.return_type} {self.name}({args})"


@dataclass(frozen=True)
class InterfaceDecl:
    name: str
    methods: Tuple[MethodDecl, ...]
    line: int = 0

    def method(self, name: str) -> MethodDecl:
        for m in self.methods:
            if m.name == name:
                return m
        raise KeyError(f"interface {self.name} has no method {name!r}")

    def method_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.methods)

    def recorded_methods(self) -> Tuple[MethodDecl, ...]:
        return tuple(m for m in self.methods if m.recorded)

    @property
    def decoration_loc(self) -> int:
        return sum(m.decoration.source_lines for m in self.methods
                   if m.decoration is not None)


@dataclass(frozen=True)
class AidlDocument:
    interfaces: Tuple[InterfaceDecl, ...]
    source: str = ""

    def interface(self, name: str) -> InterfaceDecl:
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        raise KeyError(f"no interface {name!r} in document")
