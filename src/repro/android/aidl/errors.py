"""AIDL compiler errors."""

from __future__ import annotations


class AidlError(Exception):
    """Base class for AIDL compilation failures."""


class LexError(AidlError):
    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class ParseError(AidlError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"{message} at line {line}")
        self.line = line


class SemanticError(AidlError):
    """Decoration references an unknown method, duplicate names, etc."""
