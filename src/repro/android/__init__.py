"""The simulated Android platform.

Everything Flux depends on, modelled faithfully enough that Flux's
mechanisms run for real: the kernel and its Android drivers
(:mod:`repro.android.kernel`), Binder IPC (:mod:`repro.android.binder`),
the AIDL compiler (:mod:`repro.android.aidl`), the system services
(:mod:`repro.android.services`), the app runtime
(:mod:`repro.android.app`), graphics (:mod:`repro.android.graphics`),
hardware profiles (:mod:`repro.android.hardware`), storage
(:mod:`repro.android.storage`), and networking
(:mod:`repro.android.net`).  :class:`repro.android.device.Device` boots
all of it into one coherent device.
"""

from repro.android.device import Device, DeviceError, FrameworkContext

__all__ = ["Device", "DeviceError", "FrameworkContext"]
