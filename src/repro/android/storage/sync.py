"""rsync-style synchronization with ``--link-dest`` hard-link dedup.

Flux's pairing uses exactly this (paper §3.1): the home device's core
frameworks and libraries are synced into a private area on the guest's
data partition, hard-linking every file whose content already exists on
the guest's system partition and transferring only a compressed delta of
the rest.  The paper's measured numbers (§4: 215 MB constant data,
123 MB after hard links, 56 MB compressed delta for Nexus 7 -> Nexus 7
2013) are what the pairing-cost experiment checks against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.android.storage.filesystem import DeviceStorage, FileEntry


#: Compression achieved on framework binaries over the wire.  Chosen so
#: the Nexus 7 pairing delta lands at the paper's 56 MB / 123 MB ratio.
DEFAULT_COMPRESSION_RATIO = 0.455


@dataclass
class SyncResult:
    files_considered: int = 0
    files_linked: int = 0
    files_copied: int = 0
    files_already_synced: int = 0
    bytes_total: int = 0          # logical size of the synced tree
    bytes_linked: int = 0         # satisfied by hard links on the target
    bytes_delta: int = 0          # had to travel
    bytes_compressed: int = 0     # what actually crossed the wire

    @property
    def bytes_after_linking(self) -> int:
        return self.bytes_total - self.bytes_linked


class RsyncEngine:
    """Content-hash-driven sync between two DeviceStorage instances."""

    def __init__(self,
                 compression_ratio: float = DEFAULT_COMPRESSION_RATIO) -> None:
        if not 0 < compression_ratio <= 1:
            raise ValueError(f"bad compression ratio {compression_ratio!r}")
        self.compression_ratio = compression_ratio

    def sync(self, source: DeviceStorage, source_prefix: str,
             target: DeviceStorage, target_prefix: str,
             link_dest_prefix: Optional[str] = None) -> SyncResult:
        """Mirror ``source_prefix`` into ``target_prefix`` on ``target``.

        ``link_dest_prefix`` models ``rsync --link-dest``: files whose
        content already exists under it on the target become hard links
        instead of traveling.

        Fast path: when the two trees' memoized signatures match (same
        relative paths, contents, sizes), the sync is a no-op — nothing
        is re-hashed or re-walked.  This is what keeps the
        per-migration ``verify_app`` pass from re-hashing every
        unchanged app tree.
        """
        result = SyncResult()
        source_sig = source.tree_signature(source_prefix)
        target_sig = target.tree_signature(target_prefix.rstrip("/"))
        if (source_sig.digest == target_sig.digest
                and source_sig.file_count):
            result.files_considered = source_sig.file_count
            result.files_already_synced = source_sig.file_count
            result.bytes_total = source_sig.total_bytes
            return result
        link_pool: Dict[str, FileEntry] = {}
        if link_dest_prefix is not None:
            link_pool = target.by_hash_under(link_dest_prefix)

        for entry in source.files_under(source_prefix):
            result.files_considered += 1
            result.bytes_total += entry.size
            relative = entry.path[len(source_prefix):]
            dest_path = target_prefix.rstrip("/") + relative

            if (target.exists(dest_path)
                    and target.get(dest_path).same_content(entry)):
                result.files_already_synced += 1
                continue

            linkable = link_pool.get(entry.content_hash)
            if linkable is not None:
                if target.exists(dest_path):
                    target.remove(dest_path)
                target.add_hard_link(dest_path, linkable.path)
                result.files_linked += 1
                result.bytes_linked += entry.size
                continue

            if target.exists(dest_path):
                target.remove(dest_path)
            target.copy_entry(entry, dest_path)
            result.files_copied += 1
            result.bytes_delta += entry.size

        result.bytes_compressed = int(result.bytes_delta
                                      * self.compression_ratio)
        return result

    def verify(self, source: DeviceStorage, source_prefix: str,
               target: DeviceStorage, target_prefix: str) -> List[str]:
        """Paths under source that differ from (or are absent on) target."""
        if (source.tree_signature(source_prefix).digest
                == target.tree_signature(target_prefix.rstrip("/")).digest):
            return []
        stale = []
        for entry in source.files_under(source_prefix):
            relative = entry.path[len(source_prefix):]
            dest_path = target_prefix.rstrip("/") + relative
            if (not target.exists(dest_path)
                    or not target.get(dest_path).same_content(entry)):
                stale.append(entry.path)
        return stale
