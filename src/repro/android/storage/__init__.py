"""Storage: virtual filesystem, APKs, rsync-style sync, framework files."""

from repro.android.storage.apk import ApkFile
from repro.android.storage.filesystem import (
    DeviceStorage,
    FileEntry,
    FsError,
    TreeSignature,
    content_hash_for,
)
from repro.android.storage.framework_files import (
    COMMON_BYTES,
    DEVICE_BYTES,
    populate_system_partition,
    system_partition_bytes,
)
from repro.android.storage.sync import (
    DEFAULT_COMPRESSION_RATIO,
    RsyncEngine,
    SyncResult,
)

__all__ = [
    "ApkFile", "DeviceStorage", "FileEntry", "FsError", "TreeSignature",
    "content_hash_for",
    "COMMON_BYTES", "DEVICE_BYTES", "populate_system_partition",
    "system_partition_bytes", "DEFAULT_COMPRESSION_RATIO", "RsyncEngine",
    "SyncResult",
]
