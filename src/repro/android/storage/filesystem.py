"""Per-device virtual filesystem.

Tracks files as (path -> entry with size and content hash); pairing's
rsync-style sync compares hashes to decide what can be hard-linked and
what must travel.  Partitions mirror Android: ``/system`` (frameworks,
libs), ``/data`` (app data and the Flux pairing area), ``/sdcard``.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class FsError(Exception):
    pass


@dataclass(frozen=True)
class TreeSignature:
    """Digest of a subtree's relative paths + contents + sizes.

    Two trees with equal signatures hold byte-identical content at
    identical relative paths, so a sync between them is a no-op — the
    rsync engine uses this to skip re-hashing unchanged trees on every
    migration's verify pass.
    """

    digest: str
    file_count: int
    total_bytes: int


@dataclass
class FileEntry:
    path: str
    size: int
    content_hash: str
    mtime: float = 0.0
    hard_link_of: Optional[str] = None   # path this entry links to

    def same_content(self, other: "FileEntry") -> bool:
        return self.content_hash == other.content_hash


def content_hash_for(token: str) -> str:
    """Stable hash for synthetic file content identified by ``token``."""
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]


class DeviceStorage:
    PARTITIONS = ("/system", "/data", "/sdcard")

    def __init__(self, device_name: str = "device") -> None:
        self.device_name = device_name
        self._files: Dict[str, FileEntry] = {}
        #: Bumped on every mutation; invalidates cached tree signatures
        #: and the sorted-path index.
        self._generation = 0
        self._signature_cache: Dict[str, Tuple[int, TreeSignature]] = {}
        self._sorted_paths: List[str] = []
        self._sorted_generation = -1

    # -- writes ----------------------------------------------------------------

    def add_file(self, path: str, size: int, content_token: str,
                 mtime: float = 0.0) -> FileEntry:
        self._check_path(path)
        entry = FileEntry(path=path, size=size,
                          content_hash=content_hash_for(content_token),
                          mtime=mtime)
        self._files[path] = entry
        self._generation += 1
        return entry

    def add_hard_link(self, path: str, target: str) -> FileEntry:
        self._check_path(path)
        target_entry = self.get(target)
        entry = FileEntry(path=path, size=target_entry.size,
                          content_hash=target_entry.content_hash,
                          mtime=target_entry.mtime, hard_link_of=target)
        self._files[path] = entry
        self._generation += 1
        return entry

    def copy_entry(self, entry: FileEntry, dest_path: str) -> FileEntry:
        self._check_path(dest_path)
        copied = FileEntry(path=dest_path, size=entry.size,
                           content_hash=entry.content_hash, mtime=entry.mtime)
        self._files[dest_path] = copied
        self._generation += 1
        return copied

    def remove(self, path: str) -> FileEntry:
        try:
            entry = self._files.pop(path)
        except KeyError:
            raise FsError(f"no file {path!r}") from None
        self._generation += 1
        return entry

    def remove_tree(self, prefix: str) -> int:
        doomed = [p for p in self._files if p.startswith(prefix)]
        for path in doomed:
            del self._files[path]
        if doomed:
            self._generation += 1
        return len(doomed)

    # -- reads ----------------------------------------------------------------

    def get(self, path: str) -> FileEntry:
        try:
            return self._files[path]
        except KeyError:
            raise FsError(f"no file {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def _paths_under(self, prefix: str) -> List[str]:
        """Paths with ``prefix``, sorted — O(log n + matches) per query.

        The sorted-path index is rebuilt lazily after a mutation; reads
        between mutations (the common pattern: boot populates, then
        every migration's verify pass queries) share one sort.  Every
        prefix query then bisects to the range start and walks only the
        matching run, replacing the full scan-and-sort the per-migration
        ``tree_signature``/``files_under`` calls used to pay.
        """
        if self._sorted_generation != self._generation:
            self._sorted_paths = sorted(self._files)
            self._sorted_generation = self._generation
        paths = self._sorted_paths
        lo = bisect_left(paths, prefix)
        hi = lo
        n = len(paths)
        while hi < n and paths[hi].startswith(prefix):
            hi += 1
        return paths[lo:hi]

    def files_under(self, prefix: str) -> List[FileEntry]:
        files = self._files
        return [files[p] for p in self._paths_under(prefix)]

    def tree_size(self, prefix: str) -> int:
        """Logical bytes under ``prefix`` (hard links counted at full size)."""
        return sum(e.size for e in self.files_under(prefix))

    def unique_bytes(self, prefix: str) -> int:
        """Physical bytes under ``prefix`` (hard links are free)."""
        return sum(e.size for e in self.files_under(prefix)
                   if e.hard_link_of is None)

    def by_hash_under(self, prefix: str) -> Dict[str, FileEntry]:
        return {e.content_hash: e for e in self.files_under(prefix)}

    def tree_signature(self, prefix: str) -> TreeSignature:
        """Memoized :class:`TreeSignature` of everything under ``prefix``.

        Cached until the filesystem mutates, so the per-migration verify
        pass compares one digest per tree instead of re-walking and
        re-hashing every file.
        """
        cached = self._signature_cache.get(prefix)
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        digest = hashlib.sha256()
        count = 0
        total = 0
        for entry in self.files_under(prefix):
            digest.update(entry.path[len(prefix):].encode("utf-8"))
            digest.update(b"\x00")
            digest.update(entry.content_hash.encode("ascii"))
            digest.update(entry.size.to_bytes(8, "big"))
            count += 1
            total += entry.size
        signature = TreeSignature(digest=digest.hexdigest(),
                                  file_count=count, total_bytes=total)
        self._signature_cache[prefix] = (self._generation, signature)
        return signature

    def file_count(self, prefix: str = "/") -> int:
        return len(self._paths_under(prefix))

    @staticmethod
    def _check_path(path: str) -> None:
        if not path.startswith("/"):
            raise FsError(f"path must be absolute: {path!r}")
