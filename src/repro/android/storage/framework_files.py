"""Synthetic core-framework file sets.

Pairing syncs the home device's frameworks and libraries to the guest
(paper §3.1).  We populate each device's ``/system`` with a file set of
the paper's measured shape for two KitKat devices (§4): 215 MB of
constant data of which 92 MB is content-identical across devices (and so
hard-linkable on the guest) and 123 MB is device specific (GPU vendor
libs, SoC blobs, device overlays).

File sizes are drawn from a seeded stream so the set is deterministic.
"""

from __future__ import annotations

from typing import List

from repro.android.storage.filesystem import DeviceStorage
from repro.sim import units
from repro.sim.rng import RngFactory


COMMON_BYTES = units.mb(92)       # identical across same-version devices
DEVICE_BYTES = units.mb(123)      # vendor/device specific
COMMON_FILE_COUNT = 420
DEVICE_FILE_COUNT = 380

FRAMEWORK_PREFIX = "/system/framework"
VENDOR_PREFIX = "/system/vendor"


def _spread(total: int, count: int, rng) -> List[int]:
    """Split ``total`` bytes into ``count`` file sizes, deterministically."""
    weights = [rng.uniform(0.2, 1.8) for _ in range(count)]
    scale = total / sum(weights)
    sizes = [max(1024, int(w * scale)) for w in weights]
    sizes[-1] += total - sum(sizes)      # exact total
    return sizes


def populate_system_partition(storage: DeviceStorage, android_version: str,
                              device_name: str,
                              rng_factory: RngFactory | None = None) -> None:
    """Create the device's /system framework + vendor files."""
    factory = rng_factory or RngFactory()
    common_rng = factory.stream("framework", android_version)
    device_rng = factory.stream("framework", android_version, device_name)

    for i, size in enumerate(_spread(COMMON_BYTES, COMMON_FILE_COUNT,
                                     common_rng)):
        token = f"android-{android_version}/common/{i}"
        storage.add_file(f"{FRAMEWORK_PREFIX}/common-{i:04d}.jar", size, token)

    for i, size in enumerate(_spread(DEVICE_BYTES, DEVICE_FILE_COUNT,
                                     device_rng)):
        token = f"android-{android_version}/{device_name}/vendor/{i}"
        storage.add_file(f"{VENDOR_PREFIX}/{device_name}-{i:04d}.so", size,
                         token)


def system_partition_bytes(storage: DeviceStorage) -> int:
    return storage.tree_size("/system")
