"""APK model: the app binary plus the manifest facts Flux cares about.

``calls_preserve_egl`` and ``multi_process`` mirror what the paper's
PlayDrone analysis extracts by decompiling sources (§4); migration
support depends on both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.sim import units


@dataclass(frozen=True)
class ApkFile:
    package: str
    version_code: int
    size_bytes: int
    api_level: int = 19            # minimum API required
    permissions: Tuple[str, ...] = ()
    calls_preserve_egl: bool = False
    multi_process: bool = False

    @property
    def content_token(self) -> str:
        return f"apk/{self.package}/{self.version_code}"

    @property
    def install_path(self) -> str:
        return f"/data/app/{self.package}.apk"

    @property
    def data_dir(self) -> str:
        return f"/data/data/{self.package}"

    @property
    def sdcard_data_dir(self) -> str:
        return f"/sdcard/Android/data/{self.package}"

    def bump_version(self) -> "ApkFile":
        """A newer build of the same app (used by pairing re-verification)."""
        return ApkFile(
            package=self.package, version_code=self.version_code + 1,
            size_bytes=self.size_bytes + units.kb(64),
            api_level=self.api_level, permissions=self.permissions,
            calls_preserve_egl=self.calls_preserve_egl,
            multi_process=self.multi_process)

    def __str__(self) -> str:
        return f"{self.package}-{self.version_code}.apk"
