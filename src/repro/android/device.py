"""A complete simulated Android device.

``Device`` boots the whole stack: kernel + drivers, Binder +
ServiceManager, the AIDL registry with every decorated system service,
the Flux recorder, the GL stack for the device's GPU, and storage with
the device's framework files.  Devices participating in one experiment
share a single virtual clock so migration timelines are coherent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Type

from repro.android.aidl import InterfaceRegistry
from repro.android.app.activity import Activity
from repro.android.app.activity_thread import ActivityThread
from repro.android.binder import BinderDriver, ServiceManager
from repro.android.graphics.egl import GenericGlLibrary, VendorGlLibrary
from repro.android.hardware.profiles import DeviceProfile
from repro.android.kernel import Kernel, MemoryRegion, RegionKind
from repro.android.services import (
    ActivityManagerService,
    AlarmManagerService,
    AudioService,
    BluetoothService,
    CameraManagerService,
    ClipboardService,
    ConnectivityManagerService,
    CountryDetectorService,
    InputManagerService,
    InputMethodManagerService,
    KeyguardService,
    LocationManagerService,
    NotificationManagerService,
    NsdService,
    PackageInfo,
    PackageManagerService,
    PowerManagerService,
    SensorService,
    SerialService,
    ServiceContext,
    TextServicesManagerService,
    UiModeManagerService,
    UsbService,
    VibratorService,
    WifiService,
    WindowManagerService,
    all_sources,
)
from repro.android.storage import (
    ApkFile,
    DeviceStorage,
    populate_system_partition,
)
from repro.core.record import CallLog, Recorder
from repro.sim import SimClock, Tracer, units
from repro.sim.events import (
    DEFAULT_CAPACITY,
    EVENTS_CAP_ENV,
    EVENTS_ENV,
    FlightRecorder,
)
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RngFactory
from repro.sim.timeline import Timeline, timeline_enabled

#: Set to ``0`` to disable metrics collection device-wide.  Exists for
#: the determinism regression tests: the simulation must be
#: byte-identical with metrics on and off.
METRICS_ENV = "FLUX_METRICS"


def _events_capacity() -> int:
    try:
        return max(1, int(os.environ.get(EVENTS_CAP_ENV,
                                         str(DEFAULT_CAPACITY))))
    except ValueError:
        return DEFAULT_CAPACITY


class DeviceError(Exception):
    pass


@dataclass
class FrameworkContext:
    """What an app's ActivityThread sees of its device."""

    clock: SimClock
    tracer: Tracer
    kernel: Kernel
    registry: InterfaceRegistry
    recorder: Recorder
    service_manager: ServiceManager
    gl: GenericGlLibrary
    screen: Any
    window_service: WindowManagerService
    activity_service: ActivityManagerService
    hardware: DeviceProfile
    device: "Device"


class Device:
    """One booted Android device."""

    APP_UID_BASE = 10000
    #: Binder transaction dispatch cost on the reference CPU (both stock
    #: Android and Flux pay this; recording cost is the Flux delta).
    BINDER_TRANSACTION_COST = 5e-6

    def __init__(self, profile: DeviceProfile, clock: Optional[SimClock] = None,
                 rng_factory: Optional[RngFactory] = None,
                 name: Optional[str] = None,
                 flux_enabled: bool = True,
                 extensions=None,
                 timeline: Optional[Timeline] = None) -> None:
        from repro.core.extensions import FluxExtensions
        self.profile = profile
        self.name = name or profile.name
        self.extensions = extensions or FluxExtensions.none()
        self.clock = clock or SimClock()
        self.rng_factory = rng_factory or RngFactory()
        self.tracer = Tracer(self.clock)
        #: Per-device telemetry; reads the clock for timeline samples
        #: but never advances it, so collection cannot perturb results.
        self.metrics = MetricsRegistry(
            clock=self.clock,
            enabled=os.environ.get(METRICS_ENV, "1") != "0")
        #: Causal event log (flight recorder): a bounded ring of
        #: structured events with Binder-transaction causality.  Same
        #: determinism contract as metrics — reads the clock, never
        #: advances it; ``FLUX_EVENTS=0`` disables collection,
        #: ``FLUX_EVENTS_CAP`` bounds per-device memory.
        self.events = FlightRecorder(
            clock=self.clock, device=self.name,
            capacity=_events_capacity(), tracer=self.tracer,
            enabled=os.environ.get(EVENTS_ENV, "1") != "0")
        #: Edge-sampled time-series plane (link occupancy, shares, queue
        #: depths).  A scenario world passes one shared timeline to all
        #: its devices; a standalone device gets its own, gated by
        #: ``FLUX_TIMELINE``.
        self.timeline = (timeline if timeline is not None
                         else Timeline(clock=self.clock,
                                       enabled=timeline_enabled()))
        self.flux_enabled = flux_enabled

        # Kernel + binder.
        self.kernel = Kernel(self.clock, version=profile.kernel_version,
                             hostname=self.name, tracer=self.tracer)
        self.binder = BinderDriver(
            self.kernel,
            transaction_cost=self.BINDER_TRANSACTION_COST / profile.cpu_factor,
            metrics=self.metrics, events=self.events)
        self.system_process = self.kernel.create_process(
            "system_server", uid=1000, package="android")
        self.service_manager = ServiceManager(self.binder, self.system_process)

        # AIDL registry + Flux recorder.
        self.registry = InterfaceRegistry()
        self.registry.compile_source(all_sources())
        self.call_log = CallLog()
        self.recorder = Recorder(self.registry, self.call_log, self.clock,
                                 cpu_factor=profile.cpu_factor,
                                 metrics=self.metrics, events=self.events)
        self.recorder.enabled = flux_enabled

        # Battery.
        from repro.android.hardware.battery import Battery
        self.battery = Battery(self.clock)

        # Graphics.
        self.vendor_gl = VendorGlLibrary(profile.gpu_name, self.kernel)
        self.gl = GenericGlLibrary(self.vendor_gl)

        # Storage.
        self.storage = DeviceStorage(self.name)
        populate_system_partition(self.storage, profile.android_version,
                                  profile.name, self.rng_factory)

        # System services.
        self._service_ctx = ServiceContext(
            clock=self.clock, kernel=self.kernel, tracer=self.tracer,
            hardware=profile)
        self.services: Dict[str, Any] = {}
        self._boot_services()

        self.framework = FrameworkContext(
            clock=self.clock, tracer=self.tracer, kernel=self.kernel,
            registry=self.registry, recorder=self.recorder,
            service_manager=self.service_manager, gl=self.gl,
            screen=profile.screen, window_service=self.window_service,
            activity_service=self.activity_service, hardware=profile,
            device=self)

        self._threads: Dict[str, ActivityThread] = {}
        self._next_uid = self.APP_UID_BASE

        # Input routing + launcher (imported late: they sit above app/).
        from repro.android.app.input_pipeline import InputDispatcher
        from repro.android.app.launcher import Launcher
        self.input_dispatcher = InputDispatcher(self)
        self.launcher = Launcher(self)

        # Flux device-level services (imported here to avoid a cycle:
        # core.migration depends on the android substrate).
        from repro.core.migration.chunks import ChunkStore
        from repro.core.migration.consistency import ConsistencyManager
        from repro.core.migration.migration import MigrationService
        from repro.core.migration.pairing import PairingService
        self.pairing_service = PairingService(self)
        self.migration_service = MigrationService(self)
        self.consistency = ConsistencyManager(self)
        #: Content-addressed chunk cache for pipelined transfers;
        #: persists across migrations so repeat hops transfer less.
        self.chunk_store = ChunkStore(metrics=self.metrics)

    # -- boot --------------------------------------------------------------------

    def _boot_services(self) -> None:
        ctx = self._service_ctx
        service_classes = [
            NotificationManagerService, AlarmManagerService, AudioService,
            WifiService, ConnectivityManagerService, LocationManagerService,
            PowerManagerService, VibratorService, ClipboardService,
            CameraManagerService, CountryDetectorService, InputManagerService,
            InputMethodManagerService, BluetoothService, SerialService,
            UsbService, KeyguardService, NsdService,
            TextServicesManagerService, UiModeManagerService,
            ActivityManagerService, WindowManagerService,
            PackageManagerService,
        ]
        for service_cls in service_classes:
            if service_cls is SensorService:
                continue
            service = service_cls(ctx)
            self._register_service(service)
        sensor = SensorService(ctx, self.system_process)
        self._register_service(sensor)

        self.activity_service: ActivityManagerService = self.services["activity"]
        self.window_service: WindowManagerService = self.services["window"]
        self.package_service: PackageManagerService = self.services["package"]
        self.power_service: PowerManagerService = self.services["power"]
        self.power_service.attach_system_process(self.system_process)
        ctx.broadcast = self.activity_service.broadcast
        ctx.broadcast_sticky = self.activity_service.broadcast_sticky
        self.activity_service.process_starter = None

    def _register_service(self, service) -> None:
        self.services[service.SERVICE_KEY] = service
        self.service_manager.add_binder_service(
            service.SERVICE_KEY, service, self.system_process, system=True)

    def service(self, key: str):
        try:
            return self.services[key]
        except KeyError:
            raise DeviceError(f"no service {key!r} on {self.name}") from None

    # -- app install / launch -------------------------------------------------------

    def install_app(self, apk: ApkFile, data_bytes: int = units.mb(2),
                    sdcard_bytes: int = 0) -> PackageInfo:
        info = PackageInfo(
            package=apk.package, version_code=apk.version_code,
            api_level=apk.api_level, apk_size=apk.size_bytes,
            permissions=apk.permissions, multi_process=apk.multi_process)
        self.package_service.install(info)
        self.storage.add_file(apk.install_path, apk.size_bytes,
                              apk.content_token)
        if data_bytes:
            self.storage.add_file(f"{apk.data_dir}/databases/app.db",
                                  data_bytes // 2,
                                  f"{apk.package}/data/db/0")
            self.storage.add_file(f"{apk.data_dir}/shared_prefs/prefs.xml",
                                  data_bytes - data_bytes // 2,
                                  f"{apk.package}/data/prefs/0")
        if sdcard_bytes:
            self.storage.add_file(f"{apk.sdcard_data_dir}/cache.bin",
                                  sdcard_bytes, f"{apk.package}/sdcard/0")
        return info

    def launch_app(self, package: str, activity_cls: Type[Activity],
                   heap_bytes: int = units.mb(6),
                   extra_processes: int = 0) -> ActivityThread:
        """Start the app's process(es) and launch its main activity."""
        if not self.package_service.is_installed(package):
            raise DeviceError(f"{package} is not installed on {self.name}")
        if package in self._threads:
            raise DeviceError(f"{package} is already running on {self.name}")
        info = self.package_service.get_package(package)

        process = self._spawn_app_process(package, f"{package}:main",
                                          info.apk_size, heap_bytes)
        thread = ActivityThread(self.framework, package, process)
        self.activity_service.attach_application(package, thread)
        self._threads[package] = thread

        for i in range(extra_processes):
            self._spawn_app_process(package, f"{package}:proc{i + 1}",
                                    0, heap_bytes // 4)

        thread.launch_activity(activity_cls)
        return thread

    def _spawn_app_process(self, package: str, proc_name: str,
                           code_bytes: int, heap_bytes: int):
        uid = self._uid_for(package)
        process = self.kernel.create_process(proc_name, uid=uid,
                                             package=package)
        if code_bytes:
            process.memory.map(MemoryRegion(
                name="code", kind=RegionKind.CODE, size=code_bytes))
        process.memory.map(MemoryRegion(
            name="dalvik-heap", kind=RegionKind.HEAP, size=heap_bytes,
            payload=package.encode("utf-8")))
        process.memory.map(MemoryRegion(
            name="stack", kind=RegionKind.STACK, size=units.kb(512)))
        return process

    def _uid_for(self, package: str) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def thread_of(self, package: str) -> Optional[ActivityThread]:
        return self._threads.get(package)

    def app_processes(self, package: str) -> List[Any]:
        return self.kernel.processes_of_package(package)

    def terminate_app(self, package: str) -> None:
        """Kill the app's processes and detach it (post-migration cleanup)."""
        self._threads.pop(package, None)
        self.activity_service.detach_application(package)
        for process in self.kernel.processes_of_package(package):
            self.kernel.kill_process(process.pid)

    def adopt_thread(self, package: str, thread: ActivityThread) -> None:
        """Register a restored (migrated-in) app thread with this device."""
        self._threads[package] = thread
        self.activity_service.attach_application(package, thread)

    def running_packages(self) -> List[str]:
        return sorted(self._threads)

    def __repr__(self) -> str:
        return f"Device({self.name!r}, {self.profile.model})"
