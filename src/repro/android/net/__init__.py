"""Device-to-device networking: links, transfer timing."""

from repro.android.net.link import Link, LinkError, TransferResult, link_between

__all__ = ["Link", "LinkError", "TransferResult", "link_between"]
