"""Network links between devices.

Devices pair and migrate over WiFi (possibly ad-hoc, paper §1).  A link's
goodput is the minimum of the two endpoints' effective rates, degraded by
a seeded congestion factor — the paper measured on "a congested, urban
environment" campus network.  Transfer time is charged on the shared
virtual clock.

For robustness testing a link carries an optional :class:`LinkFaultPlan`:
a deterministic point (cumulative byte offset, or transfer count) at
which the link drops mid-flight.  The partial transfer is charged to the
clock and accounted — the bytes that made it across really did — and a
:class:`LinkDownError` is raised for the migration pipeline to roll back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim import units
from repro.sim.events import FlightRecorder
from repro.sim.metrics import MetricsRegistry, RATE_BUCKETS_MBPS
from repro.sim.rng import RngFactory


class LinkError(Exception):
    pass


class LinkDownError(LinkError):
    """The link dropped mid-transfer (injected by a :class:`LinkFaultPlan`).

    ``delivered_bytes`` of the failing payload crossed before the drop;
    the time for that partial delivery was already charged to the clock.
    """

    def __init__(self, message: str, delivered_bytes: int = 0,
                 seconds: float = 0.0) -> None:
        super().__init__(message)
        self.delivered_bytes = delivered_bytes
        self.seconds = seconds


@dataclass(frozen=True)
class LinkFaultPlan:
    """Deterministic link-drop point.

    ``drop_after_bytes`` — the link dies once its *cumulative* payload
    byte count reaches this offset; a transfer crossing the offset
    delivers only the bytes up to it.  ``drop_after_transfers`` — the
    link dies at the start of transfer number N+1 (0-based count of
    completed transfers), delivering none of it.  Either or both may be
    set; whichever trips first wins.
    """

    drop_after_bytes: Optional[int] = None
    drop_after_transfers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.drop_after_bytes is not None and self.drop_after_bytes < 0:
            raise LinkError(
                f"bad fault offset {self.drop_after_bytes!r}")
        if (self.drop_after_transfers is not None
                and self.drop_after_transfers < 0):
            raise LinkError(
                f"bad fault transfer count {self.drop_after_transfers!r}")
        if self.drop_after_bytes is None and self.drop_after_transfers is None:
            raise LinkError("empty fault plan: set a byte offset or "
                            "a transfer count")


@dataclass
class TransferResult:
    payload_bytes: int
    seconds: float
    effective_mbps: float


class Link:
    """A point-to-point link with latency and congestion jitter."""

    def __init__(self, bandwidth_mbps: float, latency_s: float = 0.004,
                 congestion: float = 0.85,
                 rng_factory: Optional[RngFactory] = None,
                 name: str = "wifi",
                 fault_plan: Optional[LinkFaultPlan] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[FlightRecorder] = None) -> None:
        if bandwidth_mbps <= 0:
            raise LinkError(f"bad bandwidth {bandwidth_mbps!r}")
        if not 0.0 < congestion <= 1.0:
            raise LinkError(
                f"congestion {congestion!r} outside (0, 1]: it is the "
                "fraction of nominal goodput surviving contention")
        if latency_s < 0:
            raise LinkError(f"negative latency {latency_s!r}")
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_s = latency_s
        self.congestion = congestion
        self.name = name
        self.fault_plan = fault_plan
        self._rng = (rng_factory or RngFactory()).stream("link", name)
        self.bytes_transferred = 0
        self.transfers = 0
        self.retries = 0
        self.faulted = False
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(enabled=False))
        self.events = (events if events is not None
                       else FlightRecorder(enabled=False))

    def _account(self, payload_bytes: int, effective_mbps: float) -> None:
        self.metrics.counter("link", "bytes_total").inc(payload_bytes)
        self.metrics.counter("link", "transfers").inc()
        if effective_mbps > 0:
            self.metrics.histogram(
                "link", "effective_mbps",
                bounds=RATE_BUCKETS_MBPS).observe(effective_mbps)
        self.events.emit("link.transfer", link=self.name,
                         bytes=payload_bytes,
                         mbps=round(effective_mbps, 3))

    # -- fault plumbing ------------------------------------------------------

    def inject_fault(self, plan: Optional[LinkFaultPlan]) -> None:
        """Arm (or with ``None`` disarm) a deterministic drop point.

        Disarming a *tripped* link counts as a retry: the caller is
        re-establishing connectivity to attempt the transfer again.
        """
        if self.faulted and plan is None:
            self.retries += 1
            self.metrics.counter("link", "retries").inc()
            self.events.emit("link.retry", link=self.name,
                             retries=self.retries)
        self.fault_plan = plan
        self.faulted = False

    def fault_budget(self) -> Optional[int]:
        """Payload bytes still deliverable before the planned drop.

        ``None`` means unbounded (no plan, or no byte-offset clause).
        Zero means the very next transfer fails immediately.
        """
        plan = self.fault_plan
        if plan is None:
            return None
        if (plan.drop_after_transfers is not None
                and self.transfers >= plan.drop_after_transfers):
            return 0
        if plan.drop_after_bytes is None:
            return None
        return max(0, plan.drop_after_bytes - self.bytes_transferred)

    def trip_fault(self, delivered_bytes: int, seconds: float,
                   clock) -> None:
        """Account a partial delivery, then raise :class:`LinkDownError`.

        Used by callers that schedule multi-part transfers themselves
        (the chunked burst): they compute how much crossed before the
        drop and hand the partial accounting back to the link.
        """
        if delivered_bytes < 0:
            raise LinkError(f"negative payload {delivered_bytes!r}")
        clock.advance(seconds)
        self.bytes_transferred += delivered_bytes
        self.transfers += 1
        self.faulted = True
        self.metrics.counter("link", "bytes_total").inc(delivered_bytes)
        self.metrics.counter("link", "transfers").inc()
        self.metrics.counter("link", "faults").inc()
        self.events.emit("link.fault", link=self.name,
                         delivered_bytes=delivered_bytes,
                         seconds=round(seconds, 6))
        raise LinkDownError(
            f"link {self.name!r} dropped after {delivered_bytes} bytes "
            "of the failing transfer",
            delivered_bytes=delivered_bytes, seconds=seconds)

    # -- transfers -----------------------------------------------------------

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds to move ``payload_bytes``, with congestion jitter.

        A zero-byte payload charges the latency floor only and draws no
        congestion jitter — there is no wire occupancy to jitter, and
        skipping the draw keeps the RNG stream independent of empty
        control transfers.
        """
        if payload_bytes < 0:
            raise LinkError(f"negative payload {payload_bytes!r}")
        if payload_bytes == 0:
            return self.latency_s
        # Jitter multiplies goodput by congestion +/- 10%.
        factor = self.congestion * self._rng.uniform(0.9, 1.1)
        goodput = units.mbps(self.bandwidth_mbps) * factor
        return self.latency_s + units.transfer_seconds(payload_bytes, goodput)

    def transfer(self, payload_bytes: int, clock) -> TransferResult:
        """Move a payload, charging wire time to the clock.

        Raises :class:`LinkDownError` when the armed fault plan trips
        inside this transfer; the partial slice up to the drop point is
        charged and accounted first.
        """
        seconds = self.transfer_time(payload_bytes)
        budget = self.fault_budget()
        if budget is not None and payload_bytes > budget:
            if payload_bytes > 0:
                fraction = budget / payload_bytes
                partial = self.latency_s + (seconds - self.latency_s) * fraction
            else:
                partial = self.latency_s
            self.trip_fault(budget, partial, clock)
        clock.advance(seconds)
        self.bytes_transferred += payload_bytes
        self.transfers += 1
        if payload_bytes == 0:
            # Latency-only control round trip: no goodput was exercised,
            # so no meaningful rate exists (avoid the 0/seconds artifact).
            self._account(0, 0.0)
            return TransferResult(payload_bytes=0, seconds=seconds,
                                  effective_mbps=0.0)
        effective = (payload_bytes * 8 / seconds / units.MBPS
                     if seconds > 0 else 0.0)
        self._account(payload_bytes, effective)
        return TransferResult(payload_bytes=payload_bytes, seconds=seconds,
                              effective_mbps=effective)

    # -- chunked (pipelined) transfers ---------------------------------------

    def burst_send_seconds(self, chunk_bytes: List[float]) -> List[float]:
        """Per-chunk wire times for one back-to-back burst.

        The congestion jitter is drawn once for the whole burst (one
        coherence interval), matching the single draw a whole-image
        transfer makes; per-chunk latency is not charged — the caller
        adds the link's latency once for the burst.
        """
        factor = self.congestion * self._rng.uniform(0.9, 1.1)
        goodput = units.mbps(self.bandwidth_mbps) * factor
        for size in chunk_bytes:
            if size < 0:
                raise LinkError(f"negative payload {size!r}")
        return [units.transfer_seconds(size, goodput)
                for size in chunk_bytes]

    def record_transfer(self, payload_bytes: int, seconds: float,
                        clock) -> TransferResult:
        """Account a transfer whose duration was computed externally
        (e.g. a pipelined chunk schedule), charging it to the clock.

        This is an accounting primitive: fault plans are *not* checked
        here — a caller that schedules its own burst consults
        :meth:`fault_budget` and reports the partial delivery through
        :meth:`trip_fault`.
        """
        if payload_bytes < 0:
            raise LinkError(f"negative payload {payload_bytes!r}")
        clock.advance(seconds)
        self.bytes_transferred += payload_bytes
        self.transfers += 1
        effective = (payload_bytes * 8 / seconds / units.MBPS
                     if seconds > 0 else 0.0)
        self._account(payload_bytes, effective)
        return TransferResult(payload_bytes=payload_bytes, seconds=seconds,
                              effective_mbps=effective)


#: Goodput fraction of infrastructure WiFi achieved in ad-hoc mode
#: (WiFi Direct / IBSS: no AP aggregation, single spatial stream).
ADHOC_EFFICIENCY = 0.6


def link_between(home_profile, guest_profile,
                 rng_factory: Optional[RngFactory] = None,
                 adhoc: bool = False,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[FlightRecorder] = None) -> Link:
    """Link whose goodput is limited by the slower endpoint.

    ``adhoc=True`` models the paper's disconnected-operation mode (§1:
    "if disconnected from the Internet, devices can use ad-hoc
    networking"): no access point, lower goodput, lower latency.
    """
    bandwidth = min(home_profile.wifi_effective_mbps,
                    guest_profile.wifi_effective_mbps)
    name = f"{home_profile.name}->{guest_profile.name}"
    if adhoc:
        return Link(bandwidth_mbps=bandwidth * ADHOC_EFFICIENCY,
                    latency_s=0.002, rng_factory=rng_factory,
                    name=f"{name}(adhoc)", metrics=metrics, events=events)
    return Link(bandwidth_mbps=bandwidth, rng_factory=rng_factory, name=name,
                metrics=metrics, events=events)
