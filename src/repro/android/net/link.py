"""Network links between devices.

Devices pair and migrate over WiFi (possibly ad-hoc, paper §1).  A link's
goodput is the minimum of the two endpoints' effective rates, degraded by
a seeded congestion factor — the paper measured on "a congested, urban
environment" campus network.  Transfer time is charged on the shared
virtual clock.

For robustness testing a link carries an optional :class:`LinkFaultPlan`:
a deterministic point (cumulative byte offset, or transfer count) at
which the link drops mid-flight.  The partial transfer is charged to the
clock and accounted — the bytes that made it across really did — and a
:class:`LinkDownError` is raised for the migration pipeline to roll back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import units
from repro.sim.clock import SimClock, TimerHandle
from repro.sim.events import FlightRecorder
from repro.sim.metrics import MetricsRegistry, RATE_BUCKETS_MBPS
from repro.sim.rng import RngFactory
from repro.sim.scheduler import Waiter
from repro.sim.timeline import Timeline


class LinkError(Exception):
    pass


class LinkDownError(LinkError):
    """The link dropped mid-transfer (injected by a :class:`LinkFaultPlan`).

    ``delivered_bytes`` of the failing payload crossed before the drop;
    the time for that partial delivery was already charged to the clock.
    """

    def __init__(self, message: str, delivered_bytes: int = 0,
                 seconds: float = 0.0) -> None:
        super().__init__(message)
        self.delivered_bytes = delivered_bytes
        self.seconds = seconds


@dataclass(frozen=True)
class LinkFaultPlan:
    """Deterministic link-drop point.

    ``drop_after_bytes`` — the link dies once its *cumulative* payload
    byte count reaches this offset; a transfer crossing the offset
    delivers only the bytes up to it.  ``drop_after_transfers`` — the
    link dies at the start of transfer number N+1 (0-based count of
    completed transfers), delivering none of it.  Either or both may be
    set; whichever trips first wins.
    """

    drop_after_bytes: Optional[int] = None
    drop_after_transfers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.drop_after_bytes is not None and self.drop_after_bytes < 0:
            raise LinkError(
                f"bad fault offset {self.drop_after_bytes!r}")
        if (self.drop_after_transfers is not None
                and self.drop_after_transfers < 0):
            raise LinkError(
                f"bad fault transfer count {self.drop_after_transfers!r}")
        if self.drop_after_bytes is None and self.drop_after_transfers is None:
            raise LinkError("empty fault plan: set a byte offset or "
                            "a transfer count")


@dataclass
class TransferResult:
    payload_bytes: int
    seconds: float
    effective_mbps: float


class Link:
    """A point-to-point link with latency and congestion jitter."""

    def __init__(self, bandwidth_mbps: float, latency_s: float = 0.004,
                 congestion: float = 0.85,
                 rng_factory: Optional[RngFactory] = None,
                 name: str = "wifi",
                 fault_plan: Optional[LinkFaultPlan] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[FlightRecorder] = None,
                 timeline: Optional[Timeline] = None) -> None:
        if bandwidth_mbps <= 0:
            raise LinkError(f"bad bandwidth {bandwidth_mbps!r}")
        if not 0.0 < congestion <= 1.0:
            raise LinkError(
                f"congestion {congestion!r} outside (0, 1]: it is the "
                "fraction of nominal goodput surviving contention")
        if latency_s < 0:
            raise LinkError(f"negative latency {latency_s!r}")
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_s = latency_s
        self.congestion = congestion
        self.name = name
        self.fault_plan = fault_plan
        self._rng = (rng_factory or RngFactory()).stream("link", name)
        self.bytes_transferred = 0
        self.transfers = 0
        self.retries = 0
        self.faulted = False
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(enabled=False))
        self.events = (events if events is not None
                       else FlightRecorder(enabled=False))
        self.timeline = (timeline if timeline is not None
                         else Timeline(enabled=False))
        #: When set, scheduled flow ops on this link share the medium's
        #: bandwidth fairly with every other flow on it; when None, each
        #: flow gets a private (uncontended) medium.
        self.medium: Optional["Medium"] = None

    def _deliver(self, payload_bytes: int, seconds: float, clock=None,
                 fault: bool = False):
        """Account and emit one completed delivery.

        The single advance+account+telemetry sequence shared by
        :meth:`transfer`, :meth:`trip_fault`, :meth:`record_transfer`
        and the flow arbiter.  With a ``clock`` the wire time is charged
        inline (the synchronous path); without one the caller already
        sits at the completion instant (a medium flow finishing on its
        timer).  Returns a :class:`TransferResult`, or for ``fault``
        deliveries the :class:`LinkDownError` for the caller to raise
        (or reject a waiter with).
        """
        if payload_bytes < 0:
            raise LinkError(f"negative payload {payload_bytes!r}")
        if clock is not None:
            self._sample_busy(1.0)
            clock.advance(seconds)
            self._sample_busy(0.0)
        self.bytes_transferred += payload_bytes
        self.transfers += 1
        if fault:
            self.faulted = True
            self.metrics.counter("link", "bytes_total").inc(payload_bytes)
            self.metrics.counter("link", "transfers").inc()
            self.metrics.counter("link", "faults").inc()
            self.events.emit("link.fault", link=self.name,
                             delivered_bytes=payload_bytes,
                             seconds=round(seconds, 6))
            return LinkDownError(
                f"link {self.name!r} dropped after {payload_bytes} bytes "
                "of the failing transfer",
                delivered_bytes=payload_bytes, seconds=seconds)
        effective = (payload_bytes * 8 / seconds / units.MBPS
                     if payload_bytes > 0 and seconds > 0 else 0.0)
        self._account(payload_bytes, effective)
        return TransferResult(payload_bytes=payload_bytes, seconds=seconds,
                              effective_mbps=effective)

    def _sample_busy(self, value: float) -> None:
        """Wire-occupancy edge for the synchronous (inline) path.

        Scheduled flows are sampled by the medium instead (shares and
        active-flow counts already describe their occupancy).  The
        owning device's name disambiguates identically-named links on
        different device pairs within one shared world timeline.
        """
        if not self.timeline.enabled:
            return
        labels = {"link": self.name}
        device = getattr(self.events, "device", "")
        if device:
            labels["device"] = device
        self.timeline.sample("link/busy", value, **labels)

    def _account(self, payload_bytes: int, effective_mbps: float) -> None:
        self.metrics.counter("link", "bytes_total").inc(payload_bytes)
        self.metrics.counter("link", "transfers").inc()
        if effective_mbps > 0:
            self.metrics.histogram(
                "link", "effective_mbps",
                bounds=RATE_BUCKETS_MBPS).observe(effective_mbps)
        self.events.emit("link.transfer", link=self.name,
                         bytes=payload_bytes,
                         mbps=round(effective_mbps, 3))

    # -- fault plumbing ------------------------------------------------------

    def inject_fault(self, plan: Optional[LinkFaultPlan]) -> None:
        """Arm (or with ``None`` disarm) a deterministic drop point.

        Disarming a *tripped* link counts as a retry: the caller is
        re-establishing connectivity to attempt the transfer again.
        """
        if self.faulted and plan is None:
            self.retries += 1
            self.metrics.counter("link", "retries").inc()
            self.events.emit("link.retry", link=self.name,
                             retries=self.retries)
        self.fault_plan = plan
        self.faulted = False

    def fault_budget(self) -> Optional[int]:
        """Payload bytes still deliverable before the planned drop.

        ``None`` means unbounded (no plan, or no byte-offset clause).
        Zero means the very next transfer fails immediately.
        """
        plan = self.fault_plan
        if plan is None:
            return None
        if (plan.drop_after_transfers is not None
                and self.transfers >= plan.drop_after_transfers):
            return 0
        if plan.drop_after_bytes is None:
            return None
        return max(0, plan.drop_after_bytes - self.bytes_transferred)

    def trip_fault(self, delivered_bytes: int, seconds: float,
                   clock) -> None:
        """Account a partial delivery, then raise :class:`LinkDownError`.

        Used by callers that schedule multi-part transfers themselves
        (the chunked burst): they compute how much crossed before the
        drop and hand the partial accounting back to the link.
        """
        raise self._deliver(delivered_bytes, seconds, clock, fault=True)

    # -- transfers -----------------------------------------------------------

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds to move ``payload_bytes``, with congestion jitter.

        A zero-byte payload charges the latency floor only and draws no
        congestion jitter — there is no wire occupancy to jitter, and
        skipping the draw keeps the RNG stream independent of empty
        control transfers.
        """
        if payload_bytes < 0:
            raise LinkError(f"negative payload {payload_bytes!r}")
        if payload_bytes == 0:
            return self.latency_s
        # Jitter multiplies goodput by congestion +/- 10%.
        factor = self.congestion * self._rng.uniform(0.9, 1.1)
        goodput = units.mbps(self.bandwidth_mbps) * factor
        return self.latency_s + units.transfer_seconds(payload_bytes, goodput)

    def transfer(self, payload_bytes: int, clock) -> TransferResult:
        """Move a payload, charging wire time to the clock.

        Raises :class:`LinkDownError` when the armed fault plan trips
        inside this transfer; the partial slice up to the drop point is
        charged and accounted first.
        """
        seconds, fault_bytes, fault_seconds = self._plan_transfer(payload_bytes)
        if fault_bytes is not None:
            self.trip_fault(fault_bytes, fault_seconds, clock)
        # Zero-byte payloads deliver at effective rate 0.0: a latency-only
        # control round trip exercises no goodput (avoid the 0/seconds
        # artifact).  _deliver computes exactly that.
        return self._deliver(payload_bytes, seconds, clock)

    def _plan_transfer(self, payload_bytes: int):
        """``(solo_seconds, fault_bytes, fault_seconds)`` for one payload.

        Draws the congestion jitter (so call order matches the RNG
        stream contract) and consults the fault budget.  ``fault_bytes``
        is None when the whole payload fits under the armed budget;
        otherwise the transfer dies ``fault_seconds`` in, having
        delivered ``fault_bytes``.
        """
        seconds = self.transfer_time(payload_bytes)
        budget = self.fault_budget()
        if budget is None or payload_bytes <= budget:
            return seconds, None, None
        if payload_bytes > 0:
            fraction = budget / payload_bytes
            partial = self.latency_s + (seconds - self.latency_s) * fraction
        else:
            partial = self.latency_s
        return seconds, budget, partial

    # -- chunked (pipelined) transfers ---------------------------------------

    def burst_send_seconds(self, chunk_bytes: List[float]) -> List[float]:
        """Per-chunk wire times for one back-to-back burst.

        The congestion jitter is drawn once for the whole burst (one
        coherence interval), matching the single draw a whole-image
        transfer makes; per-chunk latency is not charged — the caller
        adds the link's latency once for the burst.
        """
        factor = self.congestion * self._rng.uniform(0.9, 1.1)
        goodput = units.mbps(self.bandwidth_mbps) * factor
        for size in chunk_bytes:
            if size < 0:
                raise LinkError(f"negative payload {size!r}")
        return [units.transfer_seconds(size, goodput)
                for size in chunk_bytes]

    def record_transfer(self, payload_bytes: int, seconds: float,
                        clock) -> TransferResult:
        """Account a transfer whose duration was computed externally
        (e.g. a pipelined chunk schedule), charging it to the clock.

        This is an accounting primitive: fault plans are *not* checked
        here — a caller that schedules its own burst consults
        :meth:`fault_budget` and reports the partial delivery through
        :meth:`trip_fault`.
        """
        return self._deliver(payload_bytes, seconds, clock)


# -- fair-share flow arbitration ---------------------------------------------


@dataclass
class _Flow:
    """One in-flight delivery on a :class:`Medium`.

    ``solo_seconds`` is the wire time the delivery would take alone
    (jitter already drawn) — its *work*.  ``progress`` is how much of
    that work has completed; with n concurrent flows each accrues
    elapsed/n work per elapsed second.  A fault milestone, when set,
    terminates the flow early with ``fault_bytes`` delivered.

    ``session`` is the owning migration's label (for dilation blame);
    ``peak_others`` is the most *other* flows this one ever shared the
    medium with — the "from N contending flows" in the blame line.
    """

    seq: int
    link: Link
    payload_bytes: int
    solo_seconds: float
    waiter: Waiter
    submitted_at: float
    progress: float = 0.0
    fault_bytes: Optional[int] = None
    fault_seconds: Optional[float] = None
    contended: bool = field(default=False)
    session: str = ""
    peak_others: int = 0

    @property
    def milestone(self) -> float:
        return (self.fault_seconds if self.fault_seconds is not None
                else self.solo_seconds)


class Medium:
    """Timer-driven fair-share bandwidth arbitration across flows.

    Every flow submitted here shares the radio environment: with n
    active flows each progresses at 1/n of its solo rate (processor
    sharing).  A single flow therefore completes in exactly its solo
    time — existing single-flow timings are unchanged — and total bytes
    and total wire seconds are conserved under any interleaving, because
    work (solo seconds) is neither created nor destroyed, only spread
    over wall time.

    Completion is event-driven: one clock timer is kept at the earliest
    projected milestone crossing; every submit/finish re-settles accrued
    progress and reschedules.  Flows that finish in the same sweep are
    finalised in submission order, and all link accounting happens
    before any waiter resumes, so event timestamps land at the true
    completion instant.
    """

    EPS = 1e-9

    def __init__(self, clock: SimClock, name: str = "medium",
                 timeline: Optional[Timeline] = None) -> None:
        self.clock = clock
        self.name = name
        self.timeline = (timeline if timeline is not None
                         else Timeline(enabled=False))
        self._flows: List[_Flow] = []
        self._timer: Optional[TimerHandle] = None
        self._last = clock.now
        self._seq = 0
        self.completed_flows = 0
        self.peak_concurrency = 0
        #: session label -> total seconds of dilation (wall minus solo
        #: work) its flows suffered from sharing this medium.
        self.dilation_by_session: Dict[str, float] = {}

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def dilation_for(self, session: str) -> float:
        """Total contention-induced stretch attributed to ``session``."""
        return self.dilation_by_session.get(session, 0.0)

    def submit(self, link: Link, payload_bytes: int, solo_seconds: float,
               fault_bytes: Optional[int] = None,
               fault_seconds: Optional[float] = None,
               session: str = "") -> Waiter:
        """Start a flow; the returned waiter resolves with the
        :class:`TransferResult` (or rejects with the planned
        :class:`LinkDownError`) at the completion instant."""
        if payload_bytes < 0:
            raise LinkError(f"negative payload {payload_bytes!r}")
        if solo_seconds < 0:
            raise LinkError(f"negative wire time {solo_seconds!r}")
        self._settle()
        self._seq += 1
        flow = _Flow(seq=self._seq, link=link, payload_bytes=payload_bytes,
                     solo_seconds=solo_seconds,
                     waiter=Waiter(f"flow#{self._seq} on {link.name}",
                                   kind="flow"),
                     submitted_at=self.clock.now,
                     fault_bytes=fault_bytes, fault_seconds=fault_seconds,
                     session=session)
        self._flows.append(flow)
        if len(self._flows) > 1:
            for active in self._flows:
                active.contended = True
        for active in self._flows:
            active.peak_others = max(active.peak_others,
                                     len(self._flows) - 1)
        self.peak_concurrency = max(self.peak_concurrency, len(self._flows))
        self._sample_state()
        self._reschedule()
        return flow.waiter

    def _sample_state(self) -> None:
        """Active-flow count and per-session instantaneous fair shares."""
        if not self.timeline.enabled:
            return
        self.timeline.sample("medium/active_flows", len(self._flows),
                             medium=self.name)
        if self._flows:
            share = 1.0 / len(self._flows)
            for flow in self._flows:
                if flow.session:
                    self.timeline.sample("link/share", share,
                                         medium=self.name,
                                         session=flow.session)

    def _settle(self) -> None:
        """Accrue fair-share progress for the time since the last touch."""
        now = self.clock.now
        if now > self._last:
            if self._flows:
                share = (now - self._last) / len(self._flows)
                for flow in self._flows:
                    flow.progress += share
            self._last = now

    def _reschedule(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._flows:
            return
        n = len(self._flows)
        shortfall = min(f.milestone - f.progress for f in self._flows)
        self._timer = self.clock.call_after(max(shortfall, 0.0) * n,
                                            self._fire)

    def _fire(self) -> None:
        self._timer = None
        self._settle()
        done = [f for f in self._flows
                if f.progress >= f.milestone - self.EPS]
        if done:
            self._flows = [f for f in self._flows if f not in done]
            if self._flows:
                for active in self._flows:
                    active.contended = True
            # Account every completion first (events at the completion
            # instant), then resume waiters in submission order.
            outcomes = []
            for flow in done:
                # An uncontended flow reports its exact solo figures so
                # the synchronous path's floats reproduce bit-for-bit;
                # contended flows report true wall elapsed time.
                seconds = (self.clock.now - flow.submitted_at
                           if flow.contended else flow.milestone)
                if flow.contended:
                    # Dilation: wall seconds beyond the flow's solo work
                    # — time other flows' shares cost this session.
                    dilation = max(0.0, seconds - flow.milestone)
                    key = flow.session or f"flow#{flow.seq}"
                    self.dilation_by_session[key] = (
                        self.dilation_by_session.get(key, 0.0) + dilation)
                    flow.link.events.emit(
                        "link.dilation", link=flow.link.name,
                        session=flow.session,
                        solo=round(flow.milestone, 6),
                        wall=round(seconds, 6),
                        dilation=round(dilation, 6),
                        others=flow.peak_others)
                if flow.session:
                    self.timeline.sample("link/share", 0.0,
                                         medium=self.name,
                                         session=flow.session)
                if flow.fault_bytes is not None:
                    outcomes.append((flow, flow.link._deliver(
                        flow.fault_bytes, seconds, fault=True)))
                else:
                    outcomes.append((flow, flow.link._deliver(
                        flow.payload_bytes, seconds)))
                self.completed_flows += 1
            self._sample_state()
            for flow, outcome in outcomes:
                if isinstance(outcome, LinkDownError):
                    flow.waiter.reject(outcome)
                else:
                    flow.waiter.resolve(outcome)
        self._reschedule()


@dataclass(frozen=True)
class TransferOp:
    """A whole-payload transfer, schedulable as a fair-share flow.

    ``apply_sync`` is today's :meth:`Link.transfer`; ``submit`` plans
    the same payload (same jitter draw, same fault budget math) as a
    flow on the link's medium — or a private uncontended one.
    """

    link: Link
    payload_bytes: int
    session: str = ""

    def apply_sync(self, clock: SimClock) -> TransferResult:
        return self.link.transfer(self.payload_bytes, clock)

    def submit(self, clock: SimClock) -> Waiter:
        seconds, fault_bytes, fault_seconds = self.link._plan_transfer(
            self.payload_bytes)
        medium = self.link.medium or Medium(clock,
                                            name=f"solo:{self.link.name}")
        return medium.submit(self.link, self.payload_bytes, seconds,
                             fault_bytes=fault_bytes,
                             fault_seconds=fault_seconds,
                             session=self.session)


@dataclass(frozen=True)
class RecordOp:
    """An externally-scheduled delivery (pipelined burst) as a flow.

    Mirrors :meth:`Link.record_transfer`: no fault-budget check — the
    caller planned the burst and reports partials via :class:`FaultOp`.
    """

    link: Link
    payload_bytes: int
    seconds: float
    session: str = ""

    def apply_sync(self, clock: SimClock) -> TransferResult:
        return self.link.record_transfer(self.payload_bytes, self.seconds,
                                         clock)

    def submit(self, clock: SimClock) -> Waiter:
        medium = self.link.medium or Medium(clock,
                                            name=f"solo:{self.link.name}")
        return medium.submit(self.link, self.payload_bytes, self.seconds,
                             session=self.session)


@dataclass(frozen=True)
class FaultOp:
    """A planned partial delivery ending in a link drop.

    ``apply_sync`` is :meth:`Link.trip_fault`; as a flow it occupies the
    wire for ``seconds`` of solo work, then rejects the session's waiter
    with the :class:`LinkDownError`.
    """

    link: Link
    delivered_bytes: int
    seconds: float
    session: str = ""

    def apply_sync(self, clock: SimClock) -> None:
        self.link.trip_fault(self.delivered_bytes, self.seconds, clock)

    def submit(self, clock: SimClock) -> Waiter:
        medium = self.link.medium or Medium(clock,
                                            name=f"solo:{self.link.name}")
        return medium.submit(self.link, self.delivered_bytes, self.seconds,
                             fault_bytes=self.delivered_bytes,
                             fault_seconds=self.seconds,
                             session=self.session)


#: Goodput fraction of infrastructure WiFi achieved in ad-hoc mode
#: (WiFi Direct / IBSS: no AP aggregation, single spatial stream).
ADHOC_EFFICIENCY = 0.6


def link_between(home_profile, guest_profile,
                 rng_factory: Optional[RngFactory] = None,
                 adhoc: bool = False,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[FlightRecorder] = None,
                 timeline: Optional[Timeline] = None) -> Link:
    """Link whose goodput is limited by the slower endpoint.

    ``adhoc=True`` models the paper's disconnected-operation mode (§1:
    "if disconnected from the Internet, devices can use ad-hoc
    networking"): no access point, lower goodput, lower latency.
    """
    bandwidth = min(home_profile.wifi_effective_mbps,
                    guest_profile.wifi_effective_mbps)
    name = f"{home_profile.name}->{guest_profile.name}"
    if adhoc:
        return Link(bandwidth_mbps=bandwidth * ADHOC_EFFICIENCY,
                    latency_s=0.002, rng_factory=rng_factory,
                    name=f"{name}(adhoc)", metrics=metrics, events=events,
                    timeline=timeline)
    return Link(bandwidth_mbps=bandwidth, rng_factory=rng_factory, name=name,
                metrics=metrics, events=events, timeline=timeline)
