"""Network links between devices.

Devices pair and migrate over WiFi (possibly ad-hoc, paper §1).  A link's
goodput is the minimum of the two endpoints' effective rates, degraded by
a seeded congestion factor — the paper measured on "a congested, urban
environment" campus network.  Transfer time is charged on the shared
virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim import units
from repro.sim.rng import RngFactory


class LinkError(Exception):
    pass


@dataclass
class TransferResult:
    payload_bytes: int
    seconds: float
    effective_mbps: float


class Link:
    """A point-to-point link with latency and congestion jitter."""

    def __init__(self, bandwidth_mbps: float, latency_s: float = 0.004,
                 congestion: float = 0.85,
                 rng_factory: Optional[RngFactory] = None,
                 name: str = "wifi") -> None:
        if bandwidth_mbps <= 0:
            raise LinkError(f"bad bandwidth {bandwidth_mbps!r}")
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_s = latency_s
        self.congestion = congestion
        self.name = name
        self._rng = (rng_factory or RngFactory()).stream("link", name)
        self.bytes_transferred = 0
        self.transfers = 0

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds to move ``payload_bytes``, with congestion jitter."""
        if payload_bytes < 0:
            raise LinkError(f"negative payload {payload_bytes!r}")
        # Jitter multiplies goodput by congestion +/- 10%.
        factor = self.congestion * self._rng.uniform(0.9, 1.1)
        goodput = units.mbps(self.bandwidth_mbps) * factor
        return self.latency_s + units.transfer_seconds(payload_bytes, goodput)

    def transfer(self, payload_bytes: int, clock) -> TransferResult:
        """Move a payload, charging wire time to the clock."""
        seconds = self.transfer_time(payload_bytes)
        clock.advance(seconds)
        self.bytes_transferred += payload_bytes
        self.transfers += 1
        effective = (payload_bytes * 8 / seconds / units.MBPS
                     if seconds > 0 else 0.0)
        return TransferResult(payload_bytes=payload_bytes, seconds=seconds,
                              effective_mbps=effective)

    # -- chunked (pipelined) transfers ---------------------------------------

    def burst_send_seconds(self, chunk_bytes: List[float]) -> List[float]:
        """Per-chunk wire times for one back-to-back burst.

        The congestion jitter is drawn once for the whole burst (one
        coherence interval), matching the single draw a whole-image
        transfer makes; per-chunk latency is not charged — the caller
        adds the link's latency once for the burst.
        """
        factor = self.congestion * self._rng.uniform(0.9, 1.1)
        goodput = units.mbps(self.bandwidth_mbps) * factor
        for size in chunk_bytes:
            if size < 0:
                raise LinkError(f"negative payload {size!r}")
        return [units.transfer_seconds(size, goodput)
                for size in chunk_bytes]

    def record_transfer(self, payload_bytes: int, seconds: float,
                        clock) -> TransferResult:
        """Account a transfer whose duration was computed externally
        (e.g. a pipelined chunk schedule), charging it to the clock."""
        if payload_bytes < 0:
            raise LinkError(f"negative payload {payload_bytes!r}")
        clock.advance(seconds)
        self.bytes_transferred += payload_bytes
        self.transfers += 1
        effective = (payload_bytes * 8 / seconds / units.MBPS
                     if seconds > 0 else 0.0)
        return TransferResult(payload_bytes=payload_bytes, seconds=seconds,
                              effective_mbps=effective)


#: Goodput fraction of infrastructure WiFi achieved in ad-hoc mode
#: (WiFi Direct / IBSS: no AP aggregation, single spatial stream).
ADHOC_EFFICIENCY = 0.6


def link_between(home_profile, guest_profile,
                 rng_factory: Optional[RngFactory] = None,
                 adhoc: bool = False) -> Link:
    """Link whose goodput is limited by the slower endpoint.

    ``adhoc=True`` models the paper's disconnected-operation mode (§1:
    "if disconnected from the Internet, devices can use ad-hoc
    networking"): no access point, lower goodput, lower latency.
    """
    bandwidth = min(home_profile.wifi_effective_mbps,
                    guest_profile.wifi_effective_mbps)
    name = f"{home_profile.name}->{guest_profile.name}"
    if adhoc:
        return Link(bandwidth_mbps=bandwidth * ADHOC_EFFICIENCY,
                    latency_s=0.002, rng_factory=rng_factory,
                    name=f"{name}(adhoc)")
    return Link(bandwidth_mbps=bandwidth, rng_factory=rng_factory, name=name)
