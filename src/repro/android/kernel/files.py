"""File-descriptor layer: open files, pipes, unix sockets, device files.

The objects here are what live inside a process FD table.  CRIA must be
able to describe each descriptor well enough to recreate an equivalent
one on the guest (path + offset for files, reconnect for sockets), so
every descriptor type knows how to ``describe`` itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class FdError(Exception):
    """File-descriptor table errors."""


class FileObject:
    """Base class for anything an fd can point at."""

    kind = "file-object"

    def describe(self) -> Dict[str, Any]:
        """A serializable description sufficient to recreate this object."""
        return {"kind": self.kind}


class OpenFile(FileObject):
    """A regular open file on some filesystem path."""

    kind = "file"

    def __init__(self, path: str, flags: str = "r", offset: int = 0) -> None:
        self.path = path
        self.flags = flags
        self.offset = offset

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "path": self.path, "flags": self.flags,
                "offset": self.offset}

    def __repr__(self) -> str:
        return f"OpenFile({self.path!r}, flags={self.flags!r}, offset={self.offset})"


class Pipe(FileObject):
    """One end of an in-kernel pipe."""

    kind = "pipe"
    _ids = itertools.count(1)

    def __init__(self, pipe_id: Optional[int] = None, end: str = "read") -> None:
        self.pipe_id = pipe_id if pipe_id is not None else next(self._ids)
        self.end = end
        self.buffer: List[bytes] = []

    @classmethod
    def pair(cls) -> "tuple[Pipe, Pipe]":
        pipe_id = next(cls._ids)
        read_end = cls(pipe_id, "read")
        write_end = cls(pipe_id, "write")
        write_end.buffer = read_end.buffer
        return read_end, write_end

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "pipe_id": self.pipe_id, "end": self.end}


class UnixSocket(FileObject):
    """One endpoint of a connected unix-domain socket pair.

    SensorService hands a socket like this to apps as the sensor event
    channel; on replay a fresh pair is created and ``dup2``-ed into the
    original descriptor number.
    """

    kind = "unix-socket"
    _ids = itertools.count(1)

    def __init__(self, channel_id: int, role: str, label: str = "") -> None:
        self.channel_id = channel_id
        self.role = role            # "service" or "client"
        self.label = label
        self.peer: Optional["UnixSocket"] = None
        self.inbox: List[bytes] = []
        self.closed = False

    @classmethod
    def pair(cls, label: str = "") -> "tuple[UnixSocket, UnixSocket]":
        channel_id = next(cls._ids)
        service = cls(channel_id, "service", label)
        client = cls(channel_id, "client", label)
        service.peer = client
        client.peer = service
        return service, client

    def send(self, data: bytes) -> None:
        if self.closed or self.peer is None or self.peer.closed:
            raise FdError(f"socket channel {self.channel_id} not connected")
        self.peer.inbox.append(data)

    def recv(self) -> Optional[bytes]:
        if self.inbox:
            return self.inbox.pop(0)
        return None

    def close(self) -> None:
        self.closed = True

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "channel_id": self.channel_id,
                "role": self.role, "label": self.label}


class NetworkFile(FileObject):
    """A file served by another device over the network.

    Used by the sdcard-network-mount migration extension (paper §3.4's
    suggested fix for open common SD-card files): the descriptor keeps
    working on the guest, but every access pays a network round trip to
    the host that actually stores the file.
    """

    kind = "network-file"

    def __init__(self, path: str, host: str, flags: str = "r",
                 offset: int = 0) -> None:
        self.path = path
        self.host = host
        self.flags = flags
        self.offset = offset
        self.remote_reads = 0

    def read_remote(self, nbytes: int, link, clock) -> int:
        """Fetch ``nbytes`` from the host; returns seconds charged."""
        result = link.transfer(nbytes, clock)
        self.offset += nbytes
        self.remote_reads += 1
        return result.seconds

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "path": self.path, "host": self.host,
                "flags": self.flags, "offset": self.offset}

    def __repr__(self) -> str:
        return f"NetworkFile({self.path!r} @ {self.host})"


class DeviceFile(FileObject):
    """An open handle on a kernel driver (e.g. /dev/binder, /dev/ashmem)."""

    kind = "device"

    def __init__(self, driver_name: str, state: Optional[Dict[str, Any]] = None) -> None:
        self.driver_name = driver_name
        self.state: Dict[str, Any] = state or {}

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "driver": self.driver_name,
                "state": dict(self.state)}


@dataclass
class FdEntry:
    fd: int
    obj: FileObject


class FDTable:
    """Per-process descriptor table with POSIX-like allocation semantics."""

    def __init__(self) -> None:
        self._entries: Dict[int, FileObject] = {}
        self._reserved: Dict[int, str] = {}

    def install(self, obj: FileObject, fd: Optional[int] = None) -> int:
        """Install ``obj`` at ``fd`` (or the lowest free fd) and return it."""
        if fd is None:
            fd = self._lowest_free()
        elif fd in self._entries:
            raise FdError(f"fd {fd} already in use")
        self._entries[fd] = obj
        self._reserved.pop(fd, None)
        return fd

    def reserve(self, fd: int, reason: str) -> None:
        """Reserve a descriptor number so allocation skips it.

        CRIA restore reserves the original socket descriptor numbers so
        replay proxies can later dup2 fresh sockets into them.
        """
        if fd in self._entries:
            raise FdError(f"cannot reserve in-use fd {fd}")
        self._reserved[fd] = reason

    def reserved(self) -> Dict[int, str]:
        return dict(self._reserved)

    def dup2(self, obj: FileObject, target_fd: int) -> int:
        """Install ``obj`` at ``target_fd``, closing whatever was there."""
        self._entries[target_fd] = obj
        self._reserved.pop(target_fd, None)
        return target_fd

    def close(self, fd: int) -> FileObject:
        try:
            obj = self._entries.pop(fd)
        except KeyError:
            raise FdError(f"fd {fd} not open") from None
        if isinstance(obj, UnixSocket):
            obj.close()
        return obj

    def detach(self, fd: int) -> FileObject:
        """Remove an entry *without* closing the underlying object.

        Used when an object is being moved to another descriptor number
        (the dup2-into-reserved-fd dance of sensor channel replay).
        """
        try:
            return self._entries.pop(fd)
        except KeyError:
            raise FdError(f"fd {fd} not open") from None

    def get(self, fd: int) -> FileObject:
        try:
            return self._entries[fd]
        except KeyError:
            raise FdError(f"fd {fd} not open") from None

    def entries(self) -> List[FdEntry]:
        return [FdEntry(fd, obj) for fd, obj in sorted(self._entries.items())]

    def fds(self) -> List[int]:
        return sorted(self._entries)

    def find(self, predicate) -> List[FdEntry]:
        return [e for e in self.entries() if predicate(e.obj)]

    def _lowest_free(self) -> int:
        fd = 0
        while fd in self._entries or fd in self._reserved:
            fd += 1
        return fd

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fd: int) -> bool:
        return fd in self._entries
