"""Private virtual PID namespaces.

CRIA restores a migrated app inside a namespace so the app keeps seeing
the pids it saw on the home device even when those pid numbers are taken
on the guest (Zap-style virtualization; paper §3.1/§3.3).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional


class NamespaceError(Exception):
    """PID namespace errors."""


class PIDNamespace:
    """A bidirectional virtual-pid <-> real-pid mapping."""

    _ids = itertools.count(1)

    def __init__(self, name: str = "") -> None:
        self.ns_id = next(self._ids)
        self.name = name or f"ns-{self.ns_id}"
        self._virt_to_real: Dict[int, int] = {}
        self._real_to_virt: Dict[int, int] = {}

    def bind(self, virtual_pid: int, real_pid: int) -> None:
        """Pin ``virtual_pid`` (what the app sees) onto ``real_pid``."""
        if virtual_pid in self._virt_to_real:
            raise NamespaceError(
                f"virtual pid {virtual_pid} already bound in {self.name}")
        if real_pid in self._real_to_virt:
            raise NamespaceError(
                f"real pid {real_pid} already bound in {self.name}")
        self._virt_to_real[virtual_pid] = real_pid
        self._real_to_virt[real_pid] = virtual_pid

    def unbind_real(self, real_pid: int) -> None:
        virtual = self._real_to_virt.pop(real_pid, None)
        if virtual is not None:
            self._virt_to_real.pop(virtual, None)

    def to_real(self, virtual_pid: int) -> int:
        try:
            return self._virt_to_real[virtual_pid]
        except KeyError:
            raise NamespaceError(
                f"virtual pid {virtual_pid} unknown in {self.name}") from None

    def to_virtual(self, real_pid: int) -> int:
        try:
            return self._real_to_virt[real_pid]
        except KeyError:
            raise NamespaceError(
                f"real pid {real_pid} unknown in {self.name}") from None

    def has_virtual(self, virtual_pid: int) -> bool:
        return virtual_pid in self._virt_to_real

    def bindings(self) -> Dict[int, int]:
        return dict(self._virt_to_real)

    def __len__(self) -> int:
        return len(self._virt_to_real)
