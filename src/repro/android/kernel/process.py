"""Process and thread model.

Processes are the unit CRIA checkpoints.  Each one has an address space,
a descriptor table, threads, and an identity (uid / package).  Threads
carry a run state so checkpoint can require the process be quiesced.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.android.kernel.files import FDTable
from repro.android.kernel.memory import AddressSpace


class ThreadState(enum.Enum):
    RUNNING = "running"
    SLEEPING = "sleeping"
    FROZEN = "frozen"      # quiesced for checkpoint
    DEAD = "dead"


class ProcessState(enum.Enum):
    ALIVE = "alive"
    FROZEN = "frozen"
    DEAD = "dead"


class ProcessError(Exception):
    """Process lifecycle errors."""


class Thread:
    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        self.state = ThreadState.RUNNING
        # Opaque register/stack snapshot; carried through checkpoints.
        self.context: Dict[str, int] = {"pc": 0, "sp": 0}

    def freeze(self) -> None:
        if self.state is ThreadState.DEAD:
            raise ProcessError(f"cannot freeze dead thread {self.tid}")
        self.state = ThreadState.FROZEN

    def thaw(self) -> None:
        if self.state is not ThreadState.FROZEN:
            raise ProcessError(f"thread {self.tid} not frozen")
        self.state = ThreadState.RUNNING

    def __repr__(self) -> str:
        return f"Thread(tid={self.tid}, name={self.name!r}, state={self.state.value})"


class Process:
    """A running process inside a simulated kernel."""

    def __init__(self, pid: int, name: str, uid: int,
                 package: Optional[str] = None) -> None:
        self.pid = pid
        self.name = name
        self.uid = uid
        self.package = package      # Android package this process belongs to
        self.state = ProcessState.ALIVE
        self.memory = AddressSpace()
        self.fds = FDTable()
        self.threads: List[Thread] = []
        self._next_tid = pid        # main thread tid == pid, like Linux
        self.environ: Dict[str, str] = {}
        self.oom_score = 0
        self.exit_code: Optional[int] = None

    def spawn_thread(self, name: str) -> Thread:
        if self.state is ProcessState.DEAD:
            raise ProcessError(f"process {self.pid} is dead")
        thread = Thread(self._next_tid, name)
        self._next_tid += 1
        self.threads.append(thread)
        return thread

    @property
    def main_thread(self) -> Thread:
        if not self.threads:
            raise ProcessError(f"process {self.pid} has no threads")
        return self.threads[0]

    def live_threads(self) -> List[Thread]:
        return [t for t in self.threads if t.state is not ThreadState.DEAD]

    def freeze(self) -> None:
        """Quiesce all threads prior to checkpoint."""
        if self.state is ProcessState.DEAD:
            raise ProcessError(f"cannot freeze dead process {self.pid}")
        for thread in self.live_threads():
            thread.freeze()
        self.state = ProcessState.FROZEN

    def thaw(self) -> None:
        if self.state is not ProcessState.FROZEN:
            raise ProcessError(f"process {self.pid} not frozen")
        for thread in self.threads:
            if thread.state is ThreadState.FROZEN:
                thread.thaw()
        self.state = ProcessState.ALIVE

    @property
    def alive(self) -> bool:
        return self.state is not ProcessState.DEAD

    def memory_footprint(self) -> int:
        return self.memory.total_size()

    def __repr__(self) -> str:
        return (f"Process(pid={self.pid}, name={self.name!r}, "
                f"state={self.state.value})")
