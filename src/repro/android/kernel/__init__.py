"""Simulated Android/Linux kernel: processes, memory, fds, namespaces, drivers."""

from repro.android.kernel.files import (
    DeviceFile,
    FDTable,
    FdError,
    FileObject,
    OpenFile,
    Pipe,
    UnixSocket,
)
from repro.android.kernel.kernel import Kernel, KernelError
from repro.android.kernel.memory import (
    DEVICE_SPECIFIC_KINDS,
    AddressSpace,
    MemoryRegion,
    RegionKind,
)
from repro.android.kernel.namespace import NamespaceError, PIDNamespace
from repro.android.kernel.process import (
    Process,
    ProcessError,
    ProcessState,
    Thread,
    ThreadState,
)

__all__ = [
    "DeviceFile", "FDTable", "FdError", "FileObject", "OpenFile", "Pipe",
    "UnixSocket", "Kernel", "KernelError", "DEVICE_SPECIFIC_KINDS",
    "AddressSpace", "MemoryRegion", "RegionKind", "NamespaceError",
    "PIDNamespace", "Process", "ProcessError", "ProcessState", "Thread",
    "ThreadState",
]
