"""Android-specific kernel drivers."""

from repro.android.kernel.drivers.alarm_dev import AlarmDriver, KernelAlarm
from repro.android.kernel.drivers.ashmem import AshmemDriver, AshmemRegion
from repro.android.kernel.drivers.base import Driver, DriverError
from repro.android.kernel.drivers.logger import LogEntry, LoggerDriver
from repro.android.kernel.drivers.pmem import PmemAllocation, PmemDriver
from repro.android.kernel.drivers.wakelock import WakelockDriver

__all__ = [
    "AlarmDriver", "KernelAlarm", "AshmemDriver", "AshmemRegion", "Driver",
    "DriverError", "LogEntry", "LoggerDriver", "PmemAllocation", "PmemDriver",
    "WakelockDriver",
]
