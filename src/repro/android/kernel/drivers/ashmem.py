"""ashmem: Android named shared-memory driver.

The paper notes ashmem is mainly used by Dalvik to name memory regions;
Flux sidesteps checkpointing it by patching Dalvik to use plain mmap.  We
implement the driver faithfully anyway — an app that still holds ashmem
regions at checkpoint time is detected, and CRIA either refuses or the
runtime is configured in "dalvik-mmap" mode which avoids creating them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.kernel.drivers.base import Driver, DriverError
from repro.android.kernel.files import DeviceFile
from repro.android.kernel.memory import MemoryRegion, RegionKind


class AshmemRegion:
    def __init__(self, name: str, size: int, owner_pid: int) -> None:
        self.name = name
        self.size = size
        self.owner_pid = owner_pid
        self.pinned = True
        self.mappers: List[int] = []


class AshmemDriver(Driver):
    name = "ashmem"

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self._regions: Dict[str, AshmemRegion] = {}

    def open(self, process, **kwargs: Any) -> DeviceFile:
        return DeviceFile(self.name, state={"region": None})

    def create_region(self, process, name: str, size: int) -> AshmemRegion:
        if name in self._regions:
            raise DriverError(f"ashmem region {name!r} exists")
        region = AshmemRegion(name, size, process.pid)
        self._regions[name] = region
        return region

    def map_region(self, process, name: str) -> MemoryRegion:
        region = self._get(name)
        mapping = process.memory.map(MemoryRegion(
            name=f"ashmem:{name}", kind=RegionKind.ASHMEM, size=region.size,
            shared_with=name))
        region.mappers.append(process.pid)
        return mapping

    def unmap_region(self, process, name: str) -> None:
        region = self._get(name)
        process.memory.unmap(f"ashmem:{name}")
        if process.pid in region.mappers:
            region.mappers.remove(process.pid)
        if not region.mappers and region.owner_pid == process.pid:
            del self._regions[name]

    def regions_of(self, pid: int) -> List[AshmemRegion]:
        return [r for r in self._regions.values() if pid in r.mappers]

    def checkpoint_state(self, process) -> Optional[Dict[str, Any]]:
        regions = self.regions_of(process.pid)
        if not regions:
            return None
        return {"regions": [{"name": r.name, "size": r.size} for r in regions]}

    def restore_state(self, process, state: Dict[str, Any]) -> None:
        for spec in state["regions"]:
            if spec["name"] not in self._regions:
                self.create_region(process, spec["name"], spec["size"])
            if not process.memory.has(f"ashmem:{spec['name']}"):
                self.map_region(process, spec["name"])

    def _get(self, name: str) -> AshmemRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise DriverError(f"no ashmem region {name!r}") from None
