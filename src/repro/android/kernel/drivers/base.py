"""Driver base class.

Drivers register with the kernel by name; processes open them to obtain a
:class:`~repro.android.kernel.files.DeviceFile`.  Each driver may expose
checkpoint hooks (``checkpoint_state`` / ``restore_state``) that CRIA
calls for per-process driver state, mirroring the CRIU kernel hooks the
paper extends.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.android.kernel.files import DeviceFile


class DriverError(Exception):
    """Driver-level failures."""


class Driver:
    """Base class for simulated kernel drivers."""

    name = "driver"

    def __init__(self, kernel) -> None:
        self.kernel = kernel

    def open(self, process, **kwargs: Any) -> DeviceFile:
        """Open the device for ``process``; returns an uninstalled DeviceFile."""
        return DeviceFile(self.name)

    def release(self, process, device_file: DeviceFile) -> None:
        """Called when an fd on this driver is closed."""

    def checkpoint_state(self, process) -> Optional[Dict[str, Any]]:
        """Per-process state CRIA must carry in the checkpoint image.

        Return None when the driver keeps no per-process state (the
        common case the paper notes for Logger).
        """
        return None

    def restore_state(self, process, state: Dict[str, Any]) -> None:
        """Re-inject per-process state on the restore side."""
        raise DriverError(f"driver {self.name!r} does not support restore")
