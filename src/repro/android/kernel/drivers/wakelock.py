"""Wakelock driver: keep-awake accounting.

The device may sleep only when no wakelocks are held.  As with alarms,
only system services take wakelocks (apps go through the
PowerManagerService), so CRIA carries no per-process wakelock state; the
PowerManagerService's app-visible locks migrate via record/replay.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.android.kernel.drivers.base import Driver, DriverError


class WakelockDriver(Driver):
    name = "wakelock"

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self._held: Dict[str, int] = {}   # name -> holder pid

    def acquire(self, process, name: str) -> None:
        if name in self._held:
            raise DriverError(f"wakelock {name!r} already held")
        self._held[name] = process.pid

    def release(self, process, name: str) -> None:
        holder = self._held.get(name)
        if holder is None:
            raise DriverError(f"wakelock {name!r} not held")
        if holder != process.pid:
            raise DriverError(
                f"wakelock {name!r} held by pid {holder}, not {process.pid}")
        del self._held[name]

    def release_all(self, pid: int) -> int:
        names = [n for n, holder in self._held.items() if holder == pid]
        for name in names:
            del self._held[name]
        return len(names)

    def held(self) -> Set[str]:
        return set(self._held)

    @property
    def can_sleep(self) -> bool:
        return not self._held

    def checkpoint_state(self, process) -> None:
        return None
