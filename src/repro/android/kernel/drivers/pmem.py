"""pmem: physically contiguous memory allocator used by the GPU.

pmem allocations are inherently device specific (they name physical
addresses on the home SoC), so CRIA never checkpoints them; instead the
preparation phase must free them.  ``allocations_of`` lets CRIA verify
none remain at checkpoint time.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List

from repro.android.kernel.drivers.base import Driver, DriverError
from repro.android.kernel.memory import MemoryRegion, RegionKind


class PmemAllocation:
    _ids = itertools.count(1)

    def __init__(self, pid: int, size: int, purpose: str) -> None:
        self.alloc_id = next(self._ids)
        self.pid = pid
        self.size = size
        self.purpose = purpose     # e.g. "gl-texture-pool"


class PmemDriver(Driver):
    name = "pmem"

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self._allocations: Dict[int, PmemAllocation] = {}

    def allocate(self, process, size: int, purpose: str) -> PmemAllocation:
        if size <= 0:
            raise DriverError(f"bad pmem size {size}")
        alloc = PmemAllocation(process.pid, size, purpose)
        self._allocations[alloc.alloc_id] = alloc
        process.memory.map(MemoryRegion(
            name=f"pmem:{alloc.alloc_id}", kind=RegionKind.PMEM, size=size))
        return alloc

    def free(self, process, alloc: PmemAllocation) -> None:
        if alloc.alloc_id not in self._allocations:
            raise DriverError(f"pmem allocation {alloc.alloc_id} unknown")
        del self._allocations[alloc.alloc_id]
        process.memory.unmap(f"pmem:{alloc.alloc_id}")

    def free_all(self, process) -> int:
        """Free every allocation owned by ``process``; returns bytes freed."""
        freed = 0
        for alloc in self.allocations_of(process.pid):
            freed += alloc.size
            self.free(process, alloc)
        return freed

    def allocations_of(self, pid: int) -> List[PmemAllocation]:
        return [a for a in self._allocations.values() if a.pid == pid]

    def checkpoint_state(self, process) -> None:
        if self.allocations_of(process.pid):
            raise DriverError(
                "pmem allocations present at checkpoint; preparation phase "
                "must free GPU memory first")
        return None
