"""Kernel alarm driver.

Backs the AlarmManagerService: alarms fire at absolute virtual-clock
deadlines regardless of "sleep" state.  Per the paper, CRIA does not need
to checkpoint this driver directly because only system services use it;
app-visible alarm state migrates via Selective Record/Adaptive Replay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.android.kernel.drivers.base import Driver, DriverError
from repro.sim.clock import TimerHandle


@dataclass
class KernelAlarm:
    alarm_id: int
    deadline: float
    callback: Callable[[], None]
    handle: TimerHandle = field(repr=False, default=None)  # type: ignore[assignment]


class AlarmDriver(Driver):
    name = "alarm"

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self._ids = itertools.count(1)
        self._alarms: Dict[int, KernelAlarm] = {}

    def set_alarm(self, deadline: float, callback: Callable[[], None]) -> KernelAlarm:
        alarm_id = next(self._ids)

        def fire() -> None:
            self._alarms.pop(alarm_id, None)
            callback()

        handle = self.kernel.clock.call_at(deadline, fire)
        alarm = KernelAlarm(alarm_id=alarm_id, deadline=deadline,
                            callback=callback, handle=handle)
        self._alarms[alarm_id] = alarm
        return alarm

    def cancel(self, alarm_id: int) -> None:
        alarm = self._alarms.pop(alarm_id, None)
        if alarm is None:
            raise DriverError(f"alarm {alarm_id} not set")
        alarm.handle.cancel()

    def pending(self) -> int:
        return len(self._alarms)

    def checkpoint_state(self, process) -> None:
        # Only system services hold kernel alarms; app alarm state is
        # carried by Selective Record/Adaptive Replay (paper §3.3).
        return None
