"""Android Logger driver: ring buffers for log messages.

The paper notes Logger needed little CRIA work because it is used like a
regular file and keeps no per-process state; our model matches — the
driver holds global ring buffers and processes merely write into them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.android.kernel.drivers.base import Driver, DriverError


LOG_BUFFERS = ("main", "system", "events", "radio")
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class LogEntry:
    time: float
    pid: int
    tag: str
    priority: str
    message: str


class LoggerDriver(Driver):
    name = "logger"

    def __init__(self, kernel, capacity: int = DEFAULT_CAPACITY) -> None:
        super().__init__(kernel)
        self._buffers: Dict[str, Deque[LogEntry]] = {
            b: deque(maxlen=capacity) for b in LOG_BUFFERS
        }

    def write(self, process, tag: str, message: str,
              priority: str = "I", buffer: str = "main") -> LogEntry:
        entry = LogEntry(time=self.kernel.clock.now, pid=process.pid,
                         tag=tag, priority=priority, message=message)
        self._buffer(buffer).append(entry)
        return entry

    def read(self, buffer: str = "main",
             pid: Optional[int] = None) -> List[LogEntry]:
        entries = list(self._buffer(buffer))
        if pid is not None:
            entries = [e for e in entries if e.pid == pid]
        return entries

    def checkpoint_state(self, process) -> None:
        # Like a regular file: nothing per-process to save (paper §3.3).
        return None

    def _buffer(self, name: str) -> Deque[LogEntry]:
        try:
            return self._buffers[name]
        except KeyError:
            raise DriverError(f"no log buffer {name!r}") from None
