"""Process address-space model.

A process owns a set of named memory regions.  Regions carry a *kind* and
a *device-specific* flag: CRIA may only checkpoint regions that are not
device specific, so the preparation phase (backgrounding, trim-memory,
eglUnload) must have removed every device-specific region first.  Region
contents are modelled as an opaque byte payload plus a size; checkpoint
images copy the payload so restore can verify integrity.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class RegionKind(enum.Enum):
    CODE = "code"            # app executable / dex
    HEAP = "heap"            # Dalvik + native heap
    STACK = "stack"
    MMAP = "mmap"            # plain anonymous or file-backed mapping
    ASHMEM = "ashmem"        # Android shared memory
    PMEM = "pmem"            # physically contiguous (GPU) memory
    GL_VENDOR = "gl_vendor"  # vendor GL library state (device specific)
    GL_CONTEXT = "gl_context"  # EGL/GL context storage (device specific)
    SURFACE = "surface"      # window drawing surface buffers


DEVICE_SPECIFIC_KINDS = frozenset({
    RegionKind.PMEM,
    RegionKind.GL_VENDOR,
    RegionKind.GL_CONTEXT,
    RegionKind.SURFACE,
})


class MemoryError_(Exception):
    """Address-space errors (shadowing builtin MemoryError intentionally avoided)."""


@dataclass
class MemoryRegion:
    """One mapping in a process address space."""

    name: str
    kind: RegionKind
    size: int
    payload: bytes = b""
    shared_with: Optional[str] = None  # ashmem name when shared

    def __post_init__(self) -> None:
        if self.size < 0:
            raise MemoryError_(f"negative region size for {self.name!r}")

    @property
    def device_specific(self) -> bool:
        return self.kind in DEVICE_SPECIFIC_KINDS

    def content_hash(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        digest.update(self.kind.value.encode("ascii"))
        digest.update(self.size.to_bytes(8, "big"))
        digest.update(self.payload)
        return digest.hexdigest()

    def clone(self) -> "MemoryRegion":
        return MemoryRegion(name=self.name, kind=self.kind, size=self.size,
                            payload=self.payload, shared_with=self.shared_with)


class AddressSpace:
    """The set of memory regions mapped into one process."""

    def __init__(self) -> None:
        self._regions: Dict[str, MemoryRegion] = {}

    def map(self, region: MemoryRegion) -> MemoryRegion:
        if region.name in self._regions:
            raise MemoryError_(f"region {region.name!r} already mapped")
        self._regions[region.name] = region
        return region

    def unmap(self, name: str) -> MemoryRegion:
        try:
            return self._regions.pop(name)
        except KeyError:
            raise MemoryError_(f"region {name!r} not mapped") from None

    def get(self, name: str) -> MemoryRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryError_(f"region {name!r} not mapped") from None

    def has(self, name: str) -> bool:
        return name in self._regions

    def regions(self, kind: Optional[RegionKind] = None) -> List[MemoryRegion]:
        if kind is None:
            return list(self._regions.values())
        return [r for r in self._regions.values() if r.kind == kind]

    def device_specific_regions(self) -> List[MemoryRegion]:
        return [r for r in self._regions.values() if r.device_specific]

    def total_size(self, kind: Optional[RegionKind] = None) -> int:
        return sum(r.size for r in self.regions(kind))

    def __iter__(self) -> Iterator[MemoryRegion]:
        return iter(list(self._regions.values()))

    def __len__(self) -> int:
        return len(self._regions)
