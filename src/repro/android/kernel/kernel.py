"""The simulated Android/Linux kernel.

One :class:`Kernel` instance exists per device.  It owns the process
table, PID allocation, PID namespaces, and the Android-specific drivers
(Binder is attached by :mod:`repro.android.binder` since its logic lives
there).  The kernel version string matters: the paper migrates between
kernels 3.1 and 3.4, and CRIA records the source version in the image.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.android.kernel.drivers.alarm_dev import AlarmDriver
from repro.android.kernel.drivers.ashmem import AshmemDriver
from repro.android.kernel.drivers.base import Driver, DriverError
from repro.android.kernel.drivers.logger import LoggerDriver
from repro.android.kernel.drivers.pmem import PmemDriver
from repro.android.kernel.drivers.wakelock import WakelockDriver
from repro.android.kernel.namespace import PIDNamespace
from repro.android.kernel.process import Process, ProcessError, ProcessState
from repro.sim.clock import SimClock
from repro.sim.trace import Tracer


class KernelError(Exception):
    """Kernel-level failures."""


class Kernel:
    def __init__(self, clock: SimClock, version: str = "3.4",
                 hostname: str = "device", tracer: Optional[Tracer] = None) -> None:
        self.clock = clock
        self.version = version
        self.hostname = hostname
        self.tracer = tracer or Tracer(clock)
        self._next_pid = 100
        self._processes: Dict[int, Process] = {}
        self._namespaces: List[PIDNamespace] = []
        self._drivers: Dict[str, Driver] = {}
        self.binder = None  # attached by repro.android.binder.BinderDriver

        for driver_cls in (AshmemDriver, PmemDriver, LoggerDriver,
                           AlarmDriver, WakelockDriver):
            self.register_driver(driver_cls(self))

    # -- drivers -----------------------------------------------------------

    def register_driver(self, driver: Driver) -> None:
        if driver.name in self._drivers:
            raise KernelError(f"driver {driver.name!r} already registered")
        self._drivers[driver.name] = driver

    def driver(self, name: str) -> Driver:
        try:
            return self._drivers[name]
        except KeyError:
            raise KernelError(f"no driver {name!r}") from None

    @property
    def ashmem(self) -> AshmemDriver:
        return self._drivers["ashmem"]  # type: ignore[return-value]

    @property
    def pmem(self) -> PmemDriver:
        return self._drivers["pmem"]  # type: ignore[return-value]

    @property
    def logger(self) -> LoggerDriver:
        return self._drivers["logger"]  # type: ignore[return-value]

    @property
    def alarm(self) -> AlarmDriver:
        return self._drivers["alarm"]  # type: ignore[return-value]

    @property
    def wakelocks(self) -> WakelockDriver:
        return self._drivers["wakelock"]  # type: ignore[return-value]

    def drivers(self) -> List[Driver]:
        return list(self._drivers.values())

    # -- processes ---------------------------------------------------------

    def create_process(self, name: str, uid: int = 10000,
                       package: Optional[str] = None,
                       pid: Optional[int] = None) -> Process:
        if pid is None:
            pid = self._allocate_pid()
        elif pid in self._processes:
            raise KernelError(f"pid {pid} already in use")
        else:
            self._next_pid = max(self._next_pid, pid + 1)
        process = Process(pid=pid, name=name, uid=uid, package=package)
        process.spawn_thread("main")
        self._processes[pid] = process
        self.tracer.emit("kernel", "process-create", pid=pid, proc=name)
        return process

    def kill_process(self, pid: int, exit_code: int = 0) -> None:
        process = self.process(pid)
        process.state = ProcessState.DEAD
        process.exit_code = exit_code
        for thread in process.threads:
            thread.state = thread.state.__class__.DEAD
        self.wakelocks.release_all(pid)
        if self.binder is not None:
            self.binder.release_process(process)
        for ns in self._namespaces:
            ns.unbind_real(pid)
        del self._processes[pid]
        self.tracer.emit("kernel", "process-exit", pid=pid, exit_code=exit_code)

    def process(self, pid: int) -> Process:
        try:
            return self._processes[pid]
        except KeyError:
            raise KernelError(f"no process with pid {pid}") from None

    def has_pid(self, pid: int) -> bool:
        return pid in self._processes

    def processes(self) -> List[Process]:
        return list(self._processes.values())

    def processes_of_package(self, package: str) -> List[Process]:
        return [p for p in self._processes.values() if p.package == package]

    def _allocate_pid(self) -> int:
        while self._next_pid in self._processes:
            self._next_pid += 1
        pid = self._next_pid
        self._next_pid += 1
        return pid

    # -- namespaces --------------------------------------------------------

    def create_pid_namespace(self, name: str = "") -> PIDNamespace:
        ns = PIDNamespace(name)
        self._namespaces.append(ns)
        return ns

    def destroy_pid_namespace(self, ns: PIDNamespace) -> None:
        """Drop a namespace (rollback of a failed restore).

        Any processes still bound inside it must be killed first;
        killing them already unbinds their pids from every namespace.
        """
        try:
            self._namespaces.remove(ns)
        except ValueError:
            pass

    def namespaces(self) -> List[PIDNamespace]:
        return list(self._namespaces)
