"""View hierarchy: Views, ViewGroups, ViewRoot, GLSurfaceView.

A Window's View hierarchy is rooted by a ViewRoot; rendering traverses
the tree and each View draws its portion (paper §2).  Hardware-
accelerated Views hold display lists in GPU memory via the
HardwareRenderer; ``release_display_lists`` is the hook the trim-memory
chain uses to drop them.  GLSurfaceView owns its own EGL context and is
where ``setPreserveEGLContextOnPause`` — the feature that makes an app
unmigratable (paper §3.4) — lives.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional


class ViewError(Exception):
    pass


class View:
    """An interactive UI element."""

    _ids = itertools.count(1)
    DISPLAY_LIST_BYTES = 16 * 1024

    def __init__(self, name: str = "") -> None:
        self.view_id = next(self._ids)
        self.name = name or f"view-{self.view_id}"
        self.parent: Optional["ViewGroup"] = None
        self.valid = False          # needs redraw when False
        self.draw_count = 0
        self._display_list_res: Optional[int] = None

    def invalidate(self) -> None:
        self.valid = False

    def draw(self, renderer) -> None:
        """Draw this view; allocates its display list on first draw."""
        if self._display_list_res is None and renderer is not None:
            resource = renderer.allocate_display_list(self.DISPLAY_LIST_BYTES)
            self._display_list_res = resource.res_id
        self.valid = True
        self.draw_count += 1

    def release_display_list(self, renderer) -> None:
        if self._display_list_res is not None and renderer is not None:
            renderer.free_display_list(self._display_list_res)
        self._display_list_res = None
        self.valid = False

    def iter_tree(self):
        yield self

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ViewGroup(View):
    """A View containing child Views."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.children: List[View] = []

    def add_view(self, child: View) -> View:
        if child.parent is not None:
            raise ViewError(f"{child} already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def remove_view(self, child: View) -> None:
        if child not in self.children:
            raise ViewError(f"{child} is not a child of {self}")
        self.children.remove(child)
        child.parent = None

    def draw(self, renderer) -> None:
        super().draw(renderer)
        for child in self.children:
            child.draw(renderer)

    def release_display_list(self, renderer) -> None:
        super().release_display_list(renderer)
        for child in self.children:
            child.release_display_list(renderer)

    def iter_tree(self):
        yield self
        for child in self.children:
            yield from child.iter_tree()


class GLSurfaceView(View):
    """A view with its own EGL context for direct GL rendering.

    ``set_preserve_egl_context_on_pause(True)`` keeps the context alive
    while backgrounded — the texture-cache optimization that defeats
    Flux's preparation phase (paper §3.4, Subway Surfers).
    """

    def __init__(self, name: str = "", texture_bytes: int = 8 * 1024 * 1024) -> None:
        super().__init__(name)
        self.texture_bytes = texture_bytes
        self.preserve_egl_context_on_pause = False
        self._context = None
        self._gl = None
        self._process = None

    def set_preserve_egl_context_on_pause(self, preserve: bool) -> None:
        self.preserve_egl_context_on_pause = preserve

    def attach_gl(self, gl, process) -> None:
        self._gl = gl
        self._process = process

    def on_resume_gl(self) -> None:
        """(Re)create the GL context and upload textures."""
        if self._gl is None:
            raise ViewError(f"{self.name}: no GL library attached")
        if self._context is None or self._context.destroyed:
            self._gl.egl_initialize(self._process)
            self._context = self._gl.egl_create_context(self._process)
            self._context.create_resource("texture", self.texture_bytes)

    def on_pause_gl(self) -> None:
        """Default behaviour: destroy the context when paused."""
        if self.preserve_egl_context_on_pause:
            return
        if self._context is not None and not self._context.destroyed:
            self._context.destroy()
            self._context = None

    @property
    def has_live_context(self) -> bool:
        return self._context is not None and not self._context.destroyed

    def draw(self, renderer) -> None:
        # GL views render through their own context, not the renderer's.
        if not self.has_live_context:
            self.on_resume_gl()
        self.valid = True
        self.draw_count += 1

    def release_display_list(self, renderer) -> None:
        self.valid = False


class ViewRoot:
    """Root of a Window's view hierarchy; drives traversal."""

    _ids = itertools.count(1)

    def __init__(self, window, content: ViewGroup) -> None:
        self.root_id = next(self._ids)
        self.window = window
        self.content = content
        self.destroyed = False
        self.traversals = 0

    def perform_traversal(self, renderer) -> None:
        """Render the tree into the window surface."""
        if self.destroyed:
            raise ViewError(f"ViewRoot {self.root_id} destroyed")
        if not self.window.has_surface:
            raise ViewError(f"window {self.window.window_id} has no surface")
        self.content.draw(renderer)
        self.window.surface.render_frame()
        self.traversals += 1

    def invalidate_all(self) -> None:
        for view in self.content.iter_tree():
            view.invalidate()

    def all_views_invalid(self) -> bool:
        return all(not v.valid for v in self.content.iter_tree())

    def release_display_lists(self, renderer) -> None:
        """terminateHardwareResources: drop GPU-side view state."""
        self.content.release_display_list(renderer)

    def gl_surface_views(self) -> List[GLSurfaceView]:
        return [v for v in self.content.iter_tree()
                if isinstance(v, GLSurfaceView)]

    def destroy(self) -> None:
        self.destroyed = True

    def view_count(self) -> int:
        return sum(1 for _ in self.content.iter_tree())
