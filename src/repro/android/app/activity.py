"""Activities and their life cycle.

States and transitions follow the paper's §2 description: after creation
an activity is Resumed; sent to the background it becomes Paused (no
input, no code); if not quickly foregrounded the task idler moves it to
Stopped, where its Surface is destroyed and it can no longer render.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Optional

from repro.android.app.views import ViewGroup, ViewRoot


class ActivityState(enum.Enum):
    CREATED = "created"
    RESUMED = "resumed"
    PAUSED = "paused"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


class LifecycleError(Exception):
    pass


_LEGAL_TRANSITIONS = {
    ActivityState.CREATED: {ActivityState.RESUMED, ActivityState.DESTROYED},
    ActivityState.RESUMED: {ActivityState.PAUSED},
    ActivityState.PAUSED: {ActivityState.RESUMED, ActivityState.STOPPED},
    ActivityState.STOPPED: {ActivityState.RESUMED, ActivityState.DESTROYED},
    ActivityState.DESTROYED: set(),
}


class Activity:
    """Base class apps subclass; lifecycle driven by the ActivityThread."""

    _tokens = itertools.count(1)

    def __init__(self, name: str, thread) -> None:
        self.name = name
        self.thread = thread              # hosting ActivityThread
        self.token = next(self._tokens)
        self.state = ActivityState.CREATED
        self.window = None                # set when attached by the thread
        self.view_root: Optional[ViewRoot] = None
        self.saved_state: Dict[str, Any] = {}
        self.lifecycle_log = []           # [(state, time)] for assertions
        self.touch_events = []            # events routed by the dispatcher

    @property
    def package(self) -> str:
        return self.thread.package

    # -- wiring ------------------------------------------------------------------

    def set_content_view(self, content: ViewGroup) -> None:
        if self.window is None:
            raise LifecycleError(f"{self.name}: no window attached yet")
        self.view_root = ViewRoot(self.window, content)

    def attach_window(self, window) -> None:
        self.window = window

    def get_system_service(self, name: str):
        return self.thread.context.get_system_service(name)

    # -- lifecycle dispatch (called by ActivityThread only) -------------------------

    def perform_transition(self, new_state: ActivityState, clock) -> None:
        if new_state not in _LEGAL_TRANSITIONS[self.state]:
            raise LifecycleError(
                f"{self.name}: illegal transition "
                f"{self.state.value} -> {new_state.value}")
        old = self.state
        self.state = new_state
        self.lifecycle_log.append((new_state, clock.now))
        if new_state is ActivityState.RESUMED:
            if old is ActivityState.CREATED:
                pass  # on_create already ran during performLaunch
            self.on_resume()
        elif new_state is ActivityState.PAUSED:
            self.on_pause()
        elif new_state is ActivityState.STOPPED:
            self.on_stop()
        elif new_state is ActivityState.DESTROYED:
            self.on_destroy()

    # -- app-overridable hooks --------------------------------------------------

    def on_create(self, saved_state: Dict[str, Any]) -> None:
        """Build the UI; apps override."""

    def on_resume(self) -> None:
        pass

    def on_pause(self) -> None:
        for gl_view in self._gl_views():
            gl_view.on_pause_gl()

    def on_stop(self) -> None:
        pass

    def on_destroy(self) -> None:
        pass

    def on_trim_memory(self, level: int) -> None:
        pass

    def on_configuration_changed(self, config) -> None:
        pass

    def on_save_instance_state(self, bundle: Dict[str, Any]) -> None:
        pass

    def on_touch(self, event) -> None:
        """Touch input routed by the InputDispatcher; apps override."""

    def dispatch_touch(self, event) -> None:
        if self.state is not ActivityState.RESUMED:
            raise LifecycleError(
                f"{self.name}: input in state {self.state.value}")
        self.touch_events.append(event)
        self.on_touch(event)

    # -- helpers ------------------------------------------------------------------

    def _gl_views(self):
        if self.view_root is None:
            return []
        return self.view_root.gl_surface_views()

    @property
    def visible(self) -> bool:
        return self.state is ActivityState.RESUMED

    def render(self) -> None:
        """Draw a frame (only legal while resumed)."""
        if self.state is not ActivityState.RESUMED:
            raise LifecycleError(
                f"{self.name}: cannot render in state {self.state.value}")
        if self.view_root is None:
            raise LifecycleError(f"{self.name}: no content view set")
        self.thread.renderer.draw(self.view_root)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"state={self.state.value})")
