"""App-facing system-service managers.

These are the framework classes apps actually call (NotificationManager,
AlarmManager, SensorManager, …).  Each wraps a generated AIDL proxy;
because the proxy carries the app's recorder, every ``@record``-decorated
call is logged transparently — the app code never sees Flux (paper §3.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification


class ManagerError(Exception):
    pass


class SystemServiceManager:
    """Base: delegates unknown attributes to the AIDL proxy."""

    def __init__(self, proxy) -> None:
        self._proxy = proxy

    def __getattr__(self, name: str):
        return getattr(self._proxy, name)

    def rebind_remotes(self, fixup, recorder) -> None:
        """Point the proxy at the guest device after restore.

        Handle *numbers* are app state and survive migration (CRIA
        re-injects them in the guest's Binder driver); the IBinder's
        driver/process pointers are kernel state and must be re-made.
        ``fixup(old_remote) -> new IBinder`` preserves the handle.
        """
        self._proxy._remote = fixup(self._proxy._remote)
        self._proxy._recorder = recorder


class NotificationManager(SystemServiceManager):
    def notify(self, notification_id: int, notification: Notification) -> None:
        self._proxy.enqueueNotification(notification_id, notification)

    def cancel(self, notification_id: int) -> None:
        self._proxy.cancelNotification(notification_id)

    def cancel_all(self) -> None:
        self._proxy.cancelAllNotifications()


class AlarmManager(SystemServiceManager):
    RTC = 1
    RTC_WAKEUP = 0
    ELAPSED_REALTIME = 3

    def set(self, alarm_type: int, trigger_at: float,
            operation: PendingIntent) -> None:
        self._proxy.set(alarm_type, trigger_at, operation)

    def set_repeating(self, alarm_type: int, trigger_at: float,
                      interval: float, operation: PendingIntent) -> None:
        self._proxy.setRepeating(alarm_type, trigger_at, interval, operation)

    def cancel(self, operation: PendingIntent) -> None:
        self._proxy.remove(operation)


class SensorManager(SystemServiceManager):
    """Wraps ISensorService plus per-connection ISensorEventConnection."""

    def __init__(self, proxy, thread) -> None:
        super().__init__(proxy)
        self._thread = thread
        self._connection = None      # ISensorEventConnectionProxy
        self._channel_fd: Optional[int] = None
        self._listeners: Dict[int, Any] = {}   # sensor handle -> listener

    def get_sensor_list(self) -> List[Any]:
        return self._proxy.getSensorList()

    def default_sensor(self, sensor_type: str):
        for sensor in self.get_sensor_list():
            if sensor.sensor_type == sensor_type:
                return sensor
        return None

    def _ensure_connection(self):
        if self._connection is None:
            remote = self._proxy.createSensorEventConnection()
            registry = self._thread.framework.registry
            compiled = registry.get("ISensorEventConnection")
            self._connection = compiled.new_proxy(remote,
                                                  self._thread.recorder)
        return self._connection

    def register_listener(self, listener, sensor_handle: int,
                          sampling_rate: int = 10) -> None:
        connection = self._ensure_connection()
        if self._channel_fd is None:
            fd_token = connection.getSensorChannel()
            self._channel_fd = fd_token.fd
        connection.enableSensor(sensor_handle, sampling_rate)
        self._listeners[sensor_handle] = listener

    def unregister_listener(self, sensor_handle: int) -> None:
        if self._connection is None:
            raise ManagerError("no sensor connection")
        self._connection.disableSensor(sensor_handle)
        self._listeners.pop(sensor_handle, None)

    def rebind_remotes(self, fixup, recorder) -> None:
        super().rebind_remotes(fixup, recorder)
        if self._connection is not None:
            self._connection._remote = fixup(self._connection._remote)
            self._connection._recorder = recorder

    @property
    def channel_fd(self) -> Optional[int]:
        return self._channel_fd

    def poll_events(self) -> List[Any]:
        """Drain delivered sensor events from the channel socket."""
        if self._channel_fd is None:
            return []
        sock = self._thread.process.fds.get(self._channel_fd)
        events = []
        while True:
            data = sock.recv()
            if data is None:
                break
            events.append(data)
        for event in events:
            for listener in self._listeners.values():
                listener(event)
        return events


class AudioManager(SystemServiceManager):
    STREAM_MUSIC = 3
    STREAM_RING = 2
    STREAM_ALARM = 4

    def set_stream_volume(self, stream: int, index: int) -> None:
        self._proxy.setStreamVolume(stream, index, 0)

    def get_stream_volume(self, stream: int) -> int:
        return self._proxy.getStreamVolume(stream)

    def request_audio_focus(self, client_id: str,
                            stream: int = STREAM_MUSIC) -> int:
        return self._proxy.requestAudioFocus(client_id, stream, 1)

    def abandon_audio_focus(self, client_id: str) -> int:
        return self._proxy.abandonAudioFocus(client_id)


class WifiManager(SystemServiceManager):
    def acquire_lock(self, lock_id: str, mode: int = 1) -> None:
        self._proxy.acquireWifiLock(lock_id, mode)

    def release_lock(self, lock_id: str) -> None:
        self._proxy.releaseWifiLock(lock_id)


class ConnectivityManager(SystemServiceManager):
    def is_connected(self) -> bool:
        info = self._proxy.getActiveNetworkInfo()
        return info is not None and info.connected


class LocationManager(SystemServiceManager):
    GPS_PROVIDER = "gps"
    NETWORK_PROVIDER = "network"

    def request_updates(self, provider: str, listener_id: str,
                        min_time: float = 1.0,
                        min_distance: float = 0.0) -> None:
        self._proxy.requestLocationUpdates(provider, min_time, min_distance,
                                           listener_id)

    def remove_updates(self, listener_id: str) -> None:
        self._proxy.removeUpdates(listener_id)


class PowerManager(SystemServiceManager):
    PARTIAL_WAKE_LOCK = 1
    SCREEN_DIM_WAKE_LOCK = 6

    class WakeLock:
        def __init__(self, proxy, lock_id: str, flags: int, tag: str) -> None:
            self._proxy = proxy
            self.lock_id = lock_id
            self.flags = flags
            self.tag = tag
            self.held = False

        def acquire(self) -> None:
            self._proxy.acquireWakeLock(self.lock_id, self.flags, self.tag)
            self.held = True

        def release(self) -> None:
            self._proxy.releaseWakeLock(self.lock_id)
            self.held = False

    def new_wake_lock(self, flags: int, tag: str) -> "PowerManager.WakeLock":
        # Deterministic per-manager sequence (not id(self): memory
        # addresses vary run-to-run and would leak into the record log).
        self._lock_seq = getattr(self, "_lock_seq", 0) + 1
        lock_id = f"{tag}:{self._lock_seq}"
        return self.WakeLock(self._proxy, lock_id, flags, tag)


class ClipboardManager(SystemServiceManager):
    def set_text(self, text: str) -> None:
        self._proxy.setPrimaryClip({"text": text})

    def get_text(self) -> Optional[str]:
        clip = self._proxy.getPrimaryClip()
        return None if clip is None else clip.get("text")


class Vibrator(SystemServiceManager):
    def vibrate(self, milliseconds: int) -> None:
        self._proxy.vibrate(milliseconds)

    def cancel(self) -> None:
        self._proxy.cancelVibrate()


class CameraManager(SystemServiceManager):
    def open(self, camera_id: int = 0) -> None:
        self._proxy.connectCamera(camera_id)

    def close(self, camera_id: int = 0) -> None:
        self._proxy.disconnectCamera(camera_id)


class InputMethodManager(SystemServiceManager):
    def show_soft_input(self) -> None:
        self._proxy.showSoftInput(0)

    def hide_soft_input(self) -> None:
        self._proxy.hideSoftInput(0)


class KeyguardManager(SystemServiceManager):
    pass


class UiModeManager(SystemServiceManager):
    pass


class ActivityManager(SystemServiceManager):
    def start_service(self, intent: Intent):
        return self._proxy.startService(intent)

    def stop_service(self, intent: Intent) -> int:
        return self._proxy.stopService(intent)

    def broadcast(self, intent: Intent) -> None:
        self._proxy.broadcastIntent(intent)


# ServiceManager key -> (descriptor, manager class)
MANAGER_BINDINGS: Dict[str, Any] = {
    "activity": ("IActivityManagerService", ActivityManager),
    "notification": ("INotificationManagerService", NotificationManager),
    "alarm": ("IAlarmManagerService", AlarmManager),
    "sensor": ("ISensorService", SensorManager),
    "audio": ("IAudioService", AudioManager),
    "wifi": ("IWifiService", WifiManager),
    "connectivity": ("IConnectivityManagerService", ConnectivityManager),
    "location": ("ILocationManagerService", LocationManager),
    "power": ("IPowerManagerService", PowerManager),
    "clipboard": ("IClipboardService", ClipboardManager),
    "vibrator": ("IVibratorService", Vibrator),
    "camera": ("ICameraManagerService", CameraManager),
    "input_method": ("IInputMethodManagerService", InputMethodManager),
    "keyguard": ("IKeyguardService", KeyguardManager),
    "ui_mode": ("IUiModeManagerService", UiModeManager),
}
