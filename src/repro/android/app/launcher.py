"""The launcher: app icons, starting apps, and the migrated-app icon.

Paper §3.4: "until the migrated app is brought back to its home device,
an icon for the migrated app will exist on the guest device's launcher
allowing the user to resume the migrated app"; and on the home side,
starting an app whose live state is on a guest raises the sync-back /
discard prompt.  The launcher is where both behaviours surface to the
user, so it is modelled explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.migration.consistency import ConsistencyConflict


class IconKind(enum.Enum):
    NATIVE = "native"
    MIGRATED = "migrated"    # the Flux wrapper of a migrated-in app


@dataclass(frozen=True)
class LauncherIcon:
    package: str
    kind: IconKind
    running: bool


class LauncherError(Exception):
    pass


class Launcher:
    def __init__(self, device) -> None:
        self.device = device

    def icons(self) -> List[LauncherIcon]:
        """Everything with a launchable presence on this device."""
        icons = []
        for info in self.device.package_service.installed_packages():
            kind = IconKind.MIGRATED if info.pseudo else IconKind.NATIVE
            if kind is IconKind.MIGRATED and not self._has_wrapper_payload(
                    info.package):
                continue   # a bare pairing wrapper with nothing migrated in
            icons.append(LauncherIcon(
                package=info.package, kind=kind,
                running=self.device.thread_of(info.package) is not None))
        return sorted(icons, key=lambda i: i.package)

    def _has_wrapper_payload(self, package: str) -> bool:
        """Does the wrapper currently hold a migrated instance?"""
        return self.device.thread_of(package) is not None

    def start(self, package: str):
        """User taps an icon.

        * A running app (native or migrated) comes to the foreground.
        * A native app whose live state was migrated away raises the
          consistency prompt (paper §3.4) instead of starting.
        """
        thread = self.device.thread_of(package)
        if thread is not None:
            self.device.activity_service.foreground_app(package)
            return thread
        info = self.device.package_service.get_package(package)
        if info.pseudo:
            raise LauncherError(
                f"{package}: wrapper holds no migrated instance; migrate "
                "the app to this device first")
        # Native start: the consistency manager may veto.
        self.device.consistency.check_native_start(package)
        raise LauncherError(
            f"{package}: cold start requires launching through the app "
            "runtime (Device.launch_app) in this simulation")

    def migrated_icons(self) -> List[LauncherIcon]:
        return [i for i in self.icons() if i.kind is IconKind.MIGRATED]
