"""The input pipeline: touch events from the driver to the app.

Events injected at the InputManagerService are routed by the
InputDispatcher: system-level gesture listeners (Flux's two-finger-swipe
detector registers here) see every event first and may consume the
stream; otherwise the event reaches the foreground activity, which
hit-tests its view tree.  Views receive ``on_touch`` callbacks; the
whole path is what makes "swipe to migrate" an end-to-end story rather
than a synthetic trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.migration.gesture import TouchEvent


@dataclass
class DispatchRecord:
    event: TouchEvent
    consumed_by: str        # "gesture" | activity name | "dropped"


class InputDispatcher:
    """Per-device event router."""

    def __init__(self, device) -> None:
        self.device = device
        self._gesture_listeners: List[Callable[[TouchEvent], bool]] = []
        self.dispatched: List[DispatchRecord] = []

    # -- system-level gesture listeners (Flux) -----------------------------------

    def add_gesture_listener(self,
                             listener: Callable[[TouchEvent], bool]) -> None:
        """``listener(event) -> consumed`` sees events before apps do."""
        self._gesture_listeners.append(listener)

    def remove_gesture_listener(self, listener) -> None:
        if listener in self._gesture_listeners:
            self._gesture_listeners.remove(listener)

    # -- injection & routing --------------------------------------------------------

    def inject(self, event: TouchEvent) -> DispatchRecord:
        for listener in self._gesture_listeners:
            if listener(event):
                record = DispatchRecord(event, "gesture")
                self.dispatched.append(record)
                return record
        activity = self._foreground_activity()
        if activity is None:
            record = DispatchRecord(event, "dropped")
        else:
            activity.dispatch_touch(event)
            record = DispatchRecord(event, activity.name)
        self.dispatched.append(record)
        return record

    def inject_tap(self, x: float, y: float, pointer_id: int = 0,
                   at: Optional[float] = None) -> None:
        time = at if at is not None else self.device.clock.now
        self.inject(TouchEvent(time, pointer_id, x, y, "down"))
        self.inject(TouchEvent(time + 0.05, pointer_id, x, y, "up"))

    def _foreground_activity(self):
        for package in self.device.running_packages():
            thread = self.device.thread_of(package)
            if thread is None or thread.in_background:
                continue
            resumed = thread.resumed_activities()
            if resumed:
                return resumed[0]
        return None


class SystemGestureNavigator:
    """Flux's system-level gesture hook: two-finger swipe -> target menu.

    Registers a gesture listener with the dispatcher; while two fingers
    are down, events are consumed (the app never sees the swipe), and a
    completed vertical two-finger swipe opens the migration target menu.
    """

    def __init__(self, device, on_swipe: Callable[[], None]) -> None:
        from repro.core.migration.gesture import TwoFingerSwipeDetector
        self.device = device
        self.on_swipe = on_swipe
        self._active_pointers: set = set()
        self._saw_two = False
        self.detector = TwoFingerSwipeDetector(lambda det: on_swipe())
        device.input_dispatcher.add_gesture_listener(self._on_event)

    def _on_event(self, event: TouchEvent) -> bool:
        if event.action == "down":
            self._active_pointers.add(event.pointer_id)
        elif event.action == "up":
            self._active_pointers.discard(event.pointer_id)
        became_multi = (not self._saw_two
                        and len(self._active_pointers) >= 2)
        if became_multi:
            # The system takes the gesture over: the app that already
            # received the first finger's down gets an ACTION_CANCEL,
            # exactly as Android's input pipeline does.
            self._saw_two = True
            self._cancel_app_gesture(event.time)
        multi_touch = self._saw_two
        self.detector.feed(event)
        if not self._active_pointers:
            self._saw_two = False
        # Consume while a multi-finger gesture is in flight; single-finger
        # interaction passes through to the app.
        return multi_touch

    def _cancel_app_gesture(self, time: float) -> None:
        activity = self.device.input_dispatcher._foreground_activity()
        if activity is not None:
            activity.dispatch_touch(TouchEvent(time, -1, 0.0, 0.0, "cancel"))
