"""App runtime: activities, views, intents, the ActivityThread."""

from repro.android.app.activity import Activity, ActivityState, LifecycleError
from repro.android.app.activity_thread import (
    ActivityThread,
    AppContext,
    AppRuntimeError,
    AppService,
    ContentProvider,
)
from repro.android.app.intent import (
    ACTION_AIRPLANE_MODE,
    ACTION_BATTERY_LOW,
    ACTION_CONFIGURATION_CHANGED,
    ACTION_CONNECTIVITY_CHANGE,
    ACTION_WIFI_STATE_CHANGED,
    BroadcastReceiver,
    Intent,
    IntentFilter,
    PendingIntent,
)
from repro.android.app.managers import MANAGER_BINDINGS, SystemServiceManager
from repro.android.app.notification import Notification, Toast
from repro.android.app.views import (
    GLSurfaceView,
    View,
    ViewError,
    ViewGroup,
    ViewRoot,
)

__all__ = [
    "Activity", "ActivityState", "LifecycleError", "ActivityThread",
    "AppContext", "AppRuntimeError", "AppService", "ContentProvider",
    "ACTION_AIRPLANE_MODE", "ACTION_BATTERY_LOW",
    "ACTION_CONFIGURATION_CHANGED", "ACTION_CONNECTIVITY_CHANGE",
    "ACTION_WIFI_STATE_CHANGED", "BroadcastReceiver", "Intent",
    "IntentFilter", "PendingIntent", "MANAGER_BINDINGS",
    "SystemServiceManager", "Notification", "Toast", "GLSurfaceView", "View",
    "ViewError", "ViewGroup", "ViewRoot",
]
