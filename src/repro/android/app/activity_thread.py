"""ActivityThread and AppContext: the in-process app runtime.

The ActivityThread hosts an app's activities, receivers, app services,
and hardware renderer, and implements the framework side of the
trim-memory chain the paper repurposes in §3.3.  The AppContext exposes
``get_system_service``, constructing manager wrappers whose AIDL proxies
carry the app's recorder.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Type

from repro.android.app.activity import Activity, ActivityState
from repro.android.app.intent import BroadcastReceiver, Intent, IntentFilter
from repro.android.app.managers import MANAGER_BINDINGS, SensorManager
from repro.android.graphics.renderer import (
    TRIM_MEMORY_COMPLETE,
    HardwareRenderer,
)


class AppRuntimeError(Exception):
    pass


class AppService:
    """A background (non-UI) app component, paper §2."""

    def __init__(self, name: str, thread: "ActivityThread") -> None:
        self.name = name
        self.thread = thread
        self.running = False
        self.start_count = 0

    def on_start_command(self, intent: Optional[Intent]) -> None:
        self.running = True
        self.start_count += 1

    def on_destroy(self) -> None:
        self.running = False


class ContentProvider:
    """Shared-data component reached via short-lived Binder connections."""

    def __init__(self, authority: str, thread: "ActivityThread") -> None:
        self.authority = authority
        self.thread = thread
        self._rows: Dict[str, Dict[str, Any]] = {}

    def insert(self, key: str, row: Dict[str, Any]) -> None:
        self._rows[key] = dict(row)

    def query(self, key: str) -> Optional[Dict[str, Any]]:
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def delete(self, key: str) -> bool:
        return self._rows.pop(key, None) is not None


class AppContext:
    """Per-app android.content.Context equivalent."""

    def __init__(self, thread: "ActivityThread") -> None:
        self._thread = thread
        self._managers: Dict[str, Any] = {}

    @property
    def package(self) -> str:
        return self._thread.package

    def get_system_service(self, key: str):
        if key in self._managers:
            return self._managers[key]
        framework = self._thread.framework
        if key in MANAGER_BINDINGS:
            descriptor, manager_cls = MANAGER_BINDINGS[key]
        else:
            # Services without a dedicated manager class still get the
            # generic recording wrapper (e.g. input, nsd, text_services).
            from repro.android.app.managers import SystemServiceManager
            from repro.android.services.aidl_sources import spec_for
            descriptor = spec_for(key).interface
            manager_cls = SystemServiceManager
        remote = framework.service_manager.get_service(self._thread.process,
                                                       key)
        proxy = framework.registry.get(descriptor).new_proxy(
            remote, self._thread.recorder)
        if manager_cls is SensorManager:
            manager = manager_cls(proxy, self._thread)
        else:
            manager = manager_cls(proxy)
        self._managers[key] = manager
        return manager

    def reset_service_cache(self) -> None:
        """Drop cached managers (rarely needed; managers are app state)."""
        self._managers.clear()

    def rebind_managers(self, fixup, recorder) -> None:
        """Fix every cached manager's remote after restore on a guest.

        Manager objects (and the handle numbers inside them) are app
        heap state and must survive; only the kernel-side plumbing the
        IBinders point at is replaced.
        """
        for manager in self._managers.values():
            manager.rebind_remotes(fixup, recorder)


class ActivityThread:
    """One per app process; drives components and the render pipeline."""

    def __init__(self, framework, package: str, process) -> None:
        self.framework = framework        # device-level FrameworkContext
        self.package = package
        self.process = process
        self.recorder = framework.recorder.bind_app(package)
        self.context = AppContext(self)
        self.renderer = HardwareRenderer(process, framework.gl)
        self.activities: Dict[int, Activity] = {}
        self.receivers: Dict[str, BroadcastReceiver] = {}
        self._receiver_seq = 0
        self.app_services: Dict[str, AppService] = {}
        self.providers: Dict[str, ContentProvider] = {}
        self.in_background = False
        self.trim_levels_seen: List[int] = []
        self.app_thread_node = self._publish_app_thread_node()

    def _publish_app_thread_node(self):
        """Create the app-owned binder node the AMS holds a reference to
        (the ApplicationThread of real Android).  Its death is how the
        system learns the app process died."""
        driver = self.framework.kernel.binder
        return driver.create_node(self.process, self,
                                  f"appthread:{self.package}")

    @property
    def clock(self):
        return self.framework.clock

    # -- activity lifecycle ---------------------------------------------------

    def launch_activity(self, activity_cls: Type[Activity],
                        name: str = "") -> Activity:
        # Launching a new activity sends the current one to Paused
        # (partially obscured; paper §2) — the back stack.
        self.pause_all()
        activity = activity_cls(name or activity_cls.__name__, self)
        window = self.framework.window_service.add_window(
            self.package, self.process, title=activity.name)
        activity.attach_window(window)
        activity.on_create(dict(activity.saved_state))
        self.activities[activity.token] = activity
        activity.perform_transition(ActivityState.RESUMED, self.clock)
        if activity.view_root is not None:
            self.renderer.draw(activity.view_root)
        self.framework.tracer.emit("app", "activity-launch",
                                   package=self.package, activity=activity.name)
        return activity

    def resumed_activities(self) -> List[Activity]:
        return [a for a in self.activities.values()
                if a.state is ActivityState.RESUMED]

    def pause_all(self) -> None:
        for activity in self.resumed_activities():
            activity.perform_transition(ActivityState.PAUSED, self.clock)

    def stop_all(self) -> None:
        """Task idler's work: stop paused activities, free their surfaces."""
        for activity in self.activities.values():
            if activity.state is ActivityState.PAUSED:
                activity.perform_transition(ActivityState.STOPPED, self.clock)
                if activity.window is not None:
                    activity.window.destroy_surface()
        self.in_background = True

    def back_stack(self) -> List[Activity]:
        """Live activities in launch order; the last one is the top."""
        return [a for a in self.activities.values()
                if a.state is not ActivityState.DESTROYED]

    def top_activity(self) -> Optional[Activity]:
        stack = self.back_stack()
        return stack[-1] if stack else None

    def resume_all(self) -> None:
        """Bring the app to the foreground: only the *top* of the back
        stack becomes Resumed; anything beneath stays Paused/Stopped."""
        top = self.top_activity()
        if top is not None:
            self._resume_one(top)
        self.in_background = False

    def _resume_one(self, activity: Activity) -> None:
        if activity.state in (ActivityState.PAUSED, ActivityState.STOPPED):
            if (activity.window is not None
                    and not activity.window.has_surface):
                activity.window.recreate_surface(self.framework.screen)
            activity.perform_transition(ActivityState.RESUMED, self.clock)
            if activity.view_root is not None:
                activity.view_root.invalidate_all()
                self.renderer.draw(activity.view_root)

    # -- trim-memory chain (paper §3.3, verbatim order) --------------------------

    def handle_trim_memory(self, level: int) -> None:
        self.trim_levels_seen.append(level)
        for activity in self.activities.values():
            activity.on_trim_memory(level)
        if level < TRIM_MEMORY_COMPLETE:
            self.renderer.start_trim_memory(level)
            return
        window_service = self.framework.window_service
        window_service.start_trim_memory(self.process, self.renderer)
        for activity in self.activities.values():
            if activity.view_root is not None:
                self.renderer.destroy_hardware_resources(activity.view_root)
        window_service.end_trim_memory(self.process, self.renderer)
        for activity in self.activities.values():
            if activity.view_root is not None:
                activity.view_root.destroy()
                activity.view_root = None   # rebuilt by conditional init

    def rebuild_view_roots(self) -> None:
        """Conditional re-initialization after restore (paper §3.3)."""
        for activity in self.activities.values():
            if activity.view_root is None:
                activity.on_create(dict(activity.saved_state))

    # -- restore support (used by CRIA's restore engine) ---------------------------

    def rebind(self, framework, process) -> None:
        """Re-attach this thread to a (possibly different) device.

        The thread object *is* the app's heap in our model: CRIA carries
        it in the checkpoint image and calls ``rebind`` on the guest.
        Everything device-specific — renderer, windows, service proxies,
        the recorder — is dropped and lazily rebuilt against the guest
        framework; everything app-specific (activity fields, receiver
        callbacks, app services, providers) survives untouched.
        """
        from repro.android.binder.ibinder import IBinder

        self.framework = framework
        self.process = process
        self.recorder = framework.recorder.bind_app(self.package)

        def fixup(old_remote):
            return IBinder(framework.kernel.binder, process,
                           old_remote.handle)

        self.context.rebind_managers(fixup, self.recorder)
        self.renderer = HardwareRenderer(process, framework.gl)
        self.app_thread_node = self._publish_app_thread_node()
        for activity in self.activities.values():
            window = framework.window_service.add_window(
                self.package, process, title=activity.name)
            window.destroy_surface()   # app is still backgrounded
            activity.attach_window(window)
            activity.thread = self

    # -- broadcasts ---------------------------------------------------------------

    def register_receiver(self, callback, actions) -> str:
        receiver = BroadcastReceiver(callback, IntentFilter(tuple(actions)),
                                     owner_package=self.package)
        # Per-thread sequence, not the process-global receiver counter:
        # the id string lands in the record log, so its length must not
        # depend on how many receivers other apps registered before.
        self._receiver_seq = getattr(self, "_receiver_seq", 0) + 1
        receiver_id = f"{self.package}:recv:{self._receiver_seq}"
        self.receivers[receiver_id] = receiver
        activity_manager = self.context.get_system_service("activity")
        activity_manager.registerReceiver(receiver_id,
                                          IntentFilter(tuple(actions)))
        return receiver_id

    def unregister_receiver(self, receiver_id: str) -> None:
        self.receivers.pop(receiver_id, None)
        activity_manager = self.context.get_system_service("activity")
        activity_manager.unregisterReceiver(receiver_id)

    def dispatch_broadcast(self, receiver_id: str, intent: Intent) -> None:
        receiver = self.receivers.get(receiver_id)
        if receiver is not None and receiver.intent_filter.matches(intent):
            receiver.on_receive(intent)

    # -- app services / providers ---------------------------------------------------

    def start_app_service(self, name: str,
                          intent: Optional[Intent] = None) -> AppService:
        service = self.app_services.get(name)
        if service is None:
            service = AppService(name, self)
            self.app_services[name] = service
        service.on_start_command(intent)
        return service

    def stop_app_service(self, name: str) -> bool:
        service = self.app_services.pop(name, None)
        if service is None:
            return False
        service.on_destroy()
        return True

    def publish_provider(self, authority: str) -> ContentProvider:
        provider = ContentProvider(authority, self)
        self.providers[authority] = provider
        return provider

    # -- configuration / connectivity callbacks ---------------------------------------

    def on_configuration_changed(self, config) -> None:
        for activity in self.activities.values():
            activity.on_configuration_changed(config)

    def __repr__(self) -> str:
        return (f"ActivityThread(package={self.package!r}, "
                f"pid={self.process.pid})")
