"""Notification and Toast parcelables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.android.app.intent import PendingIntent


@dataclass
class Notification:
    title: str
    text: str = ""
    icon: str = ""
    ongoing: bool = False
    content_intent: Optional[PendingIntent] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Notification):
            return NotImplemented
        return (self.title, self.text, self.icon, self.ongoing) == (
            other.title, other.text, other.icon, other.ongoing)

    def __repr__(self) -> str:
        return f"Notification(title={self.title!r})"


@dataclass
class Toast:
    text: str
    duration: str = "short"   # "short" | "long"
