"""Intents, PendingIntents, and broadcast receivers.

Intents are Android's messaging objects (paper §2).  Apps register
BroadcastReceivers with the ActivityManagerService; system services
broadcast Intents (connectivity changes, alarm expiry) that the AMS
routes to matching receivers.  PendingIntent identity matters: the
AlarmManager drop rules match on the ``operation`` PendingIntent, and two
PendingIntents compare equal when package, action, and request code all
match — mirroring Android's ``PendingIntent`` equality contract.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


class Intent:
    """A messaging object: action plus extras, optionally explicit."""

    def __init__(self, action: str, component: Optional[str] = None,
                 **extras: Any) -> None:
        self.action = action
        self.component = component   # explicit target package, when set
        self.extras: Dict[str, Any] = dict(extras)

    def put_extra(self, key: str, value: Any) -> "Intent":
        self.extras[key] = value
        return self

    def get_extra(self, key: str, default: Any = None) -> Any:
        return self.extras.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Intent):
            return NotImplemented
        return (self.action == other.action
                and self.component == other.component
                and self.extras == other.extras)

    def __hash__(self) -> int:
        return hash((self.action, self.component))

    def __repr__(self) -> str:
        return f"Intent(action={self.action!r}, component={self.component!r})"


@dataclass(frozen=True)
class IntentFilter:
    actions: Tuple[str, ...]

    def matches(self, intent: Intent) -> bool:
        return intent.action in self.actions


class PendingIntent:
    """A token allowing another process to fire an Intent as this app.

    Equality follows Android: same creator package, action, and request
    code are the *same* PendingIntent (this drives AlarmManager @if
    matching).
    """

    _ids = itertools.count(1)

    def __init__(self, creator_package: str, intent: Intent,
                 request_code: int = 0) -> None:
        self.token_id = next(self._ids)
        self.creator_package = creator_package
        self.intent = intent
        self.request_code = request_code

    def _identity(self) -> Tuple[str, str, int]:
        return (self.creator_package, self.intent.action, self.request_code)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PendingIntent):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    def __repr__(self) -> str:
        return (f"PendingIntent({self.creator_package!r}, "
                f"{self.intent.action!r}, rc={self.request_code})")


class BroadcastReceiver:
    """App-side listener for broadcast Intents."""

    _ids = itertools.count(1)

    def __init__(self, callback: Callable[[Intent], None],
                 intent_filter: IntentFilter,
                 owner_package: str = "") -> None:
        self.receiver_id = next(self._ids)
        self.callback = callback
        self.intent_filter = intent_filter
        self.owner_package = owner_package
        self.received: List[Intent] = []

    def on_receive(self, intent: Intent) -> None:
        self.received.append(intent)
        self.callback(intent)

    def __repr__(self) -> str:
        return (f"BroadcastReceiver(id={self.receiver_id}, "
                f"actions={self.intent_filter.actions})")


# Well-known broadcast actions used across the framework and tests.
ACTION_CONNECTIVITY_CHANGE = "android.net.conn.CONNECTIVITY_CHANGE"
ACTION_WIFI_STATE_CHANGED = "android.net.wifi.WIFI_STATE_CHANGED"
ACTION_BATTERY_LOW = "android.intent.action.BATTERY_LOW"
ACTION_AIRPLANE_MODE = "android.intent.action.AIRPLANE_MODE"
ACTION_CONFIGURATION_CHANGED = "android.intent.action.CONFIGURATION_CHANGED"
