"""Hardware profiles for the paper's evaluation devices."""

from repro.android.hardware.profiles import (
    ALL_PROFILES,
    NEXUS_4,
    NEXUS_5,
    NEXUS_7_2012,
    NEXUS_7_2013,
    PAPER_DEVICE_PAIRS,
    DeviceProfile,
    profile_by_name,
)

__all__ = [
    "ALL_PROFILES", "NEXUS_4", "NEXUS_5", "NEXUS_7_2012", "NEXUS_7_2013",
    "PAPER_DEVICE_PAIRS", "DeviceProfile", "profile_by_name",
]
