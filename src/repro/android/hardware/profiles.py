"""Device profiles for the paper's testbed.

Paper §4: a Nexus 4 phone (Snapdragon S4 Pro APQ8064, Adreno 320, 2 GB,
768x1280), a Nexus 7 (2012) tablet (Tegra 3, ULP GeForce, 1 GB,
1280x800, kernel 3.1, 2.4 GHz-only 802.11n on a congested campus band),
and Nexus 7 (2013) tablets (APQ8064, Adreno 320, 2 GB, 1920x1200,
kernel 3.4).

``cpu_factor`` scales CPU-bound stage costs (1.0 = Nexus 4 reference);
``wifi_effective_mbps`` is the achievable goodput on the paper's
congested campus WiFi, not the radio's nominal rate.  These constants
are the *model parameters* behind Figures 12-15; see EXPERIMENTS.md for
how they were calibrated against the published averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.android.graphics.surface import ScreenConfig
from repro.android.services.sensor import Sensor
from repro.sim import units


_STANDARD_SENSORS: Tuple[Sensor, ...] = (
    Sensor(1, "accelerometer", "BMI160 Accelerometer", 200),
    Sensor(2, "gyroscope", "BMI160 Gyroscope", 200),
    Sensor(3, "magnetometer", "AK8963 Magnetometer", 100),
    Sensor(4, "light", "APDS-9930 Light", 10),
    Sensor(5, "proximity", "APDS-9930 Proximity", 10),
)


@dataclass(frozen=True)
class DeviceProfile:
    name: str                      # short id, e.g. "nexus4"
    model: str                     # marketing name
    soc: str
    gpu_name: str
    ram_bytes: int
    screen: ScreenConfig
    kernel_version: str
    android_version: str
    api_level: int
    cpu_factor: float              # relative CPU speed, Nexus 4 == 1.0
    wifi_band: str                 # "2.4GHz" | "dual"
    wifi_effective_mbps: float     # congested-campus goodput
    sensors: Tuple[Sensor, ...] = _STANDARD_SENSORS
    location_providers: Tuple[str, ...] = ("gps", "network")
    has_vibrator: bool = True
    country: str = "US"
    stream_max_volumes: Optional[Dict[int, int]] = None
    framework_bytes: int = units.mb(215)   # core frameworks + libs (paper §4)
    default_ssid: str = "campus-wifi"

    @property
    def wifi_link_mbps(self) -> float:
        return self.wifi_effective_mbps

    def __str__(self) -> str:
        return f"{self.model} ({self.screen}, kernel {self.kernel_version})"


NEXUS_4 = DeviceProfile(
    name="nexus4",
    model="Nexus 4",
    soc="Qualcomm Snapdragon S4 Pro APQ8064",
    gpu_name="Adreno 320",
    ram_bytes=units.gb(2),
    screen=ScreenConfig(768, 1280, 320),
    kernel_version="3.4",
    android_version="4.4.2",
    api_level=19,
    cpu_factor=1.0,
    wifi_band="dual",
    wifi_effective_mbps=16.0,
)

NEXUS_7_2012 = DeviceProfile(
    name="nexus7",
    model="Nexus 7 (2012)",
    soc="NVIDIA Tegra 3 T30L",
    gpu_name="ULP GeForce",
    ram_bytes=units.gb(1),
    screen=ScreenConfig(1280, 800, 213),
    kernel_version="3.1",
    android_version="4.4.2",
    api_level=19,
    cpu_factor=0.65,
    wifi_band="2.4GHz",          # only the congested band (paper §4)
    wifi_effective_mbps=10.0,
    location_providers=("network",),   # no GPS on the WiFi Nexus 7
)

NEXUS_7_2013 = DeviceProfile(
    name="nexus7_2013",
    model="Nexus 7 (2013)",
    soc="Qualcomm Snapdragon S4 Pro APQ8064",
    gpu_name="Adreno 320",
    ram_bytes=units.gb(2),
    screen=ScreenConfig(1920, 1200, 323),
    kernel_version="3.4",
    android_version="4.4.2",
    api_level=19,
    cpu_factor=1.1,
    wifi_band="dual",
    wifi_effective_mbps=18.0,
)

# An 802.11ac device the paper mentions as the future (§4): used by the
# transfer-scaling ablation benchmark, not by the headline experiments.
NEXUS_5 = DeviceProfile(
    name="nexus5",
    model="Nexus 5",
    soc="Qualcomm Snapdragon 800",
    gpu_name="Adreno 330",
    ram_bytes=units.gb(2),
    screen=ScreenConfig(1080, 1920, 445),
    kernel_version="3.4",
    android_version="4.4.2",
    api_level=19,
    cpu_factor=1.4,
    wifi_band="dual",
    wifi_effective_mbps=80.0,   # 802.11ac
)


ALL_PROFILES: Tuple[DeviceProfile, ...] = (
    NEXUS_4, NEXUS_7_2012, NEXUS_7_2013, NEXUS_5)


# -- fleet-population variants ------------------------------------------------
#
# The placement engine only has interesting work to do when surfaces
# differ in *capability*, not just speed.  These variants model two
# multi-surface deployments the paper motivates (§1: surfaces around
# the user) without inventing new hardware: the same testbed devices,
# mounted or pocketed differently.

#: A Nexus 7 (2013) mounted as a wall display: motion sensors and
#: location are meaningless on a fixed surface (and the vibration motor
#: is disconnected), so apps that recorded those needs cannot land here.
NEXUS_7_WALL = replace(
    NEXUS_7_2013,
    name="nexus7_wall",
    model="Nexus 7 (2013) wall display",
    sensors=tuple(s for s in _STANDARD_SENSORS
                  if s.sensor_type in ("light", "proximity")),
    location_providers=(),
    has_vibrator=False,
)

#: A pocket-sized companion built from Nexus 4 internals: tiny screen
#: (full sensor suite, so motion apps fit — but big-screen apps do not).
NEXUS_4_POCKET = replace(
    NEXUS_4,
    name="nexus4_pocket",
    model="Nexus 4 pocket companion",
    screen=ScreenConfig(480, 800, 233),
    wifi_effective_mbps=12.0,
)

#: The population cycle fleet worlds draw devices from (experiments/
#: fleet.py assigns profile ``FLEET_PROFILE_CYCLE[i % len]`` to device
#: ``i``): the four testbed devices plus the two capability variants.
FLEET_PROFILE_CYCLE: Tuple[DeviceProfile, ...] = (
    NEXUS_4, NEXUS_7_2013, NEXUS_7_2012, NEXUS_5,
    NEXUS_7_WALL, NEXUS_4_POCKET)


def profile_by_name(name: str) -> DeviceProfile:
    for profile in ALL_PROFILES + FLEET_PROFILE_CYCLE:
        if profile.name == name:
            return profile
    raise KeyError(f"no device profile {name!r}")


# The four migration pairs evaluated in the paper (§4).
PAPER_DEVICE_PAIRS: Tuple[Tuple[DeviceProfile, DeviceProfile], ...] = (
    (NEXUS_7_2013, NEXUS_7_2013),   # same device type
    (NEXUS_4, NEXUS_7_2013),        # phone -> larger tablet
    (NEXUS_7_2012, NEXUS_7_2013),   # different GPU + kernel 3.1 -> 3.4
    (NEXUS_7_2012, NEXUS_4),        # tablet -> smaller phone
)
