"""Battery model.

Motivates the paper's scenario 3 ("switching to a different device when
the battery is running low", §1).  The battery drains on the virtual
clock at a base rate plus per-load contributions (screen, GPU, radio);
crossing the low threshold fires callbacks and a BATTERY_LOW broadcast
once per discharge cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


LOW_BATTERY_THRESHOLD = 0.15

#: Fractional drain per virtual hour, by load component.
BASE_DRAIN_PER_HOUR = 0.04
LOAD_DRAIN_PER_HOUR = {
    "screen": 0.08,
    "gpu": 0.15,
    "radio": 0.05,
    "cpu_burst": 0.10,
}


class Battery:
    """Lazy-evaluated battery state on a virtual clock."""

    def __init__(self, clock, level: float = 1.0,
                 check_interval: float = 30.0) -> None:
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"bad battery level {level!r}")
        self._clock = clock
        self._level = level
        self._last_update = clock.now
        self._loads: Dict[str, bool] = {"screen": True}
        self._low_callbacks: List[Callable[[float], None]] = []
        self._low_fired = level <= LOW_BATTERY_THRESHOLD
        self._check_interval = check_interval
        self._schedule_check()

    # -- level accounting ----------------------------------------------------

    @property
    def level(self) -> float:
        self._settle()
        return self._level

    @property
    def is_low(self) -> bool:
        return self.level <= LOW_BATTERY_THRESHOLD

    def drain_per_hour(self) -> float:
        rate = BASE_DRAIN_PER_HOUR
        for load, active in self._loads.items():
            if active:
                rate += LOAD_DRAIN_PER_HOUR.get(load, 0.0)
        return rate

    def _settle(self) -> None:
        now = self._clock.now
        elapsed_hours = (now - self._last_update) / 3600.0
        if elapsed_hours > 0:
            self._level = max(0.0,
                              self._level
                              - self.drain_per_hour() * elapsed_hours)
            self._last_update = now

    # -- loads ---------------------------------------------------------------

    def set_load(self, load: str, active: bool) -> None:
        self._settle()
        self._loads[load] = active

    def active_loads(self) -> List[str]:
        return sorted(l for l, a in self._loads.items() if a)

    # -- charge / discharge ----------------------------------------------------

    def set_level(self, level: float) -> None:
        """Direct set (tests, 'plugged in'); resets the low-fired latch
        when charged back above the threshold."""
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"bad battery level {level!r}")
        self._settle()
        self._level = level
        if level > LOW_BATTERY_THRESHOLD:
            self._low_fired = False

    # -- low-battery notification -------------------------------------------------

    def on_low(self, callback: Callable[[float], None]) -> None:
        self._low_callbacks.append(callback)

    def _schedule_check(self) -> None:
        self._clock.call_after(self._check_interval, self._check)

    def _check(self) -> None:
        self._settle()
        if self._level <= LOW_BATTERY_THRESHOLD and not self._low_fired:
            self._low_fired = True
            for callback in list(self._low_callbacks):
                callback(self._level)
        self._schedule_check()

    def __repr__(self) -> str:
        return f"Battery(level={self.level:.2f}, loads={self.active_loads()})"
