"""PackageManagerService: installed-app metadata.

Tracks real installs and Flux's *pseudo-installs* (paper §3.1): during
pairing the guest learns an app's metadata — permissions, components,
API level — without receiving the app's executable, creating the wrapper
app that migration later restores into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.android.services.base import ServiceContext, ServiceError, SystemService


@dataclass
class PackageInfo:
    package: str
    version_code: int
    api_level: int                 # minimum Android API the APK requires
    apk_size: int                  # bytes
    permissions: Tuple[str, ...] = ()
    multi_process: bool = False    # manifest requests multiple processes
    pseudo: bool = False           # Flux wrapper install (metadata only)

    def clone_as_pseudo(self) -> "PackageInfo":
        return PackageInfo(
            package=self.package, version_code=self.version_code,
            api_level=self.api_level, apk_size=self.apk_size,
            permissions=self.permissions, multi_process=self.multi_process,
            pseudo=True)


class PackageManagerService(SystemService):
    SERVICE_KEY = "package"
    DESCRIPTOR = "IPackageManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._packages: Dict[str, PackageInfo] = {}

    # -- installs ------------------------------------------------------------

    def install(self, info: PackageInfo) -> None:
        existing = self._packages.get(info.package)
        if existing is not None and not existing.pseudo:
            if existing.version_code > info.version_code:
                raise ServiceError(
                    f"{info.package}: downgrade from {existing.version_code} "
                    f"to {info.version_code} not allowed")
        self._packages[info.package] = info
        self.trace("install", package=info.package, pseudo=info.pseudo)

    def pseudo_install(self, info: PackageInfo) -> PackageInfo:
        """Pairing-time wrapper install: metadata only (paper §3.1)."""
        existing = self._packages.get(info.package)
        if existing is not None and not existing.pseudo:
            raise ServiceError(
                f"{info.package} natively installed; pseudo-install refused")
        pseudo = info.clone_as_pseudo()
        self._packages[info.package] = pseudo
        self.trace("pseudo-install", package=info.package)
        return pseudo

    def uninstall(self, package: str) -> None:
        if package not in self._packages:
            raise ServiceError(f"{package} not installed")
        del self._packages[package]

    # -- queries ------------------------------------------------------------------

    def is_installed(self, package: str) -> bool:
        return package in self._packages

    def is_pseudo(self, package: str) -> bool:
        info = self._packages.get(package)
        return info is not None and info.pseudo

    def get_package(self, package: str) -> PackageInfo:
        try:
            return self._packages[package]
        except KeyError:
            raise ServiceError(f"{package} not installed") from None

    def installed_packages(self, include_pseudo: bool = True) -> List[PackageInfo]:
        infos = sorted(self._packages.values(), key=lambda p: p.package)
        if not include_pseudo:
            infos = [p for p in infos if not p.pseudo]
        return infos

    def has_permission(self, package: str, permission: str) -> bool:
        info = self._packages.get(package)
        return info is not None and permission in info.permissions

    def total_apk_bytes(self, include_pseudo: bool = False) -> int:
        return sum(p.apk_size
                   for p in self.installed_packages(include_pseudo))
