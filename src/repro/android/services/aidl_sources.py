"""Decorated AIDL interface definitions for every Table 2 service.

These sources are the reproduction's equivalent of the paper's decorated
framework interfaces.  Our interfaces carry fewer methods than stock
Android (the paper's AudioService has 71; ours models the subset our
runtime exercises) but preserve the *structure* Table 2 reports: services
with larger interfaces take more decoration lines, hardware services are
listed separately from software services, and Bluetooth/Serial/Usb are
left undecorated ("TBD" in the paper's prototype, §3.2 Table 2).

``PAPER_TABLE2`` records the published numbers so the Table 2 experiment
can print paper-vs-ours side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one system service."""

    key: str                 # ServiceManager registration name
    interface: str           # AIDL descriptor
    hardware: bool           # Table 2 groups hardware vs software services
    paper_methods: int       # method count reported in Table 2
    paper_loc: Optional[int]  # decoration LOC in Table 2 (None == TBD)
    native: bool = False     # SensorService: hand-written native glue


SERVICE_SPECS: Tuple[ServiceSpec, ...] = (
    # -- hardware services ---------------------------------------------------
    ServiceSpec("audio", "IAudioService", True, 71, 150),
    ServiceSpec("bluetooth", "IBluetoothService", True, 202, None),
    ServiceSpec("camera", "ICameraManagerService", True, 8, 31),
    ServiceSpec("connectivity", "IConnectivityManagerService", True, 59, 26),
    ServiceSpec("country_detector", "ICountryDetectorService", True, 3, 5),
    ServiceSpec("input_method", "IInputMethodManagerService", True, 29, 37),
    ServiceSpec("input", "IInputManagerService", True, 15, 11),
    ServiceSpec("location", "ILocationManagerService", True, 13, 15),
    ServiceSpec("power", "IPowerManagerService", True, 19, 14),
    ServiceSpec("sensor", "ISensorService", True, 6, 94, native=True),
    ServiceSpec("serial", "ISerialService", True, 2, None),
    ServiceSpec("usb", "IUsbService", True, 19, None),
    ServiceSpec("vibrator", "IVibratorService", True, 4, 26),
    ServiceSpec("wifi", "IWifiService", True, 47, 54),
    # -- software services ---------------------------------------------------
    ServiceSpec("activity", "IActivityManagerService", False, 178, 130),
    ServiceSpec("alarm", "IAlarmManagerService", False, 4, 20),
    ServiceSpec("clipboard", "IClipboardService", False, 7, 6),
    ServiceSpec("keyguard", "IKeyguardService", False, 22, 16),
    ServiceSpec("notification", "INotificationManagerService", False, 14, 34),
    ServiceSpec("nsd", "INsdService", False, 2, 3),
    ServiceSpec("text_services", "ITextServicesManagerService", False, 9, 16),
    ServiceSpec("ui_mode", "IUiModeManagerService", False, 5, 9),
)


def spec_for(key: str) -> ServiceSpec:
    for spec in SERVICE_SPECS:
        if spec.key == key:
            return spec
    raise KeyError(f"no service spec {key!r}")


AIDL_SOURCES: Dict[str, str] = {}


AIDL_SOURCES["notification"] = """
interface INotificationManagerService {
    @record {
        @drop this;
        @if id;
    }
    void enqueueNotification(int id, Notification notification);

    @record {
        @drop this, enqueueNotification;
        @if id;
    }
    void cancelNotification(int id);

    @record {
        @drop this, enqueueNotification, cancelNotification;
    }
    void cancelAllNotifications();

    void enqueueToast(String text, String duration);
    void cancelToast(String text);

    @record {
        @drop this;
    }
    void setNotificationsEnabled(boolean enabled);

    boolean areNotificationsEnabled();

    int getActiveNotificationCount();
}
"""


AIDL_SOURCES["alarm"] = """
interface IAlarmManagerService {
    @record {
        @drop this;
        @if operation;
        @replayproxy \\
            flux.recordreplay.Proxies.alarmMgrSet;
    }
    void set(int type, long triggerAtTime, in PendingIntent operation);

    @record {
        @drop this, setRepeating;
        @if operation;
        @replayproxy \\
            flux.recordreplay.Proxies.alarmMgrSetRepeating;
    }
    void setRepeating(int type, long triggerAtTime, long interval,
                      in PendingIntent operation);

    @record {
        @drop this, set, setRepeating;
        @if operation;
    }
    void remove(in PendingIntent operation);

    void setTime(long millis);
}
"""


AIDL_SOURCES["sensor"] = """
interface ISensorService {
    Sensor[] getSensorList();

    boolean hasSensor(String sensorType);

    @record {
        @replayproxy \\
            flux.recordreplay.Proxies.sensorCreateConnection;
    }
    IBinder createSensorEventConnection();

    int getSensorPrivacyState();

    void setSensorPrivacy(boolean enabled);

    boolean isDataInjectionEnabled();
}

interface ISensorEventConnection {
    @record {
        @drop this, disableSensor;
        @if handle;
    }
    void enableSensor(int handle, int samplingRate);

    @record {
        @drop this, enableSensor;
        @if handle;
    }
    void disableSensor(int handle);

    @record {
        @replayproxy \\
            flux.recordreplay.Proxies.sensorGetChannel;
    }
    FileDescriptor getSensorChannel();

    void flush();

    void destroy();
}
"""


AIDL_SOURCES["audio"] = """
interface IAudioService {
    @record
    void adjustStreamVolume(int streamType, int direction, int flags);

    @record {
        @drop this, adjustStreamVolume;
        @if streamType;
        @replayproxy \\
            flux.recordreplay.Proxies.audioSetStreamVolume;
    }
    void setStreamVolume(int streamType, int index, int flags);

    @record {
        @drop this;
        @if streamType;
    }
    void setStreamMute(int streamType, boolean mute);

    int getStreamVolume(int streamType);
    int getStreamMaxVolume(int streamType);

    @record {
        @drop this;
    }
    void setRingerMode(int mode);

    int getRingerMode();

    @record {
        @drop this;
    }
    void setMode(int mode);

    int getMode();

    @record {
        @drop this;
    }
    void setSpeakerphoneOn(boolean on);

    boolean isSpeakerphoneOn();

    @record {
        @drop this;
    }
    void setMicrophoneMute(boolean on);

    boolean isMicrophoneMute();

    @record {
        @drop this, abandonAudioFocus;
        @if clientId;
    }
    int requestAudioFocus(String clientId, int streamType, int durationHint);

    @record {
        @drop this, requestAudioFocus;
        @if clientId;
    }
    int abandonAudioFocus(String clientId);

    @record
    void registerMediaButtonReceiver(in PendingIntent receiver);

    @record {
        @drop this, registerMediaButtonReceiver;
        @if receiver;
    }
    void unregisterMediaButtonReceiver(in PendingIntent receiver);

    @record {
        @drop this;
    }
    void setBluetoothScoOn(boolean on);

    boolean isBluetoothScoOn();
}
"""


AIDL_SOURCES["wifi"] = """
interface IWifiService {
    @record {
        @drop this;
    }
    void setWifiEnabled(boolean enabled);

    int getWifiState();

    void startScan();

    ScanResult[] getScanResults();

    WifiInfo getConnectionInfo();

    @record
    int addNetwork(in WifiConfiguration config);

    @record {
        @drop this, addNetwork, enableNetwork, disableNetwork;
        @if netId;
    }
    void removeNetwork(int netId);

    @record {
        @drop this, disableNetwork;
        @if netId;
    }
    void enableNetwork(int netId, boolean disableOthers);

    @record {
        @drop this, enableNetwork;
        @if netId;
    }
    void disableNetwork(int netId);

    @record {
        @drop this, releaseWifiLock;
        @if lockId;
    }
    void acquireWifiLock(String lockId, int lockMode);

    @record {
        @drop this, acquireWifiLock;
        @if lockId;
    }
    void releaseWifiLock(String lockId);

    void reconnect();
    void disconnect();
    boolean isScanAlwaysAvailable();
}
"""


AIDL_SOURCES["connectivity"] = """
interface IConnectivityManagerService {
    NetworkInfo getActiveNetworkInfo();
    NetworkInfo getNetworkInfo(int networkType);
    NetworkInfo[] getAllNetworkInfo();

    @record {
        @drop this;
    }
    void setAirplaneMode(boolean enabled);

    boolean isAirplaneModeOn();

    @record {
        @drop this, unregisterNetworkCallback;
        @if callbackId;
    }
    void registerNetworkCallback(String callbackId);

    @record {
        @drop this, registerNetworkCallback;
        @if callbackId;
    }
    void unregisterNetworkCallback(String callbackId);

    void reportBadNetwork(int networkType);
    boolean requestRouteToHost(int networkType, String host);
    boolean isNetworkSupported(int networkType);
}
"""


AIDL_SOURCES["location"] = """
interface ILocationManagerService {
    @record {
        @drop this;
        @if listenerId;
    }
    void requestLocationUpdates(String provider, long minTime,
                                float minDistance, String listenerId);

    @record {
        @drop this, requestLocationUpdates;
        @if listenerId;
    }
    void removeUpdates(String listenerId);

    Location getLastKnownLocation(String provider);

    @record {
        @drop this, removeGpsStatusListener;
        @if listenerId;
    }
    void addGpsStatusListener(String listenerId);

    @record {
        @drop this, addGpsStatusListener;
        @if listenerId;
    }
    void removeGpsStatusListener(String listenerId);

    String[] getProviders(boolean enabledOnly);
    boolean isProviderEnabled(String provider);
    String getBestProvider(boolean enabledOnly);
}
"""


AIDL_SOURCES["power"] = """
interface IPowerManagerService {
    @record {
        @drop this, releaseWakeLock;
        @if lockId;
    }
    void acquireWakeLock(String lockId, int flags, String tag);

    @record {
        @drop this, acquireWakeLock;
        @if lockId;
    }
    void releaseWakeLock(String lockId);

    void updateWakeLockWorkSource(String lockId, String workSource);

    boolean isScreenOn();

    void userActivity(long eventTime);

    void goToSleep(long eventTime);

    void wakeUp(long eventTime);

    @record {
        @drop this;
    }
    void setScreenBrightness(int brightness);

    int getScreenBrightness();
}
"""


AIDL_SOURCES["clipboard"] = """
interface IClipboardService {
    @record {
        @drop this;
    }
    void setPrimaryClip(in ClipData clip);

    ClipData getPrimaryClip();
    ClipDescription getPrimaryClipDescription();
    boolean hasPrimaryClip();

    @record {
        @drop this, removePrimaryClipChangedListener;
        @if listenerId;
    }
    void addPrimaryClipChangedListener(String listenerId);

    @record {
        @drop this, addPrimaryClipChangedListener;
        @if listenerId;
    }
    void removePrimaryClipChangedListener(String listenerId);

    boolean hasClipboardText();
}
"""


AIDL_SOURCES["vibrator"] = """
interface IVibratorService {
    @record {
        @drop this, vibratePattern, cancelVibrate;
    }
    void vibrate(long milliseconds);

    @record {
        @drop this, vibrate, cancelVibrate;
    }
    void vibratePattern(in long[] pattern, int repeat);

    @record {
        @drop this, vibrate, vibratePattern;
    }
    void cancelVibrate();

    boolean hasVibrator();
}
"""


AIDL_SOURCES["camera"] = """
interface ICameraManagerService {
    int getNumberOfCameras();
    CameraInfo getCameraInfo(int cameraId);

    @record {
        @drop this, disconnectCamera;
        @if cameraId;
    }
    void connectCamera(int cameraId);

    @record {
        @drop this, connectCamera;
        @if cameraId;
    }
    void disconnectCamera(int cameraId);

    @record {
        @drop this;
        @if cameraId;
    }
    void setTorchMode(int cameraId, boolean enabled);

    @record {
        @drop this, removeListener;
        @if listenerId;
    }
    void addListener(String listenerId);

    @record {
        @drop this, addListener;
        @if listenerId;
    }
    void removeListener(String listenerId);

    boolean supportsCameraApi(int cameraId, int apiVersion);
}
"""


AIDL_SOURCES["country_detector"] = """
interface ICountryDetectorService {
    Country detectCountry();

    @record {
        @drop this, removeCountryListener;
        @if listenerId;
    }
    void addCountryListener(String listenerId);

    @record {
        @drop this, addCountryListener;
        @if listenerId;
    }
    void removeCountryListener(String listenerId);
}
"""


AIDL_SOURCES["input_method"] = """
interface IInputMethodManagerService {
    InputMethodInfo[] getInputMethodList();
    InputMethodInfo[] getEnabledInputMethodList();

    @record {
        @drop this, hideSoftInput;
    }
    void showSoftInput(int flags);

    @record {
        @drop this, showSoftInput;
    }
    void hideSoftInput(int flags);

    @record {
        @drop this;
    }
    void setInputMethod(String id);

    String getCurrentInputMethod();

    void startInput(int clientId);
    void finishInput(int clientId);
    void windowGainedFocus(int clientId, int windowId);
    void updateStatusIcon(String packageName, int iconId);
}
"""


AIDL_SOURCES["input"] = """
interface IInputManagerService {
    InputDevice getInputDevice(int deviceId);
    int[] getInputDeviceIds();
    boolean hasKeys(int deviceId, in int[] keyCodes);
    boolean injectInputEvent(in InputEvent event, int mode);

    @record {
        @drop this, unregisterInputDevicesChangedListener;
        @if listenerId;
    }
    void registerInputDevicesChangedListener(String listenerId);

    @record {
        @drop this, registerInputDevicesChangedListener;
        @if listenerId;
    }
    void unregisterInputDevicesChangedListener(String listenerId);

    @record {
        @drop this;
    }
    void setPointerSpeed(int speed);

    int getPointerSpeed();
}
"""


# Undecorated in the paper's prototype (Table 2 marks their LOC "TBD").
AIDL_SOURCES["bluetooth"] = """
interface IBluetoothService {
    boolean isEnabled();
    boolean enable();
    boolean disable();
    String getAddress();
    String getName();
    boolean setName(String name);
    int getScanMode();
    boolean startDiscovery();
    boolean cancelDiscovery();
    boolean isDiscovering();
    BluetoothDevice[] getBondedDevices();
    boolean createBond(String address);
}
"""


AIDL_SOURCES["serial"] = """
interface ISerialService {
    String[] getSerialPorts();
    FileDescriptor openSerialPort(String port);
}
"""


AIDL_SOURCES["usb"] = """
interface IUsbService {
    UsbDevice[] getDeviceList();
    UsbAccessory[] getAccessoryList();
    FileDescriptor openDevice(String deviceName);
    FileDescriptor openAccessory(in UsbAccessory accessory);
    boolean hasDevicePermission(String deviceName);
    void requestDevicePermission(String deviceName, in PendingIntent pi);
    void setCurrentFunction(String function);
    boolean isFunctionEnabled(String function);
}
"""


AIDL_SOURCES["activity"] = """
interface IActivityManagerService {
    int startActivity(in Intent intent);
    void finishActivity(int activityToken);
    void moveTaskToFront(int taskId);
    void moveTaskToBack(int taskId);

    @record {
        @drop this, stopService;
        @if service;
    }
    ComponentName startService(in Intent service);

    @record {
        @drop this, startService;
        @if service;
    }
    int stopService(in Intent service);

    @record {
        @drop this, unbindService;
        @if connectionId;
    }
    boolean bindService(in Intent service, String connectionId, int flags);

    @record {
        @drop this, bindService;
        @if connectionId;
    }
    boolean unbindService(String connectionId);

    @record {
        @drop this, unregisterReceiver;
        @if receiverId;
    }
    Intent registerReceiver(String receiverId, in IntentFilter filter);

    @record {
        @drop this, registerReceiver;
        @if receiverId;
    }
    void unregisterReceiver(String receiverId);

    void broadcastIntent(in Intent intent);

    @record {
        @drop this;
        @if activityToken;
    }
    void setRequestedOrientation(int activityToken, int orientation);

    @record {
        @drop this, revokeUriPermission;
        @if uri;
    }
    void grantUriPermission(String targetPkg, String uri, int modeFlags);

    @record {
        @drop this, grantUriPermission;
        @if uri;
    }
    void revokeUriPermission(String uri, int modeFlags);

    RunningAppProcessInfo[] getRunningAppProcesses();
    MemoryInfo getMemoryInfo();
    RunningTaskInfo[] getTasks(int maxNum);
    void killBackgroundProcesses(String packageName);

    @record {
        @drop this;
        @if authority;
    }
    ContentProviderHolder getContentProvider(String authority);

    @record {
        @drop this, getContentProvider;
        @if authority;
    }
    void removeContentProvider(String authority);
    void reportActivityStatus(int activityToken, int status);
    Configuration getConfiguration();
}
"""


AIDL_SOURCES["keyguard"] = """
interface IKeyguardService {
    @record {
        @drop this;
    }
    void setKeyguardEnabled(boolean enabled);

    boolean isKeyguardLocked();
    boolean isKeyguardSecure();
    void dismissKeyguard();
    void doKeyguardTimeout();

    @record {
        @drop this, removeStateMonitorCallback;
        @if callbackId;
    }
    void addStateMonitorCallback(String callbackId);

    @record {
        @drop this, addStateMonitorCallback;
        @if callbackId;
    }
    void removeStateMonitorCallback(String callbackId);

    void verifyUnlock();
}
"""


AIDL_SOURCES["nsd"] = """
interface INsdService {
    Messenger getMessenger();

    @record {
        @drop this;
    }
    void setEnabled(boolean enabled);
}
"""


AIDL_SOURCES["text_services"] = """
interface ITextServicesManagerService {
    SpellCheckerInfo getCurrentSpellChecker();
    SpellCheckerSubtype getCurrentSpellCheckerSubtype();

    @record {
        @drop this;
    }
    void setCurrentSpellChecker(String id);

    @record {
        @drop this;
    }
    void setSpellCheckerSubtype(int hashCode);

    @record {
        @drop this;
    }
    void setSpellCheckerEnabled(boolean enabled);

    boolean isSpellCheckerEnabled();
}
"""


AIDL_SOURCES["ui_mode"] = """
interface IUiModeManagerService {
    @record {
        @drop this, disableCarMode;
    }
    void enableCarMode(int flags);

    @record {
        @drop this, enableCarMode;
    }
    void disableCarMode(int flags);

    int getCurrentModeType();

    @record {
        @drop this;
    }
    void setNightMode(int mode);

    int getNightMode();
}
"""


def all_sources() -> str:
    """Every service interface concatenated (for bulk compilation)."""
    return "\n".join(AIDL_SOURCES[spec.key] for spec in SERVICE_SPECS)
