"""AudioService: stream volumes, ringer mode, audio focus.

Stream volume is *device* state with a device-specific range (the paper's
volume-rescale example for ``@replayproxy``): the guest's maximum per
stream may differ from the home's, so replay goes through the
``audioSetStreamVolume`` proxy which rescales the index.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.app.intent import PendingIntent
from repro.android.services.base import ServiceContext, ServiceError, SystemService


# Stream types (subset of android.media.AudioManager).
STREAM_VOICE = 0
STREAM_SYSTEM = 1
STREAM_RING = 2
STREAM_MUSIC = 3
STREAM_ALARM = 4

RINGER_NORMAL = 2
RINGER_VIBRATE = 1
RINGER_SILENT = 0

AUDIOFOCUS_GRANTED = 1
AUDIOFOCUS_LOSS = -1


class AudioService(SystemService):
    SERVICE_KEY = "audio"
    DESCRIPTOR = "IAudioService"

    DEFAULT_MAX = {STREAM_VOICE: 5, STREAM_SYSTEM: 7, STREAM_RING: 7,
                   STREAM_MUSIC: 15, STREAM_ALARM: 7}

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        hw_max = getattr(ctx.hardware, "stream_max_volumes", None)
        self._max = dict(hw_max) if hw_max else dict(self.DEFAULT_MAX)
        self._volumes = {s: m // 2 for s, m in self._max.items()}
        self._muted: Dict[int, bool] = {}
        self._ringer_mode = RINGER_NORMAL
        self._mode = 0
        self._speakerphone = False
        self._mic_muted = False
        self._bt_sco = False
        self._focus_stack: List[str] = []      # clientIds, top = holder
        self._media_button_receivers: List[PendingIntent] = []

    # -- volume ------------------------------------------------------------------

    def adjustStreamVolume(self, caller, stream_type: int, direction: int,
                           flags: int) -> None:
        current = self.getStreamVolume(caller, stream_type)
        self.setStreamVolume(caller, stream_type, current + direction, flags)

    def setStreamVolume(self, caller, stream_type: int, index: int,
                        flags: int) -> None:
        maximum = self._max_of(stream_type)
        self._volumes[stream_type] = max(0, min(index, maximum))

    def setStreamMute(self, caller, stream_type: int, mute: bool) -> None:
        self._max_of(stream_type)
        self._muted[stream_type] = bool(mute)

    def getStreamVolume(self, caller, stream_type: int) -> int:
        self._max_of(stream_type)
        return self._volumes[stream_type]

    def getStreamMaxVolume(self, caller, stream_type: int) -> int:
        return self._max_of(stream_type)

    # -- modes ---------------------------------------------------------------------

    def setRingerMode(self, caller, mode: int) -> None:
        if mode not in (RINGER_NORMAL, RINGER_VIBRATE, RINGER_SILENT):
            raise ServiceError(f"bad ringer mode {mode!r}")
        self._ringer_mode = mode

    def getRingerMode(self, caller) -> int:
        return self._ringer_mode

    def setMode(self, caller, mode: int) -> None:
        self._mode = mode

    def getMode(self, caller) -> int:
        return self._mode

    def setSpeakerphoneOn(self, caller, on: bool) -> None:
        self._speakerphone = bool(on)

    def isSpeakerphoneOn(self, caller) -> bool:
        return self._speakerphone

    def setMicrophoneMute(self, caller, on: bool) -> None:
        self._mic_muted = bool(on)

    def isMicrophoneMute(self, caller) -> bool:
        return self._mic_muted

    def setBluetoothScoOn(self, caller, on: bool) -> None:
        self._bt_sco = bool(on)

    def isBluetoothScoOn(self, caller) -> bool:
        return self._bt_sco

    # -- audio focus ------------------------------------------------------------------

    def requestAudioFocus(self, caller, client_id: str, stream_type: int,
                          duration_hint: int) -> int:
        if client_id in self._focus_stack:
            self._focus_stack.remove(client_id)
        self._focus_stack.append(client_id)
        return AUDIOFOCUS_GRANTED

    def abandonAudioFocus(self, caller, client_id: str) -> int:
        if client_id in self._focus_stack:
            self._focus_stack.remove(client_id)
        return AUDIOFOCUS_GRANTED

    def focus_holder(self) -> Optional[str]:
        return self._focus_stack[-1] if self._focus_stack else None

    # -- media buttons -------------------------------------------------------------------

    def registerMediaButtonReceiver(self, caller,
                                    receiver: PendingIntent) -> None:
        if receiver not in self._media_button_receivers:
            self._media_button_receivers.append(receiver)

    def unregisterMediaButtonReceiver(self, caller,
                                      receiver: PendingIntent) -> None:
        if receiver in self._media_button_receivers:
            self._media_button_receivers.remove(receiver)

    # -- helpers -----------------------------------------------------------------------

    def _max_of(self, stream_type: int) -> int:
        try:
            return self._max[stream_type]
        except KeyError:
            raise ServiceError(f"unknown stream type {stream_type!r}") from None

    def snapshot(self, package: str) -> Dict[str, Any]:
        return {
            "volumes": dict(self._volumes),
            "ringer": self._ringer_mode,
            "focus_holder": self.focus_holder(),
            "media_buttons": len(self._media_button_receivers),
        }

    def volume_fraction(self, stream_type: int) -> float:
        """Volume as a fraction of max (used by the replay rescale proxy)."""
        return self._volumes[stream_type] / self._max_of(stream_type)
