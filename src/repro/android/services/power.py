"""PowerManagerService and VibratorService.

App-visible wakelocks are tracked per app and backed by the kernel
wakelock driver; their state migrates via record/replay (the kernel
driver itself carries no app state across migration, paper §3.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.services.base import ServiceContext, ServiceError, SystemService


class PowerManagerService(SystemService):
    SERVICE_KEY = "power"
    DESCRIPTOR = "IPowerManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._screen_on = True
        self._brightness = 128
        self._system_process = None   # set by device assembly

    def attach_system_process(self, process) -> None:
        self._system_process = process

    def new_app_state(self) -> Dict[str, Any]:
        return {"wakelocks": {}}

    # -- AIDL interface ------------------------------------------------------

    def acquireWakeLock(self, caller, lock_id: str, flags: int,
                        tag: str) -> None:
        package = self._package_of(caller)
        locks = self.app_state(package)["wakelocks"]
        if lock_id in locks:
            return   # re-acquire is a no-op, like reference-counted locks
        kernel_name = f"app:{package}:{lock_id}"
        self.ctx.kernel.wakelocks.acquire(self._holder_process(), kernel_name)
        locks[lock_id] = {"flags": flags, "tag": tag,
                          "kernel_name": kernel_name}

    def releaseWakeLock(self, caller, lock_id: str) -> None:
        package = self._package_of(caller)
        locks = self.app_state(package)["wakelocks"]
        entry = locks.pop(lock_id, None)
        if entry is None:
            raise ServiceError(f"wakelock {lock_id!r} not held by {package}")
        self.ctx.kernel.wakelocks.release(self._holder_process(),
                                          entry["kernel_name"])

    def updateWakeLockWorkSource(self, caller, lock_id: str,
                                 work_source: str) -> None:
        locks = self.app_state(caller)["wakelocks"]
        if lock_id not in locks:
            raise ServiceError(f"wakelock {lock_id!r} not held")
        locks[lock_id]["work_source"] = work_source

    def isScreenOn(self, caller) -> bool:
        return self._screen_on

    def userActivity(self, caller, event_time: float) -> None:
        self._screen_on = True

    def goToSleep(self, caller, event_time: float) -> None:
        self._screen_on = False

    def wakeUp(self, caller, event_time: float) -> None:
        self._screen_on = True

    def setScreenBrightness(self, caller, brightness: int) -> None:
        self._brightness = max(0, min(255, brightness))

    def getScreenBrightness(self, caller) -> int:
        return self._brightness

    # -- migration support --------------------------------------------------------

    def release_all_for(self, package: str) -> int:
        """Drop an app's wakelocks (after it migrated away)."""
        if not self.has_app_state(package):
            return 0
        locks = self.app_state(package)["wakelocks"]
        for entry in locks.values():
            try:
                self.ctx.kernel.wakelocks.release(self._holder_process(),
                                                  entry["kernel_name"])
            except Exception:
                pass
        count = len(locks)
        locks.clear()
        return count

    def _holder_process(self):
        if self._system_process is None:
            raise ServiceError("PowerManagerService has no system process")
        return self._system_process

    def snapshot(self, package: str) -> Dict[str, Any]:
        locks = self.app_state_or_default(package)["wakelocks"]
        return {"wakelocks": sorted(locks)}


class VibratorService(SystemService):
    SERVICE_KEY = "vibrator"
    DESCRIPTOR = "IVibratorService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._has_vibrator = bool(getattr(ctx.hardware, "has_vibrator", True))
        self._active_until: Optional[float] = None
        self._pattern: Optional[List[int]] = None

    # -- AIDL interface ------------------------------------------------------

    def vibrate(self, caller, milliseconds: int) -> None:
        self._require_hardware()
        self._active_until = self.ctx.clock.now + milliseconds / 1000.0
        self._pattern = None

    def vibratePattern(self, caller, pattern: List[int], repeat: int) -> None:
        self._require_hardware()
        self._pattern = list(pattern)
        total = sum(pattern) / 1000.0
        self._active_until = (None if repeat >= 0
                              else self.ctx.clock.now + total)

    def cancelVibrate(self, caller) -> None:
        self._active_until = None
        self._pattern = None

    def hasVibrator(self, caller) -> bool:
        return self._has_vibrator

    def is_vibrating(self) -> bool:
        if self._pattern is not None and self._active_until is None:
            return True   # repeating pattern
        return (self._active_until is not None
                and self.ctx.clock.now < self._active_until)

    def _require_hardware(self) -> None:
        if not self._has_vibrator:
            raise ServiceError("device has no vibrator")
