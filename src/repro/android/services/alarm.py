"""AlarmManagerService (paper §3.2's second worked example).

Alarms are scheduled on the kernel alarm driver; expiry broadcasts the
PendingIntent's Intent (explicitly targeted at the creator package) via
the service context.  Expired alarms leave the service state — but *not*
the record log, which is exactly why replay needs the ``alarmMgrSet``
proxy to skip alarms whose trigger time precedes the checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.android.app.intent import Intent, PendingIntent
from repro.android.services.base import ServiceContext, ServiceError, SystemService


@dataclass
class AlarmEntry:
    alarm_type: int
    trigger_at: float
    operation: PendingIntent
    interval: Optional[float] = None   # repeating alarms
    kernel_alarm_id: Optional[int] = None


class AlarmManagerService(SystemService):
    SERVICE_KEY = "alarm"
    DESCRIPTOR = "IAlarmManagerService"

    def new_app_state(self) -> Dict[str, Any]:
        return {"alarms": {}}   # PendingIntent -> AlarmEntry

    # -- AIDL interface ------------------------------------------------------

    def set(self, caller, alarm_type: int, trigger_at: float,
            operation: PendingIntent) -> None:
        self._set_common(caller, alarm_type, trigger_at, operation, None)

    def setRepeating(self, caller, alarm_type: int, trigger_at: float,
                     interval: float, operation: PendingIntent) -> None:
        if interval <= 0:
            raise ServiceError(f"bad repeat interval {interval!r}")
        self._set_common(caller, alarm_type, trigger_at, operation, interval)

    def remove(self, caller, operation: PendingIntent) -> None:
        state = self.app_state(caller)
        entry = state["alarms"].pop(operation, None)
        if entry is not None and entry.kernel_alarm_id is not None:
            try:
                self.ctx.kernel.alarm.cancel(entry.kernel_alarm_id)
            except Exception:
                pass   # already fired
        self.trace("remove", operation=repr(operation))

    def setTime(self, caller, millis: float) -> None:
        raise ServiceError("setTime requires the SET_TIME permission")

    # -- internals -----------------------------------------------------------------

    def _set_common(self, caller, alarm_type: int, trigger_at: float,
                    operation: PendingIntent,
                    interval: Optional[float]) -> None:
        package = self._package_of(caller)
        state = self.app_state(package)
        previous = state["alarms"].pop(operation, None)
        if previous is not None and previous.kernel_alarm_id is not None:
            try:
                self.ctx.kernel.alarm.cancel(previous.kernel_alarm_id)
            except Exception:
                pass
        entry = AlarmEntry(alarm_type=alarm_type, trigger_at=trigger_at,
                           operation=operation, interval=interval)
        self._schedule(package, entry)
        state["alarms"][operation] = entry
        self.trace("set", trigger_at=trigger_at, operation=repr(operation))

    def _schedule(self, package: str, entry: AlarmEntry) -> None:
        def fire() -> None:
            self._on_expiry(package, entry)

        kernel_alarm = self.ctx.kernel.alarm.set_alarm(entry.trigger_at, fire)
        entry.kernel_alarm_id = kernel_alarm.alarm_id

    def _on_expiry(self, package: str, entry: AlarmEntry) -> None:
        intent = entry.operation.intent
        if intent.component is None:
            intent = Intent(intent.action, component=package, **intent.extras)
        self.ctx.send_broadcast(intent)
        self.trace("expire", operation=repr(entry.operation))
        state = self.app_state(package)
        if entry.interval is not None:
            entry.trigger_at += entry.interval
            self._schedule(package, entry)
        else:
            state["alarms"].pop(entry.operation, None)

    # -- migration support ------------------------------------------------------------

    def cancel_all_for(self, package: str) -> int:
        """Cancel every kernel alarm an app still has armed.

        Called by the home device's post-migration cleanup: the app's
        alarms now live on the guest; leaving them armed here would fire
        them into a device the app has left.
        """
        if not self.has_app_state(package):
            return 0
        alarms = self.app_state(package)["alarms"]
        for entry in alarms.values():
            if entry.kernel_alarm_id is not None:
                try:
                    self.ctx.kernel.alarm.cancel(entry.kernel_alarm_id)
                except Exception:
                    pass
        count = len(alarms)
        alarms.clear()
        return count

    # -- verification support ---------------------------------------------------------

    def active_alarms(self, package: str) -> List[AlarmEntry]:
        if not self.has_app_state(package):
            return []
        return sorted(self.app_state(package)["alarms"].values(),
                      key=lambda e: e.trigger_at)

    def snapshot(self, package: str) -> Dict[str, Any]:
        return {
            "alarms": [(e.operation.intent.action, e.trigger_at, e.interval)
                       for e in self.active_alarms(package)],
        }
