"""Smaller hardware services: Camera, CountryDetector, Input,
InputMethod, Bluetooth, Serial, Usb.

Bluetooth, Serial, and Usb match the paper's prototype in being
*undecorated* (Table 2 lists their LOC as TBD): calls to them are not
recorded, so their app-visible state does not migrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.android.app.intent import PendingIntent
from repro.android.binder.parcel import FdToken
from repro.android.kernel.files import OpenFile
from repro.android.services.base import ServiceContext, ServiceError, SystemService


@dataclass(frozen=True)
class CameraInfo:
    camera_id: int
    facing: str           # "back" | "front"
    megapixels: float


class CameraManagerService(SystemService):
    SERVICE_KEY = "camera"
    DESCRIPTOR = "ICameraManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._cameras: List[CameraInfo] = list(
            getattr(ctx.hardware, "cameras", None)
            or [CameraInfo(0, "back", 8.0), CameraInfo(1, "front", 1.2)])
        self._torch: Dict[int, bool] = {}
        self._connected_by: Dict[int, str] = {}   # camera -> package

    def new_app_state(self) -> Dict[str, Any]:
        return {"connected": [], "listeners": []}

    def getNumberOfCameras(self, caller) -> int:
        return len(self._cameras)

    def getCameraInfo(self, caller, camera_id: int) -> CameraInfo:
        self._check_camera(camera_id)
        return self._cameras[camera_id]

    def connectCamera(self, caller, camera_id: int) -> None:
        self._check_camera(camera_id)
        package = self._package_of(caller)
        holder = self._connected_by.get(camera_id)
        if holder is not None and holder != package:
            raise ServiceError(f"camera {camera_id} in use by {holder}")
        self._connected_by[camera_id] = package
        connected = self.app_state(package)["connected"]
        if camera_id not in connected:
            connected.append(camera_id)

    def disconnectCamera(self, caller, camera_id: int) -> None:
        package = self._package_of(caller)
        if self._connected_by.get(camera_id) == package:
            del self._connected_by[camera_id]
        connected = self.app_state(package)["connected"]
        if camera_id in connected:
            connected.remove(camera_id)

    def setTorchMode(self, caller, camera_id: int, enabled: bool) -> None:
        self._check_camera(camera_id)
        self._torch[camera_id] = bool(enabled)
        self.app_state(caller)     # torch use is app-visible state

    def addListener(self, caller, listener_id: str) -> None:
        listeners = self.app_state(caller)["listeners"]
        if listener_id not in listeners:
            listeners.append(listener_id)

    def removeListener(self, caller, listener_id: str) -> None:
        listeners = self.app_state(caller)["listeners"]
        if listener_id in listeners:
            listeners.remove(listener_id)

    def supportsCameraApi(self, caller, camera_id: int,
                          api_version: int) -> bool:
        self._check_camera(camera_id)
        return api_version <= 2

    def release_all_for(self, package: str) -> None:
        for camera_id, holder in list(self._connected_by.items()):
            if holder == package:
                del self._connected_by[camera_id]

    def _check_camera(self, camera_id: int) -> None:
        if not 0 <= camera_id < len(self._cameras):
            raise ServiceError(f"no camera {camera_id}")

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {"connected": sorted(state["connected"]),
                "listeners": sorted(state["listeners"]),
                "torch": dict(self._torch)}


class CountryDetectorService(SystemService):
    SERVICE_KEY = "country_detector"
    DESCRIPTOR = "ICountryDetectorService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self.country = getattr(ctx.hardware, "country", "US")

    def new_app_state(self) -> Dict[str, Any]:
        return {"listeners": []}

    def detectCountry(self, caller) -> str:
        return self.country

    def addCountryListener(self, caller, listener_id: str) -> None:
        listeners = self.app_state(caller)["listeners"]
        if listener_id not in listeners:
            listeners.append(listener_id)

    def removeCountryListener(self, caller, listener_id: str) -> None:
        listeners = self.app_state(caller)["listeners"]
        if listener_id in listeners:
            listeners.remove(listener_id)

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {"listeners": sorted(state["listeners"])}


@dataclass(frozen=True)
class InputDevice:
    device_id: int
    name: str
    is_touchscreen: bool = True


class InputManagerService(SystemService):
    SERVICE_KEY = "input"
    DESCRIPTOR = "IInputManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._devices = [InputDevice(0, "touchscreen"),
                         InputDevice(1, "buttons", is_touchscreen=False)]
        self._pointer_speed = 0
        self.injected_events: List[Any] = []

    def new_app_state(self) -> Dict[str, Any]:
        return {"listeners": []}

    def getInputDevice(self, caller, device_id: int) -> Optional[InputDevice]:
        for device in self._devices:
            if device.device_id == device_id:
                return device
        return None

    def getInputDeviceIds(self, caller) -> List[int]:
        return [d.device_id for d in self._devices]

    def hasKeys(self, caller, device_id: int, key_codes: List[int]) -> bool:
        return device_id == 1

    def injectInputEvent(self, caller, event: Any, mode: int) -> bool:
        self.injected_events.append(event)
        return True

    def registerInputDevicesChangedListener(self, caller,
                                            listener_id: str) -> None:
        listeners = self.app_state(caller)["listeners"]
        if listener_id not in listeners:
            listeners.append(listener_id)

    def unregisterInputDevicesChangedListener(self, caller,
                                              listener_id: str) -> None:
        listeners = self.app_state(caller)["listeners"]
        if listener_id in listeners:
            listeners.remove(listener_id)

    def setPointerSpeed(self, caller, speed: int) -> None:
        self._pointer_speed = max(-7, min(7, speed))

    def getPointerSpeed(self, caller) -> int:
        return self._pointer_speed

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {"listeners": sorted(state["listeners"]),
                "pointer_speed": self._pointer_speed}


@dataclass(frozen=True)
class InputMethodInfo:
    ime_id: str
    label: str


class InputMethodManagerService(SystemService):
    SERVICE_KEY = "input_method"
    DESCRIPTOR = "IInputMethodManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._imes = [InputMethodInfo("com.android.latin", "LatinIME")]
        self._current = self._imes[0].ime_id
        self._soft_input_shown = False

    def getInputMethodList(self, caller) -> List[InputMethodInfo]:
        return list(self._imes)

    def getEnabledInputMethodList(self, caller) -> List[InputMethodInfo]:
        return list(self._imes)

    def showSoftInput(self, caller, flags: int) -> None:
        self._soft_input_shown = True

    def hideSoftInput(self, caller, flags: int) -> None:
        self._soft_input_shown = False

    def setInputMethod(self, caller, ime_id: str) -> None:
        if ime_id not in {i.ime_id for i in self._imes}:
            raise ServiceError(f"no input method {ime_id!r}")
        self._current = ime_id

    def getCurrentInputMethod(self, caller) -> str:
        return self._current

    def startInput(self, caller, client_id: int) -> None:
        pass

    def finishInput(self, caller, client_id: int) -> None:
        pass

    def windowGainedFocus(self, caller, client_id: int,
                          window_id: int) -> None:
        pass

    def updateStatusIcon(self, caller, package_name: str,
                         icon_id: int) -> None:
        pass

    @property
    def soft_input_shown(self) -> bool:
        return self._soft_input_shown

    def snapshot(self, package: str) -> Dict[str, Any]:
        return {"soft_input_shown": self._soft_input_shown}


class BluetoothService(SystemService):
    SERVICE_KEY = "bluetooth"
    DESCRIPTOR = "IBluetoothService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._enabled = False
        self._name = getattr(ctx.hardware, "model", "android")
        self._discovering = False
        self._bonded: List[str] = []

    def isEnabled(self, caller) -> bool:
        return self._enabled

    def enable(self, caller) -> bool:
        self._enabled = True
        return True

    def disable(self, caller) -> bool:
        self._enabled = False
        self._discovering = False
        return True

    def getAddress(self, caller) -> str:
        return "00:11:22:33:44:55"

    def getName(self, caller) -> str:
        return self._name

    def setName(self, caller, name: str) -> bool:
        self._name = name
        return True

    def getScanMode(self, caller) -> int:
        return 1 if self._enabled else 0

    def startDiscovery(self, caller) -> bool:
        if not self._enabled:
            return False
        self._discovering = True
        return True

    def cancelDiscovery(self, caller) -> bool:
        self._discovering = False
        return True

    def isDiscovering(self, caller) -> bool:
        return self._discovering

    def getBondedDevices(self, caller) -> List[str]:
        return list(self._bonded)

    def createBond(self, caller, address: str) -> bool:
        if address not in self._bonded:
            self._bonded.append(address)
        return True


class SerialService(SystemService):
    SERVICE_KEY = "serial"
    DESCRIPTOR = "ISerialService"

    def getSerialPorts(self, caller) -> List[str]:
        return []

    def openSerialPort(self, caller, port: str) -> FdToken:
        raise ServiceError(f"no serial port {port!r}")


class UsbService(SystemService):
    SERVICE_KEY = "usb"
    DESCRIPTOR = "IUsbService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._function = "mtp"

    def getDeviceList(self, caller) -> List[Any]:
        return []

    def getAccessoryList(self, caller) -> List[Any]:
        return []

    def openDevice(self, caller, device_name: str) -> FdToken:
        raise ServiceError(f"no usb device {device_name!r}")

    def openAccessory(self, caller, accessory: Any) -> FdToken:
        raise ServiceError("no usb accessory attached")

    def hasDevicePermission(self, caller, device_name: str) -> bool:
        return False

    def requestDevicePermission(self, caller, device_name: str,
                                pi: PendingIntent) -> None:
        pass

    def setCurrentFunction(self, caller, function: str) -> None:
        self._function = function

    def isFunctionEnabled(self, caller, function: str) -> bool:
        return function == self._function
