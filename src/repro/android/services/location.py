"""LocationManagerService.

Providers come from the hardware profile (a tablet without GPS exposes
only the network provider); Adaptive Replay's hardware-absence path
(paper §3.2: "should the guest device not contain hardware that was
previously in use, e.g. GPS") rewrites provider arguments on replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.android.services.base import ServiceContext, ServiceError, SystemService


GPS_PROVIDER = "gps"
NETWORK_PROVIDER = "network"


@dataclass
class Location:
    provider: str
    latitude: float
    longitude: float
    accuracy_m: float
    time: float


@dataclass
class LocationRequest:
    provider: str
    min_time: float
    min_distance: float
    listener_id: str


class LocationManagerService(SystemService):
    SERVICE_KEY = "location"
    DESCRIPTOR = "ILocationManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._providers = list(
            getattr(ctx.hardware, "location_providers", None)
            or [GPS_PROVIDER, NETWORK_PROVIDER])
        self._enabled = {p: True for p in self._providers}
        self._last_known: Dict[str, Location] = {}
        # provider -> remote LocationManagerService (gps_tether extension)
        self._tethered: Dict[str, "LocationManagerService"] = {}

    def new_app_state(self) -> Dict[str, Any]:
        return {"requests": {}, "gps_listeners": []}

    # -- AIDL interface ------------------------------------------------------

    def requestLocationUpdates(self, caller, provider: str, min_time: float,
                               min_distance: float, listener_id: str) -> None:
        self._check_provider(provider)
        self.app_state(caller)["requests"][listener_id] = LocationRequest(
            provider=provider, min_time=min_time, min_distance=min_distance,
            listener_id=listener_id)

    def removeUpdates(self, caller, listener_id: str) -> None:
        self.app_state(caller)["requests"].pop(listener_id, None)

    def getLastKnownLocation(self, caller, provider: str) -> Optional[Location]:
        self._check_provider(provider)
        remote = self._tethered.get(provider)
        if remote is not None:
            return remote._last_known.get(provider)
        return self._last_known.get(provider)

    def addGpsStatusListener(self, caller, listener_id: str) -> None:
        if GPS_PROVIDER not in self._providers:
            raise ServiceError("device has no GPS hardware")
        listeners = self.app_state(caller)["gps_listeners"]
        if listener_id not in listeners:
            listeners.append(listener_id)

    def removeGpsStatusListener(self, caller, listener_id: str) -> None:
        listeners = self.app_state(caller)["gps_listeners"]
        if listener_id in listeners:
            listeners.remove(listener_id)

    def getProviders(self, caller, enabled_only: bool) -> List[str]:
        if not enabled_only:
            return list(self._providers)
        return [p for p in self._providers if self._enabled[p]]

    def isProviderEnabled(self, caller, provider: str) -> bool:
        return self._enabled.get(provider, False)

    def getBestProvider(self, caller, enabled_only: bool) -> Optional[str]:
        providers = self.getProviders(caller, enabled_only)
        if GPS_PROVIDER in providers:
            return GPS_PROVIDER
        return providers[0] if providers else None

    # -- hardware-side API ------------------------------------------------------

    def report_fix(self, provider: str, latitude: float, longitude: float,
                   accuracy_m: float = 10.0) -> Location:
        self._check_provider(provider)
        location = Location(provider=provider, latitude=latitude,
                            longitude=longitude, accuracy_m=accuracy_m,
                            time=self.ctx.clock.now)
        self._last_known[provider] = location
        return location

    def has_provider(self, provider: str) -> bool:
        return provider in self._providers

    def attach_tethered_provider(self, provider: str,
                                 remote: "LocationManagerService") -> None:
        """gps_tether extension (paper §3.2): serve ``provider`` by
        forwarding to the home device's location service over the
        network instead of local hardware."""
        if provider not in self._providers:
            self._providers.append(provider)
            self._enabled[provider] = True
        self._tethered[provider] = remote
        self.trace("tether", provider=provider)

    def is_tethered(self, provider: str) -> bool:
        return provider in self._tethered

    def _check_provider(self, provider: str) -> None:
        if provider not in self._providers:
            raise ServiceError(f"no location provider {provider!r}")

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {
            "requests": sorted(
                (r.listener_id, r.provider)
                for r in state["requests"].values()),
            "gps_listeners": sorted(state["gps_listeners"]),
        }
