"""ClipboardService."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.services.base import ServiceContext, SystemService


class ClipboardService(SystemService):
    SERVICE_KEY = "clipboard"
    DESCRIPTOR = "IClipboardService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._primary_clip: Optional[Dict[str, Any]] = None

    def new_app_state(self) -> Dict[str, Any]:
        return {"listeners": []}

    # -- AIDL interface ------------------------------------------------------

    def setPrimaryClip(self, caller, clip: Dict[str, Any]) -> None:
        self._primary_clip = dict(clip)

    def getPrimaryClip(self, caller) -> Optional[Dict[str, Any]]:
        return dict(self._primary_clip) if self._primary_clip else None

    def getPrimaryClipDescription(self, caller) -> Optional[Dict[str, Any]]:
        if self._primary_clip is None:
            return None
        return {"mime": "text/plain" if "text" in self._primary_clip
                else "application/octet-stream"}

    def hasPrimaryClip(self, caller) -> bool:
        return self._primary_clip is not None

    def addPrimaryClipChangedListener(self, caller, listener_id: str) -> None:
        listeners = self.app_state(caller)["listeners"]
        if listener_id not in listeners:
            listeners.append(listener_id)

    def removePrimaryClipChangedListener(self, caller,
                                         listener_id: str) -> None:
        listeners = self.app_state(caller)["listeners"]
        if listener_id in listeners:
            listeners.remove(listener_id)

    def hasClipboardText(self, caller) -> bool:
        return bool(self._primary_clip and self._primary_clip.get("text"))

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {"listeners": sorted(state["listeners"])}
