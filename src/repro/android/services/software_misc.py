"""Smaller software services: Keyguard, Nsd, TextServices, UiMode."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.services.base import ServiceContext, ServiceError, SystemService


class KeyguardService(SystemService):
    SERVICE_KEY = "keyguard"
    DESCRIPTOR = "IKeyguardService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._enabled = True
        self._locked = False
        self._secure = False

    def new_app_state(self) -> Dict[str, Any]:
        return {"callbacks": []}

    def setKeyguardEnabled(self, caller, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def isKeyguardLocked(self, caller) -> bool:
        return self._locked

    def isKeyguardSecure(self, caller) -> bool:
        return self._secure

    def dismissKeyguard(self, caller) -> None:
        self._locked = False

    def doKeyguardTimeout(self, caller) -> None:
        if self._enabled:
            self._locked = True

    def addStateMonitorCallback(self, caller, callback_id: str) -> None:
        callbacks = self.app_state(caller)["callbacks"]
        if callback_id not in callbacks:
            callbacks.append(callback_id)

    def removeStateMonitorCallback(self, caller, callback_id: str) -> None:
        callbacks = self.app_state(caller)["callbacks"]
        if callback_id in callbacks:
            callbacks.remove(callback_id)

    def verifyUnlock(self, caller) -> None:
        pass

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {"callbacks": sorted(state["callbacks"])}


class NsdService(SystemService):
    SERVICE_KEY = "nsd"
    DESCRIPTOR = "INsdService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._enabled = True

    def getMessenger(self, caller) -> str:
        return "nsd-messenger"

    def setEnabled(self, caller, enabled: bool) -> None:
        self._enabled = bool(enabled)

    @property
    def enabled(self) -> bool:
        return self._enabled


class TextServicesManagerService(SystemService):
    SERVICE_KEY = "text_services"
    DESCRIPTOR = "ITextServicesManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._spell_checker = "com.android.spellchecker"
        self._subtype = 0
        self._enabled = True

    def getCurrentSpellChecker(self, caller) -> str:
        return self._spell_checker

    def getCurrentSpellCheckerSubtype(self, caller) -> int:
        return self._subtype

    def setCurrentSpellChecker(self, caller, checker_id: str) -> None:
        self._spell_checker = checker_id

    def setSpellCheckerSubtype(self, caller, hash_code: int) -> None:
        self._subtype = hash_code

    def setSpellCheckerEnabled(self, caller, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def isSpellCheckerEnabled(self, caller) -> bool:
        return self._enabled


class UiModeManagerService(SystemService):
    SERVICE_KEY = "ui_mode"
    DESCRIPTOR = "IUiModeManagerService"

    MODE_TYPE_NORMAL = 1
    MODE_TYPE_CAR = 3
    NIGHT_AUTO = 0
    NIGHT_NO = 1
    NIGHT_YES = 2

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._mode_type = self.MODE_TYPE_NORMAL
        self._night_mode = self.NIGHT_NO

    def enableCarMode(self, caller, flags: int) -> None:
        self._mode_type = self.MODE_TYPE_CAR

    def disableCarMode(self, caller, flags: int) -> None:
        self._mode_type = self.MODE_TYPE_NORMAL

    def getCurrentModeType(self, caller) -> int:
        return self._mode_type

    def setNightMode(self, caller, mode: int) -> None:
        if mode not in (self.NIGHT_AUTO, self.NIGHT_NO, self.NIGHT_YES):
            raise ServiceError(f"bad night mode {mode!r}")
        self._night_mode = mode

    def getNightMode(self, caller) -> int:
        return self._night_mode

    def snapshot(self, package: str) -> Dict[str, Any]:
        return {"mode_type": self._mode_type, "night_mode": self._night_mode}
