"""NotificationManagerService (paper §3.2's first worked example)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.app.notification import Notification, Toast
from repro.android.services.base import ServiceContext, ServiceError, SystemService


class NotificationManagerService(SystemService):
    SERVICE_KEY = "notification"
    DESCRIPTOR = "INotificationManagerService"

    def new_app_state(self) -> Dict[str, Any]:
        return {"active": {}, "toasts": [], "enabled": True}

    # -- AIDL interface ------------------------------------------------------

    def enqueueNotification(self, caller, notification_id: int,
                            notification: Notification) -> None:
        state = self.app_state(caller)
        if not state["enabled"]:
            raise ServiceError(
                f"notifications disabled for {self._package_of(caller)}")
        state["active"][notification_id] = notification
        self.trace("enqueue", id=notification_id, title=notification.title)

    def cancelNotification(self, caller, notification_id: int) -> None:
        state = self.app_state(caller)
        state["active"].pop(notification_id, None)
        self.trace("cancel", id=notification_id)

    def cancelAllNotifications(self, caller) -> None:
        self.app_state(caller)["active"].clear()

    def enqueueToast(self, caller, text: str, duration: str) -> None:
        self.app_state(caller)["toasts"].append(Toast(text, duration))

    def cancelToast(self, caller, text: str) -> None:
        state = self.app_state(caller)
        state["toasts"] = [t for t in state["toasts"] if t.text != text]

    def setNotificationsEnabled(self, caller, enabled: bool) -> None:
        self.app_state(caller)["enabled"] = bool(enabled)

    def areNotificationsEnabled(self, caller) -> bool:
        return self.app_state(caller)["enabled"]

    def getActiveNotificationCount(self, caller) -> int:
        return len(self.app_state(caller)["active"])

    # -- verification support ---------------------------------------------------

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {
            "active": {nid: (n.title, n.text)
                       for nid, n in sorted(state["active"].items())},
            "enabled": state["enabled"],
        }
