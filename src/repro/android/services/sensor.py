"""SensorService and SensorEventConnection (paper §3.2's third example).

``createSensorEventConnection`` hands the app a *new binder object* with
an interface of its own, and ``getSensorChannel`` hands it a unix-domain
socket — the two kinds of returned handles whose identities must survive
migration via ``@replayproxy`` methods (sensorCreateConnection and
sensorGetChannel).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.android.binder.ibinder import CallerAwareBinder, IBinder
from repro.android.binder.parcel import FdToken
from repro.android.kernel.files import UnixSocket
from repro.android.services.base import ServiceContext, ServiceError, SystemService


@dataclass(frozen=True)
class Sensor:
    handle: int
    sensor_type: str         # "accelerometer", "gyroscope", ...
    name: str
    max_rate_hz: int


class SensorEventConnection(CallerAwareBinder):
    """Per-app event channel; a binder node of its own."""

    DESCRIPTOR = "ISensorEventConnection"
    _ids = itertools.count(1)

    def __init__(self, service: "SensorService", package: str) -> None:
        super().__init__()
        self.connection_id = next(self._ids)
        self.service = service
        self.package = package
        self.enabled_sensors: Dict[int, int] = {}   # handle -> rate
        self.service_socket: Optional[UnixSocket] = None
        self.client_fd: Optional[int] = None
        self.destroyed = False

    # -- AIDL interface ------------------------------------------------------

    def enableSensor(self, caller, handle: int, sampling_rate: int) -> None:
        self._check_alive()
        sensor = self.service.sensor_by_handle(handle)
        if sensor is None:
            raise ServiceError(f"no sensor with handle {handle}")
        rate = min(sampling_rate, sensor.max_rate_hz)
        self.enabled_sensors[handle] = rate

    def disableSensor(self, caller, handle: int) -> None:
        self._check_alive()
        self.enabled_sensors.pop(handle, None)

    def getSensorChannel(self, caller) -> FdToken:
        """Create the event socket pair; client end lands in caller's fds."""
        self._check_alive()
        if self.service_socket is not None:
            raise ServiceError(
                f"connection {self.connection_id} already has a channel")
        service_end, client_end = UnixSocket.pair(
            label=f"sensor-events:{self.package}")
        self.service_socket = service_end
        self.client_fd = caller.fds.install(client_end)
        return FdToken(self.client_fd)

    def flush(self, caller) -> None:
        self._check_alive()

    def destroy(self, caller) -> None:
        self.destroyed = True
        self.enabled_sensors.clear()
        if self.service_socket is not None:
            self.service_socket.close()

    # -- event delivery (driven by hardware simulation) ---------------------------

    def deliver(self, handle: int, payload: bytes) -> bool:
        if self.destroyed or handle not in self.enabled_sensors:
            return False
        if self.service_socket is None:
            return False
        self.service_socket.send(payload)
        return True

    def _check_alive(self) -> None:
        if self.destroyed:
            raise ServiceError(f"connection {self.connection_id} destroyed")


class SensorService(SystemService):
    SERVICE_KEY = "sensor"
    DESCRIPTOR = "ISensorService"

    def __init__(self, ctx: ServiceContext, system_process) -> None:
        super().__init__(ctx)
        self._system_process = system_process
        self._sensors: List[Sensor] = list(
            getattr(ctx.hardware, "sensors", ()) or ())
        self._privacy_enabled = False
        self.connections: List[SensorEventConnection] = []

    def new_app_state(self) -> Dict[str, Any]:
        return {"connections": []}

    # -- AIDL interface ------------------------------------------------------

    def getSensorList(self, caller) -> List[Sensor]:
        return list(self._sensors)

    def hasSensor(self, caller, sensor_type: str) -> bool:
        return any(s.sensor_type == sensor_type for s in self._sensors)

    def createSensorEventConnection(self, caller) -> IBinder:
        return self.create_connection_for(caller)

    def create_connection_for(self, caller,
                              at_handle: Optional[int] = None) -> IBinder:
        """Create a connection; ``at_handle`` pins the client handle id.

        The pinned form is what the ``sensorCreateConnection`` replay
        proxy uses so the restored app keeps seeing the handle it held
        on the home device (paper §3.2).
        """
        package = self._package_of(caller)
        connection = SensorEventConnection(self, package)
        driver = self.ctx.kernel.binder
        node = driver.create_node(self._system_process, connection,
                                  f"sensor-connection:{connection.connection_id}",
                                  system_service=True)
        connection.attach_node(node)
        if at_handle is None:
            handle = driver.acquire_ref(caller, node)
        else:
            driver.inject_ref(caller, at_handle, node)
            handle = at_handle
        self.connections.append(connection)
        self.app_state(package)["connections"].append(connection)
        self.trace("create-connection", package=package,
                   connection=connection.connection_id, handle=handle)
        return IBinder(driver, caller, handle)

    def getSensorPrivacyState(self, caller) -> int:
        return 1 if self._privacy_enabled else 0

    def setSensorPrivacy(self, caller, enabled: bool) -> None:
        self._privacy_enabled = bool(enabled)

    def isDataInjectionEnabled(self, caller) -> bool:
        return False

    # -- hardware-side API ------------------------------------------------------

    def sensor_by_handle(self, handle: int) -> Optional[Sensor]:
        for sensor in self._sensors:
            if sensor.handle == handle:
                return sensor
        return None

    def inject_event(self, handle: int, payload: bytes) -> int:
        """Hardware pushes an event; returns delivery count."""
        delivered = 0
        for connection in self.connections:
            if connection.deliver(handle, payload):
                delivered += 1
        return delivered

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        live = [c for c in state["connections"] if not c.destroyed]
        return {
            "connections": len(live),
            "enabled": sorted(
                (handle, rate)
                for c in live for handle, rate in c.enabled_sensors.items()),
        }
