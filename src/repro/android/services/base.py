"""System-service base machinery.

Every system service lives in the ``system_server`` process, keeps
app-specific state keyed by package name, and serves Binder transactions
through its generated AIDL stub.  Services receive a shared
:class:`ServiceContext` giving them the clock, kernel, hardware profile,
and a broadcast hook (wired to the ActivityManagerService once it is up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.android.binder.ibinder import CallerAwareBinder


class ServiceError(Exception):
    """A service rejected a call (bad args, missing hardware, permissions)."""


@dataclass
class ServiceContext:
    """Shared plumbing handed to every system service."""

    clock: Any
    kernel: Any
    tracer: Any
    hardware: Any = None       # DeviceProfile; None in bare unit tests
    broadcast: Optional[Callable[[Any], None]] = None
    broadcast_sticky: Optional[Callable[[Any], None]] = None

    def send_broadcast(self, intent) -> None:
        if self.broadcast is not None:
            self.broadcast(intent)

    def send_sticky_broadcast(self, intent) -> None:
        if self.broadcast_sticky is not None:
            self.broadcast_sticky(intent)
        elif self.broadcast is not None:
            self.broadcast(intent)


class SystemService(CallerAwareBinder):
    """Base class: per-app state, context access, registration helper."""

    #: ServiceManager registration name; subclasses must override.
    SERVICE_KEY = ""
    #: AIDL descriptor; subclasses must override.
    DESCRIPTOR = ""

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__()
        self.ctx = ctx
        self._app_state: Dict[str, Dict[str, Any]] = {}

    # -- app-specific state -------------------------------------------------

    def app_state(self, caller_or_package) -> Dict[str, Any]:
        """Mutable state bucket for the calling app's package."""
        package = self._package_of(caller_or_package)
        return self._app_state.setdefault(package, self.new_app_state())

    def new_app_state(self) -> Dict[str, Any]:
        """Initial per-app state; subclasses override to shape it."""
        return {}

    def has_app_state(self, package: str) -> bool:
        return package in self._app_state

    def app_state_or_default(self, package: str) -> Dict[str, Any]:
        """Like :meth:`app_state` but without materializing state.

        Snapshots use this so "app never called us" and "app's calls
        cancelled out" compare equal across a migration.
        """
        state = self._app_state.get(package)
        return state if state is not None else self.new_app_state()

    def drop_app_state(self, package: str) -> None:
        """Discard an app's state (after it migrates away or uninstalls)."""
        self._app_state.pop(package, None)

    def packages(self) -> List[str]:
        return sorted(self._app_state)

    @staticmethod
    def _package_of(caller_or_package) -> str:
        if isinstance(caller_or_package, str):
            return caller_or_package
        package = getattr(caller_or_package, "package", None)
        if package is None:
            raise ServiceError(
                f"caller {caller_or_package!r} has no package identity")
        return package

    # -- snapshotting (test/verification support) ------------------------------

    def snapshot(self, package: str) -> Dict[str, Any]:
        """A comparable snapshot of the app-visible state for ``package``.

        Used by migration tests: the snapshot on the home device before
        migration must equal the snapshot on the guest after replay.
        Default implementation returns a shallow copy of the state dict;
        services with richer state override this.
        """
        if package not in self._app_state:
            return {}
        return {k: v for k, v in self._app_state[package].items()}

    def trace(self, event: str, **detail: Any) -> None:
        self.ctx.tracer.emit(f"service:{self.SERVICE_KEY}", event, **detail)
