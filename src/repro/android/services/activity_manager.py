"""ActivityManagerService: component lifecycle, broadcasts, providers.

Beyond its decorated AIDL surface, the AMS owns the framework internals
Flux leans on (paper §3.3): moving an app to the background, the task
idler that later stops it, and dispatching trim-memory requests into the
app's ActivityThread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.android.app.intent import Intent, IntentFilter
from repro.android.graphics.renderer import TRIM_MEMORY_COMPLETE
from repro.android.services.base import ServiceContext, ServiceError, SystemService


@dataclass
class ReceiverRegistration:
    package: str
    receiver_id: str
    intent_filter: IntentFilter


@dataclass
class ProviderConnection:
    client_package: str
    authority: str
    provider_package: str


class ActivityManagerService(SystemService):
    SERVICE_KEY = "activity"
    DESCRIPTOR = "IActivityManagerService"

    #: Seconds the task idler waits before stopping a backgrounded app.
    #: The paper calls the dependence on this delay out as the
    #: unoptimized part of migration preparation (§4).
    TASK_IDLE_DELAY = 0.30

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._threads: Dict[str, Any] = {}        # package -> ActivityThread
        self._receivers: Dict[str, ReceiverRegistration] = {}
        self._provider_connections: List[ProviderConnection] = []
        self._orientations: Dict[int, int] = {}
        self._uri_grants: Dict[str, Tuple[str, int]] = {}
        self._sticky: Dict[str, Intent] = {}     # action -> last intent
        self.process_starter: Optional[Callable[[str], Any]] = None
        self.broadcasts_delivered = 0

    # -- application attach (framework-internal) --------------------------------

    def attach_application(self, package: str, thread) -> None:
        self._threads[package] = thread
        node = getattr(thread, "app_thread_node", None)
        if node is not None and node.alive:
            driver = self.ctx.kernel.binder
            handle = driver.acquire_ref(self._system_process(), node)

            def on_death(_node, package=package, thread=thread) -> None:
                # Only detach if this thread is still the attached one
                # (a migrated-in instance may have replaced it).
                if self._threads.get(package) is thread:
                    self.detach_application(package)
                    self.trace("app-died", package=package)

            driver.link_to_death(self._system_process(), handle, on_death)

    def _system_process(self):
        # The AMS runs inside system_server; its node's owner is it.
        return self.binder_node.owner if self.binder_node else None

    def detach_application(self, package: str) -> None:
        self._threads.pop(package, None)
        stale = [rid for rid, reg in self._receivers.items()
                 if reg.package == package]
        for rid in stale:
            del self._receivers[rid]
        self._provider_connections = [
            c for c in self._provider_connections
            if package not in (c.client_package, c.provider_package)]

    def thread_of(self, package: str):
        return self._threads.get(package)

    def is_running(self, package: str) -> bool:
        return package in self._threads

    # -- AIDL interface ------------------------------------------------------

    def startActivity(self, caller, intent: Intent) -> int:
        package = intent.component or self._package_of(caller)
        thread = self._require_thread(package)
        activities = list(thread.activities.values())
        if activities:
            thread.resume_all()
            return activities[0].token
        raise ServiceError(
            f"{package}: no activity to start; launch via the app runtime")

    def finishActivity(self, caller, activity_token: int) -> None:
        thread = self._require_thread(self._package_of(caller))
        activity = thread.activities.get(activity_token)
        if activity is None:
            raise ServiceError(f"no activity token {activity_token}")
        from repro.android.app.activity import ActivityState
        if activity.state is ActivityState.RESUMED:
            activity.perform_transition(ActivityState.PAUSED, self.ctx.clock)
        if activity.state is ActivityState.PAUSED:
            activity.perform_transition(ActivityState.STOPPED, self.ctx.clock)
        activity.perform_transition(ActivityState.DESTROYED, self.ctx.clock)
        if activity.window is not None:
            activity.window.destroy()
        del thread.activities[activity_token]
        # The activity underneath comes back (back-stack pop).
        if not thread.in_background and not thread.resumed_activities():
            top = thread.top_activity()
            if top is not None:
                thread._resume_one(top)

    def moveTaskToFront(self, caller, task_id: int) -> None:
        self.foreground_app(self._package_of(caller))

    def moveTaskToBack(self, caller, task_id: int) -> None:
        self.background_app(self._package_of(caller))

    def startService(self, caller, service: Intent) -> str:
        package = service.component or self._package_of(caller)
        thread = self._require_thread(package)
        name = service.get_extra("service_name", service.action)
        thread.start_app_service(name, service)
        return f"{package}/{name}"

    def stopService(self, caller, service: Intent) -> int:
        package = service.component or self._package_of(caller)
        thread = self._threads.get(package)
        if thread is None:
            return 0
        name = service.get_extra("service_name", service.action)
        return 1 if thread.stop_app_service(name) else 0

    def bindService(self, caller, service: Intent, connection_id: str,
                    flags: int) -> bool:
        state = self.app_state(caller)
        state.setdefault("bindings", {})[connection_id] = service
        return True

    def unbindService(self, caller, connection_id: str) -> bool:
        bindings = self.app_state(caller).setdefault("bindings", {})
        return bindings.pop(connection_id, None) is not None

    def registerReceiver(self, caller, receiver_id: str,
                         intent_filter: IntentFilter) -> Optional[Intent]:
        self._receivers[receiver_id] = ReceiverRegistration(
            package=self._package_of(caller), receiver_id=receiver_id,
            intent_filter=intent_filter)
        # Sticky semantics: registration returns the last matching sticky
        # broadcast, so an app (re-)registering on a guest device learns
        # the guest's current hardware state immediately.
        for action in intent_filter.actions:
            sticky = self._sticky.get(action)
            if sticky is not None:
                return sticky
        return None

    def unregisterReceiver(self, caller, receiver_id: str) -> None:
        self._receivers.pop(receiver_id, None)

    def broadcastIntent(self, caller, intent: Intent) -> None:
        self.broadcast(intent)

    def broadcastStickyIntent(self, caller, intent: Intent) -> None:
        self.broadcast_sticky(intent)

    def removeStickyBroadcast(self, caller, action: str) -> None:
        self._sticky.pop(action, None)

    def setRequestedOrientation(self, caller, activity_token: int,
                                orientation: int) -> None:
        self._orientations[activity_token] = orientation

    def grantUriPermission(self, caller, target_pkg: str, uri: str,
                           mode_flags: int) -> None:
        self._uri_grants[uri] = (target_pkg, mode_flags)

    def revokeUriPermission(self, caller, uri: str, mode_flags: int) -> None:
        self._uri_grants.pop(uri, None)

    def getRunningAppProcesses(self, caller) -> List[Dict[str, Any]]:
        return [{"package": pkg, "pid": thread.process.pid}
                for pkg, thread in sorted(self._threads.items())]

    def getMemoryInfo(self, caller) -> Dict[str, int]:
        total = getattr(self.ctx.hardware, "ram_bytes", 1 << 30)
        used = sum(t.process.memory_footprint()
                   for t in self._threads.values())
        return {"total": total, "available": max(0, total - used)}

    def getTasks(self, caller, max_num: int) -> List[Dict[str, Any]]:
        tasks = [{"package": pkg,
                  "num_activities": len(thread.activities)}
                 for pkg, thread in self._threads.items()]
        return tasks[:max_num]

    def killBackgroundProcesses(self, caller, package_name: str) -> None:
        thread = self._threads.get(package_name)
        if thread is not None and thread.in_background:
            self.detach_application(package_name)
            self.ctx.kernel.kill_process(thread.process.pid)

    def getContentProvider(self, caller, authority: str) -> Dict[str, Any]:
        provider, owner_pkg = self._find_provider(authority)
        connection = ProviderConnection(
            client_package=self._package_of(caller), authority=authority,
            provider_package=owner_pkg)
        self._provider_connections.append(connection)
        return {"authority": authority, "provider": provider}

    def removeContentProvider(self, caller, authority: str) -> None:
        package = self._package_of(caller)
        for connection in list(self._provider_connections):
            if (connection.client_package == package
                    and connection.authority == authority):
                self._provider_connections.remove(connection)
                return

    def reportActivityStatus(self, caller, activity_token: int,
                             status: int) -> None:
        pass

    def getConfiguration(self, caller) -> Dict[str, Any]:
        screen = getattr(self.ctx.hardware, "screen", None)
        return {"screen": screen,
                "country": getattr(self.ctx.hardware, "country", "US")}

    # -- framework internals used by Flux ----------------------------------------

    def broadcast_sticky(self, intent: Intent) -> None:
        """Broadcast and remember: future registrations see it."""
        self._sticky[intent.action] = intent
        self.broadcast(intent)

    def sticky_intent(self, action: str) -> Optional[Intent]:
        return self._sticky.get(action)

    def broadcast(self, intent: Intent) -> None:
        """Deliver ``intent`` to every matching registered receiver."""
        for registration in list(self._receivers.values()):
            if (intent.component is not None
                    and registration.package != intent.component):
                continue
            if not registration.intent_filter.matches(intent):
                continue
            thread = self._threads.get(registration.package)
            if thread is None:
                continue
            thread.dispatch_broadcast(registration.receiver_id, intent)
            self.broadcasts_delivered += 1

    def background_app(self, package: str) -> None:
        """Pause now; the task idler stops the app after the idle delay."""
        thread = self._require_thread(package)
        thread.pause_all()
        self.ctx.clock.call_after(self.TASK_IDLE_DELAY, thread.stop_all)
        self.trace("background", package=package)

    def foreground_app(self, package: str) -> None:
        thread = self._require_thread(package)
        thread.resume_all()
        self.trace("foreground", package=package)

    def trim_memory(self, package: str,
                    level: int = TRIM_MEMORY_COMPLETE) -> None:
        thread = self._require_thread(package)
        thread.handle_trim_memory(level)
        self.trace("trim-memory", package=package, level=level)

    def provider_connections_of(self, package: str) -> List[ProviderConnection]:
        return [c for c in self._provider_connections
                if c.client_package == package]

    def receiver_registrations_of(self, package: str) -> List[str]:
        return sorted(r.receiver_id for r in self._receivers.values()
                      if r.package == package)

    # -- helpers --------------------------------------------------------------------

    def _require_thread(self, package: str):
        thread = self._threads.get(package)
        if thread is not None:
            return thread
        if self.process_starter is not None:
            thread = self.process_starter(package)
            if thread is not None:
                return thread
        raise ServiceError(f"package {package!r} is not running")

    def _find_provider(self, authority: str):
        for package, thread in self._threads.items():
            provider = thread.providers.get(authority)
            if provider is not None:
                return provider, package
        raise ServiceError(f"no content provider for {authority!r}")

    def snapshot(self, package: str) -> Dict[str, Any]:
        bindings = {}
        if self.has_app_state(package):
            bindings = dict(self.app_state(package).get("bindings", {}))
        return {
            "receivers": self.receiver_registrations_of(package),
            "bindings": sorted(bindings),
        }
