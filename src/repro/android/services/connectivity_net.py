"""WifiService and ConnectivityManagerService.

Connectivity is the one piece of state Flux deliberately does *not*
migrate: after restore the guest's ConnectivityManagerService broadcasts
a loss of connectivity followed by a new connection, and the app handles
it like any wireless hand-off (paper §3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.android.app.intent import (
    ACTION_CONNECTIVITY_CHANGE,
    ACTION_WIFI_STATE_CHANGED,
    Intent,
)
from repro.android.services.base import ServiceContext, ServiceError, SystemService


WIFI_STATE_DISABLED = 1
WIFI_STATE_ENABLED = 3

TYPE_MOBILE = 0
TYPE_WIFI = 1


@dataclass
class NetworkInfo:
    network_type: int
    connected: bool
    ssid: Optional[str] = None

    def __eq__(self, other) -> bool:
        if not isinstance(other, NetworkInfo):
            return NotImplemented
        return (self.network_type, self.connected, self.ssid) == (
            other.network_type, other.connected, other.ssid)


@dataclass
class WifiConfiguration:
    ssid: str
    security: str = "wpa2"

    def __eq__(self, other) -> bool:
        if not isinstance(other, WifiConfiguration):
            return NotImplemented
        return (self.ssid, self.security) == (other.ssid, other.security)

    def __hash__(self) -> int:
        return hash((self.ssid, self.security))


@dataclass
class WifiInfo:
    ssid: Optional[str]
    link_speed_mbps: float
    rssi: int = -60


@dataclass
class ScanResult:
    ssid: str
    level: int


class WifiService(SystemService):
    SERVICE_KEY = "wifi"
    DESCRIPTOR = "IWifiService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._enabled = True
        self._connected_ssid: Optional[str] = getattr(
            ctx.hardware, "default_ssid", "campus-wifi")
        self._net_ids = itertools.count(1)
        self._networks: Dict[int, WifiConfiguration] = {}
        self._network_enabled: Dict[int, bool] = {}
        self._scan_results: List[ScanResult] = [
            ScanResult("campus-wifi", -55), ScanResult("guest", -70)]

    def new_app_state(self) -> Dict[str, Any]:
        return {"locks": {}, "networks": []}

    # -- AIDL interface ------------------------------------------------------

    def setWifiEnabled(self, caller, enabled: bool) -> None:
        self._enabled = bool(enabled)
        if not enabled:
            self._connected_ssid = None
        self.ctx.send_sticky_broadcast(Intent(ACTION_WIFI_STATE_CHANGED,
                                              state=self.getWifiState(caller)))

    def getWifiState(self, caller) -> int:
        return WIFI_STATE_ENABLED if self._enabled else WIFI_STATE_DISABLED

    def startScan(self, caller) -> None:
        pass

    def getScanResults(self, caller) -> List[ScanResult]:
        return list(self._scan_results) if self._enabled else []

    def getConnectionInfo(self, caller) -> WifiInfo:
        speed = getattr(self.ctx.hardware, "wifi_link_mbps", 65.0)
        return WifiInfo(ssid=self._connected_ssid, link_speed_mbps=speed)

    def addNetwork(self, caller, config: WifiConfiguration) -> int:
        net_id = next(self._net_ids)
        self._networks[net_id] = config
        self._network_enabled[net_id] = False
        self.app_state(caller)["networks"].append(net_id)
        return net_id

    def removeNetwork(self, caller, net_id: int) -> None:
        self._networks.pop(net_id, None)
        self._network_enabled.pop(net_id, None)
        state = self.app_state(caller)
        if net_id in state["networks"]:
            state["networks"].remove(net_id)

    def enableNetwork(self, caller, net_id: int, disable_others: bool) -> None:
        if net_id not in self._networks:
            raise ServiceError(f"no network {net_id}")
        if disable_others:
            for other in self._network_enabled:
                self._network_enabled[other] = False
        self._network_enabled[net_id] = True

    def disableNetwork(self, caller, net_id: int) -> None:
        if net_id not in self._networks:
            raise ServiceError(f"no network {net_id}")
        self._network_enabled[net_id] = False

    def acquireWifiLock(self, caller, lock_id: str, lock_mode: int) -> None:
        self.app_state(caller)["locks"][lock_id] = lock_mode

    def releaseWifiLock(self, caller, lock_id: str) -> None:
        locks = self.app_state(caller)["locks"]
        if lock_id not in locks:
            raise ServiceError(f"wifi lock {lock_id!r} not held")
        del locks[lock_id]

    def reconnect(self, caller) -> None:
        if self._enabled and self._connected_ssid is None:
            self._connected_ssid = "campus-wifi"

    def disconnect(self, caller) -> None:
        self._connected_ssid = None

    def isScanAlwaysAvailable(self, caller) -> bool:
        return True

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {
            "locks": dict(state["locks"]),
            "networks": [self._networks[n].ssid for n in state["networks"]
                         if n in self._networks],
        }


class ConnectivityManagerService(SystemService):
    SERVICE_KEY = "connectivity"
    DESCRIPTOR = "IConnectivityManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        self._airplane = False
        self._active = NetworkInfo(TYPE_WIFI, True, ssid="campus-wifi")

    def new_app_state(self) -> Dict[str, Any]:
        return {"callbacks": []}

    # -- AIDL interface ------------------------------------------------------

    def getActiveNetworkInfo(self, caller) -> Optional[NetworkInfo]:
        if self._airplane or not self._active.connected:
            return None
        return self._active

    def getNetworkInfo(self, caller, network_type: int) -> Optional[NetworkInfo]:
        if network_type == self._active.network_type:
            return self._active
        return NetworkInfo(network_type, False)

    def getAllNetworkInfo(self, caller) -> List[NetworkInfo]:
        return [self._active,
                NetworkInfo(TYPE_MOBILE, False)]

    def setAirplaneMode(self, caller, enabled: bool) -> None:
        self._airplane = bool(enabled)
        self._broadcast_change()

    def isAirplaneModeOn(self, caller) -> bool:
        return self._airplane

    def registerNetworkCallback(self, caller, callback_id: str) -> None:
        callbacks = self.app_state(caller)["callbacks"]
        if callback_id not in callbacks:
            callbacks.append(callback_id)

    def unregisterNetworkCallback(self, caller, callback_id: str) -> None:
        callbacks = self.app_state(caller)["callbacks"]
        if callback_id in callbacks:
            callbacks.remove(callback_id)

    def reportBadNetwork(self, caller, network_type: int) -> None:
        pass

    def requestRouteToHost(self, caller, network_type: int, host: str) -> bool:
        return not self._airplane and self._active.connected

    def isNetworkSupported(self, caller, network_type: int) -> bool:
        return network_type in (TYPE_MOBILE, TYPE_WIFI)

    # -- migration support ------------------------------------------------------------

    def simulate_connectivity_interrupt(self) -> None:
        """Loss followed by reconnection, as reintegration signals it."""
        self._active = NetworkInfo(TYPE_WIFI, False)
        self._broadcast_change()
        self._active = NetworkInfo(TYPE_WIFI, True, ssid="campus-wifi")
        self._broadcast_change()

    def _broadcast_change(self) -> None:
        connected = not self._airplane and self._active.connected
        self.ctx.send_sticky_broadcast(Intent(ACTION_CONNECTIVITY_CHANGE,
                                              connected=connected))

    def snapshot(self, package: str) -> Dict[str, Any]:
        state = self.app_state_or_default(package)
        return {"callbacks": sorted(state["callbacks"])}
