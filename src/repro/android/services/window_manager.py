"""WindowManagerService: windows, surfaces, and the trim-memory RPCs.

Not a decorated service (its app-visible state is rebuilt on the guest by
conditional initialization, not replay); it provides Windows sized by the
device screen and the ``startTrimMemory``/``endTrimMemory`` RPCs that the
ActivityThread invokes during Flux's preparation phase (paper §3.3).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.android.graphics.renderer import TRIM_MEMORY_COMPLETE
from repro.android.graphics.surface import ScreenConfig, Window
from repro.android.services.base import ServiceContext, ServiceError, SystemService


class WindowManagerService(SystemService):
    SERVICE_KEY = "window"
    DESCRIPTOR = "IWindowManagerService"

    def __init__(self, ctx: ServiceContext) -> None:
        super().__init__(ctx)
        screen = getattr(ctx.hardware, "screen", None)
        self._screen: ScreenConfig = screen or ScreenConfig(768, 1280, 320)
        self._windows: Dict[int, Window] = {}

    @property
    def screen(self) -> ScreenConfig:
        return self._screen

    # -- window management --------------------------------------------------

    def add_window(self, package: str, process, title: str = "") -> Window:
        window = Window(package, process, self._screen, title=title)
        self._windows[window.window_id] = window
        self.trace("add-window", package=package, window=window.window_id)
        return window

    def remove_window(self, window: Window) -> None:
        window.destroy()
        self._windows.pop(window.window_id, None)

    def windows_of(self, package: str) -> List[Window]:
        return [w for w in self._windows.values()
                if w.owner_package == package]

    def live_surface_count(self, package: str) -> int:
        return sum(1 for w in self.windows_of(package) if w.has_surface)

    # -- trim-memory RPCs (paper §3.3) ------------------------------------------

    def start_trim_memory(self, process, renderer) -> None:
        """startTrimMemory RPC: flush the renderer's caches."""
        renderer.start_trim_memory(TRIM_MEMORY_COMPLETE)
        self.trace("start-trim", pid=process.pid)

    def end_trim_memory(self, process, renderer) -> None:
        """endTrimMemory RPC: terminate all GL contexts of the process."""
        fully_uninitialized = renderer.terminate_and_uninitialize()
        self.trace("end-trim", pid=process.pid,
                   gl_uninitialized=fully_uninitialized)
