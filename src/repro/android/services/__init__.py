"""Android system services with Flux-decorated AIDL interfaces."""

from repro.android.services.activity_manager import ActivityManagerService
from repro.android.services.aidl_sources import (
    AIDL_SOURCES,
    SERVICE_SPECS,
    ServiceSpec,
    all_sources,
    spec_for,
)
from repro.android.services.alarm import AlarmEntry, AlarmManagerService
from repro.android.services.audio import (
    RINGER_NORMAL,
    RINGER_SILENT,
    RINGER_VIBRATE,
    STREAM_MUSIC,
    STREAM_RING,
    AudioService,
)
from repro.android.services.base import ServiceContext, ServiceError, SystemService
from repro.android.services.clipboard import ClipboardService
from repro.android.services.connectivity_net import (
    ConnectivityManagerService,
    NetworkInfo,
    ScanResult,
    WifiConfiguration,
    WifiInfo,
    WifiService,
)
from repro.android.services.hardware_misc import (
    BluetoothService,
    CameraInfo,
    CameraManagerService,
    CountryDetectorService,
    InputManagerService,
    InputMethodManagerService,
    SerialService,
    UsbService,
)
from repro.android.services.location import (
    GPS_PROVIDER,
    NETWORK_PROVIDER,
    Location,
    LocationManagerService,
)
from repro.android.services.notification import NotificationManagerService
from repro.android.services.package_manager import PackageInfo, PackageManagerService
from repro.android.services.power import PowerManagerService, VibratorService
from repro.android.services.sensor import Sensor, SensorEventConnection, SensorService
from repro.android.services.software_misc import (
    KeyguardService,
    NsdService,
    TextServicesManagerService,
    UiModeManagerService,
)
from repro.android.services.window_manager import WindowManagerService

__all__ = [
    "ActivityManagerService", "AIDL_SOURCES", "SERVICE_SPECS", "ServiceSpec",
    "all_sources", "spec_for", "AlarmEntry", "AlarmManagerService",
    "RINGER_NORMAL", "RINGER_SILENT", "RINGER_VIBRATE", "STREAM_MUSIC",
    "STREAM_RING", "AudioService", "ServiceContext", "ServiceError",
    "SystemService", "ClipboardService", "ConnectivityManagerService",
    "NetworkInfo", "ScanResult", "WifiConfiguration", "WifiInfo",
    "WifiService", "BluetoothService", "CameraInfo", "CameraManagerService",
    "CountryDetectorService", "InputManagerService",
    "InputMethodManagerService", "SerialService", "UsbService",
    "GPS_PROVIDER", "NETWORK_PROVIDER", "Location", "LocationManagerService",
    "NotificationManagerService", "PackageInfo", "PackageManagerService",
    "PowerManagerService", "VibratorService", "Sensor",
    "SensorEventConnection", "SensorService", "KeyguardService", "NsdService",
    "TextServicesManagerService", "UiModeManagerService",
    "WindowManagerService",
]
