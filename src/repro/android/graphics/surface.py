"""Windows and drawing surfaces.

Each activity gets a Window from the WindowManagerService; a Window
contains a single Surface into which the View hierarchy renders (paper
§2).  Surface buffers are device-specific memory sized by the screen, so
they are destroyed when an activity stops and recreated — sized for the
*guest* screen — after migration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.android.kernel.memory import MemoryRegion, RegionKind


class SurfaceError(Exception):
    pass


@dataclass(frozen=True)
class ScreenConfig:
    width_px: int
    height_px: int
    density_dpi: int

    @property
    def pixels(self) -> int:
        return self.width_px * self.height_px

    def buffer_bytes(self) -> int:
        """Double-buffered RGBA surface for a full-screen window."""
        return self.pixels * 4 * 2

    def __str__(self) -> str:
        return f"{self.width_px}x{self.height_px}@{self.density_dpi}dpi"


class Surface:
    """A buffer an activity's view hierarchy renders into."""

    _ids = itertools.count(1)

    def __init__(self, process, screen: ScreenConfig) -> None:
        self.surface_id = next(self._ids)
        self.process = process
        self.screen = screen
        self.valid = True
        self._region_name = f"surface:{self.surface_id}"
        process.memory.map(MemoryRegion(
            name=self._region_name, kind=RegionKind.SURFACE,
            size=screen.buffer_bytes()))
        self.frames_rendered = 0

    def render_frame(self) -> None:
        if not self.valid:
            raise SurfaceError(f"surface {self.surface_id} destroyed")
        self.frames_rendered += 1

    def destroy(self) -> None:
        if not self.valid:
            return
        self.process.memory.unmap(self._region_name)
        self.valid = False


class Window:
    """A WindowManager window hosting one Surface."""

    _ids = itertools.count(1)

    def __init__(self, owner_package: str, process, screen: ScreenConfig,
                 title: str = "") -> None:
        self.window_id = next(self._ids)
        self.owner_package = owner_package
        self.process = process
        self.screen = screen
        self.title = title
        self.surface: Optional[Surface] = Surface(process, screen)
        self.visible = True

    def destroy_surface(self) -> None:
        """Free the drawing surface (activity stopped; paper §2)."""
        if self.surface is not None:
            self.surface.destroy()
            self.surface = None

    def recreate_surface(self, screen: Optional[ScreenConfig] = None) -> Surface:
        """Recreate the surface, possibly for a different screen (guest)."""
        if self.surface is not None and self.surface.valid:
            raise SurfaceError(f"window {self.window_id} already has a surface")
        if screen is not None:
            self.screen = screen
        self.surface = Surface(self.process, self.screen)
        return self.surface

    @property
    def has_surface(self) -> bool:
        return self.surface is not None and self.surface.valid

    def destroy(self) -> None:
        self.destroy_surface()
        self.visible = False
