"""EGL / OpenGL ES model: generic library over a vendor library.

Android's GL stack (paper §2) is a generic library presenting the
standard API plus a vendor library implementing device-specific code.
Flux extends the generic library with ``eglUnload`` (paper §3.3) which
completely unloads the vendor library once all contexts are gone, so a
different vendor library can be loaded after migration.

GL resources (contexts, textures, shaders, buffers) are backed by
device-specific memory: context storage lives in a ``GL_CONTEXT`` region
and texture pools in pmem.  CRIA can only checkpoint a process once all
of this is released.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.android.kernel.memory import MemoryRegion, RegionKind


class GlError(Exception):
    """EGL/GL protocol errors."""


@dataclass(frozen=True)
class GlResource:
    res_id: int
    kind: str          # "texture" | "shader" | "buffer" | "framebuffer"
    size: int          # bytes of device memory backing it


class EGLContext:
    """One rendering context, tied to the vendor library that made it."""

    _ids = itertools.count(1)

    def __init__(self, vendor: "VendorGlLibrary", process) -> None:
        self.context_id = next(self._ids)
        self.vendor = vendor
        self.process = process
        self.resources: Dict[int, GlResource] = {}
        self._res_ids = itertools.count(1)
        self.destroyed = False
        self._region_name = f"glctx:{self.context_id}"
        process.memory.map(MemoryRegion(
            name=self._region_name, kind=RegionKind.GL_CONTEXT,
            size=vendor.context_overhead))

    def create_resource(self, kind: str, size: int) -> GlResource:
        self._check_alive()
        resource = GlResource(next(self._res_ids), kind, size)
        self.resources[resource.res_id] = resource
        self.vendor.charge_memory(self.process, resource)
        return resource

    def delete_resource(self, res_id: int) -> None:
        self._check_alive()
        resource = self.resources.pop(res_id, None)
        if resource is None:
            raise GlError(f"no GL resource {res_id}")
        self.vendor.release_memory(self.process, resource)

    def resource_bytes(self) -> int:
        return sum(r.size for r in self.resources.values())

    def destroy(self) -> None:
        if self.destroyed:
            return
        for res_id in list(self.resources):
            self.delete_resource(res_id)
        self.process.memory.unmap(self._region_name)
        self.destroyed = True
        self.vendor.on_context_destroyed(self)

    def _check_alive(self) -> None:
        if self.destroyed:
            raise GlError(f"context {self.context_id} destroyed")


class VendorGlLibrary:
    """The device-specific half of the GL stack.

    Loading it maps a vendor-state region into the process; every GPU
    allocation goes through pmem.  It refuses to unload while any of its
    contexts are alive — exactly the constraint ``eglUnload`` must
    respect.
    """

    def __init__(self, gpu_name: str, kernel,
                 context_overhead: int = 256 * 1024,
                 library_state_size: int = 512 * 1024) -> None:
        self.gpu_name = gpu_name
        self.kernel = kernel
        self.context_overhead = context_overhead
        self.library_state_size = library_state_size
        self._loaded_into: Dict[int, object] = {}   # pid -> process
        self._live_contexts: List[EGLContext] = []
        self._allocations: Dict[int, Dict[int, object]] = {}  # pid -> res_id -> pmem alloc

    # -- load / unload ---------------------------------------------------------

    def load(self, process) -> None:
        if process.pid in self._loaded_into:
            return
        process.memory.map(MemoryRegion(
            name=f"glvendor:{self.gpu_name}", kind=RegionKind.GL_VENDOR,
            size=self.library_state_size))
        self._loaded_into[process.pid] = process

    def is_loaded(self, process) -> bool:
        return process.pid in self._loaded_into

    def unload(self, process) -> None:
        """eglUnload's vendor half: only legal once no contexts remain."""
        if process.pid not in self._loaded_into:
            raise GlError(f"vendor lib not loaded in pid {process.pid}")
        live = [c for c in self._live_contexts
                if c.process.pid == process.pid and not c.destroyed]
        if live:
            raise GlError(
                f"cannot unload vendor lib: {len(live)} live context(s)")
        process.memory.unmap(f"glvendor:{self.gpu_name}")
        del self._loaded_into[process.pid]

    # -- contexts & memory -------------------------------------------------------

    def create_context(self, process) -> EGLContext:
        if process.pid not in self._loaded_into:
            raise GlError("vendor library not loaded; call eglInitialize first")
        context = EGLContext(self, process)
        self._live_contexts.append(context)
        return context

    def on_context_destroyed(self, context: EGLContext) -> None:
        if context in self._live_contexts:
            self._live_contexts.remove(context)

    def live_context_count(self, pid: Optional[int] = None) -> int:
        contexts = [c for c in self._live_contexts if not c.destroyed]
        if pid is not None:
            contexts = [c for c in contexts if c.process.pid == pid]
        return len(contexts)

    def charge_memory(self, process, resource: GlResource) -> None:
        alloc = self.kernel.pmem.allocate(process, resource.size,
                                          purpose=f"gl-{resource.kind}")
        self._allocations.setdefault(process.pid, {})[resource.res_id] = alloc

    def release_memory(self, process, resource: GlResource) -> None:
        per_pid = self._allocations.get(process.pid, {})
        alloc = per_pid.pop(resource.res_id, None)
        if alloc is not None:
            self.kernel.pmem.free(process, alloc)


class GenericGlLibrary:
    """The device-independent GL API apps link against.

    Holds per-process EGL state and implements the Flux ``egl_unload``
    extension: tear down the vendor binding so a *different* vendor
    library can back the API after migration.
    """

    def __init__(self, vendor: VendorGlLibrary) -> None:
        self._vendor = vendor
        self._initialized_pids: Dict[int, object] = {}

    @property
    def vendor(self) -> VendorGlLibrary:
        return self._vendor

    def egl_initialize(self, process) -> None:
        self._vendor.load(process)
        self._initialized_pids[process.pid] = process

    def egl_create_context(self, process) -> EGLContext:
        if process.pid not in self._initialized_pids:
            raise GlError(f"EGL not initialized in pid {process.pid}")
        return self._vendor.create_context(process)

    def egl_terminate_contexts(self, process) -> int:
        """Destroy every live context this process holds; returns count."""
        count = 0
        for context in list(self._vendor._live_contexts):
            if context.process.pid == process.pid and not context.destroyed:
                context.destroy()
                count += 1
        return count

    def egl_unload(self, process) -> None:
        """The Flux extension (paper §3.3): drop vendor-specific state."""
        if process.pid not in self._initialized_pids:
            return
        self._vendor.unload(process)
        del self._initialized_pids[process.pid]

    def is_initialized(self, process) -> bool:
        return process.pid in self._initialized_pids

    def rebind_vendor(self, vendor: VendorGlLibrary) -> None:
        """Swap the vendor library (after migration to different GPU).

        Only legal when no process has EGL initialized — which is exactly
        the state eglUnload leaves behind.
        """
        if self._initialized_pids:
            raise GlError("cannot rebind vendor library while EGL in use")
        self._vendor = vendor
