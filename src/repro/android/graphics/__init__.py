"""Graphics stack: EGL/GL with vendor-library split, surfaces, renderer."""

from repro.android.graphics.egl import (
    EGLContext,
    GenericGlLibrary,
    GlError,
    GlResource,
    VendorGlLibrary,
)
from repro.android.graphics.renderer import (
    TRIM_MEMORY_COMPLETE,
    TRIM_MEMORY_UI_HIDDEN,
    HardwareRenderer,
)
from repro.android.graphics.surface import (
    ScreenConfig,
    Surface,
    SurfaceError,
    Window,
)

__all__ = [
    "EGLContext", "GenericGlLibrary", "GlError", "GlResource",
    "VendorGlLibrary", "TRIM_MEMORY_COMPLETE", "TRIM_MEMORY_UI_HIDDEN",
    "HardwareRenderer", "ScreenConfig", "Surface", "SurfaceError", "Window",
]
