"""HardwareRenderer: per-process GPU rendering front end.

Models the chain the paper walks in §3.3: the renderer owns an EGL
context plus caches of GL resources; ``start_trim_memory`` flushes the
caches, ``destroy_hardware_resources`` drops per-ViewRoot display lists,
and ``destroy`` disables the renderer.  Once every context is gone the
renderer uninitializes OpenGL, after which Flux's ``egl_unload`` can
remove the vendor library.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.android.graphics.egl import EGLContext, GenericGlLibrary, GlError


# Trim levels, mirroring android.content.ComponentCallbacks2.
TRIM_MEMORY_UI_HIDDEN = 20
TRIM_MEMORY_COMPLETE = 80      # highest severity; what Flux requests


class HardwareRenderer:
    """One per app process; renders every hardware-accelerated window."""

    CACHE_KINDS = ("texture-cache", "path-cache", "gradient-cache")
    CACHE_BYTES = {"texture-cache": 2 * 1024 * 1024,
                   "path-cache": 512 * 1024,
                   "gradient-cache": 128 * 1024}

    def __init__(self, process, gl: GenericGlLibrary) -> None:
        self.process = process
        self.gl = gl
        self.context: Optional[EGLContext] = None
        self.enabled = False
        self._caches: Dict[str, int] = {}        # kind -> res_id

    # -- lifecycle -----------------------------------------------------------

    def initialize(self) -> None:
        """Conditional initialization: idempotent, as Android relies on."""
        if self.enabled:
            return
        self.gl.egl_initialize(self.process)
        self.context = self.gl.egl_create_context(self.process)
        for kind in self.CACHE_KINDS:
            resource = self.context.create_resource(kind,
                                                    self.CACHE_BYTES[kind])
            self._caches[kind] = resource.res_id
        self.enabled = True

    @property
    def initialized(self) -> bool:
        return self.enabled

    # -- rendering -------------------------------------------------------------

    def draw(self, view_root) -> None:
        if not self.enabled:
            self.initialize()       # conditional init on first use
        view_root.perform_traversal(self)

    def allocate_display_list(self, size: int):
        if self.context is None:
            raise GlError("renderer has no context")
        return self.context.create_resource("buffer", size)

    def free_display_list(self, res_id: int) -> None:
        if self.context is not None and not self.context.destroyed:
            if res_id in self.context.resources:
                self.context.delete_resource(res_id)

    # -- trim-memory chain (paper §3.3) -----------------------------------------

    def start_trim_memory(self, level: int) -> None:
        """Flush caches; at TRIM_MEMORY_COMPLETE everything goes."""
        if self.context is None or self.context.destroyed:
            return
        for kind, res_id in list(self._caches.items()):
            if res_id in self.context.resources:
                self.context.delete_resource(res_id)
            del self._caches[kind]

    def destroy_hardware_resources(self, view_root) -> None:
        view_root.release_display_lists(self)

    def destroy(self) -> None:
        """Disable the renderer and drop its context."""
        if self.context is not None and not self.context.destroyed:
            self.context.destroy()
        self.context = None
        self._caches.clear()
        self.enabled = False

    def terminate_and_uninitialize(self) -> bool:
        """End-of-trim step: drop the renderer's own context.

        Returns True when OpenGL is fully uninitialized for the process
        (no contexts remain, so eglUnload may proceed).  A GLSurfaceView
        that preserved its context across pause keeps it alive here —
        exactly the state that defeats Flux's preparation (paper §3.4).
        """
        self.destroy()
        return self.gl.vendor.live_context_count(self.process.pid) == 0

    def cache_bytes(self) -> int:
        if self.context is None:
            return 0
        return sum(self.context.resources[r].size
                   for r in self._caches.values()
                   if r in self.context.resources)
