"""Quadrant-Standard- and SunSpider-like micro-workloads (Figure 16).

Each workload runs inside a benchmark app on a booted device and charges
virtual CPU time for its operations; the score is work per virtual
second, as benchmark suites report.  Runs on a Flux-enabled device pay
the *real* interposition costs of our recording layer (the ambient
decorated service calls a foreground app makes — wakelocks, volume —
plus whatever the workload itself touches); runs on a vanilla-AOSP
device pay none.  Figure 16 normalizes Flux scores to AOSP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.android.app.activity import Activity
from repro.android.app.views import View, ViewGroup
from repro.android.kernel.memory import MemoryRegion, RegionKind
from repro.sim import units


BENCH_PACKAGE = "com.aurora.quadrant"

#: Virtual CPU seconds per elementary operation on the reference device.
OP_COST = {
    "cpu": 4.0e-6,
    "mem": 2.5e-6,
    "io": 3.0e-5,
    "2d": 1.1e-4,
    "3d": 1.6e-4,
    "js": 6.0e-6,
}


class BenchActivity(Activity):
    def on_create(self, saved_state) -> None:
        root = ViewGroup("bench-root")
        for i in range(6):
            root.add_view(View(f"bench-view-{i}"))
        self.set_content_view(root)


@dataclass
class BenchmarkResult:
    name: str
    device_name: str
    flux_enabled: bool
    operations: int
    elapsed: float

    @property
    def score(self) -> float:
        """Operations per virtual second (higher is better)."""
        return self.operations / self.elapsed if self.elapsed else 0.0


class BenchmarkApp:
    """Runs the suite's workloads on one device."""

    def __init__(self, device, thread) -> None:
        self.device = device
        self.thread = thread
        self._cpu = device.profile.cpu_factor

    @classmethod
    def launch(cls, device) -> "BenchmarkApp":
        from repro.android.storage import ApkFile
        if not device.package_service.is_installed(BENCH_PACKAGE):
            device.install_app(ApkFile(BENCH_PACKAGE, 1, units.mb(2)))
        thread = device.launch_app(BENCH_PACKAGE, BenchActivity,
                                   heap_bytes=units.mb(4))
        return cls(device, thread)

    # -- ambient app behaviour common to all benchmark runs --------------------

    def _ambient_start(self) -> None:
        power = self.thread.context.get_system_service("power")
        self._lock = power.new_wake_lock(power.PARTIAL_WAKE_LOCK, "bench")
        self._lock.acquire()

    def _ambient_stop(self) -> None:
        self._lock.release()

    def _charge(self, kind: str, operations: int) -> None:
        self.device.clock.advance(OP_COST[kind] * operations / self._cpu)

    def _run(self, name: str, kind: str, operations: int,
             body: Callable[[], None]) -> BenchmarkResult:
        start = self.device.clock.now
        self._ambient_start()
        body()
        self._charge(kind, operations)
        self._ambient_stop()
        elapsed = self.device.clock.now - start
        return BenchmarkResult(name=name, device_name=self.device.name,
                               flux_enabled=self.device.flux_enabled,
                               operations=operations, elapsed=elapsed)

    # -- the six benchmarks ------------------------------------------------------

    def quadrant_cpu(self, operations: int = 40_000) -> BenchmarkResult:
        def body() -> None:
            acc = 0
            for i in range(200):    # genuine arithmetic, cost via _charge
                acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
        return self._run("Quadrant CPU", "cpu", operations, body)

    def quadrant_mem(self, operations: int = 40_000) -> BenchmarkResult:
        process = self.thread.process

        def body() -> None:
            for i in range(64):
                region = process.memory.map(MemoryRegion(
                    name=f"bench-{i}", kind=RegionKind.MMAP,
                    size=units.kb(256)))
                process.memory.unmap(region.name)
        return self._run("Quadrant Mem", "mem", operations, body)

    def quadrant_io(self, operations: int = 4_000) -> BenchmarkResult:
        storage = self.device.storage

        def body() -> None:
            for i in range(32):
                path = f"/data/data/{BENCH_PACKAGE}/cache/io-{i}"
                if storage.exists(path):
                    storage.remove(path)
                storage.add_file(path, units.kb(64), f"bench-io-{i}")
        return self._run("Quadrant I/O", "io", operations, body)

    def quadrant_2d(self, frames: int = 1_200) -> BenchmarkResult:
        activity = next(iter(self.thread.activities.values()))

        def body() -> None:
            for _ in range(30):
                activity.view_root.invalidate_all()
                activity.render()
        return self._run("Quadrant 2D", "2d", frames, body)

    def quadrant_3d(self, frames: int = 900) -> BenchmarkResult:
        process = self.thread.process
        gl = self.device.gl

        def body() -> None:
            gl.egl_initialize(process)
            context = gl.egl_create_context(process)
            for i in range(8):
                resource = context.create_resource("texture", units.kb(512))
                context.delete_resource(resource.res_id)
            context.destroy()
        return self._run("Quadrant 3D", "3d", frames, body)

    def sunspider(self, operations: int = 60_000) -> BenchmarkResult:
        def body() -> None:
            text = "flux" * 64
            for _ in range(50):
                text.upper().lower()
        return self._run("SunSpider", "js", operations, body)

    def run_all(self) -> List[BenchmarkResult]:
        return [
            self.quadrant_cpu(), self.quadrant_mem(), self.quadrant_io(),
            self.quadrant_2d(), self.quadrant_3d(), self.sunspider(),
        ]


BENCHMARK_NAMES = ("Quadrant CPU", "Quadrant Mem", "Quadrant I/O",
                   "Quadrant 2D", "Quadrant 3D", "SunSpider")
