"""Quadrant/SunSpider-like benchmark suite for the Figure 16 overhead study."""

from repro.benchmarksuite.runner import (
    FIG16_PROFILES,
    NormalizedScore,
    run_device_suite,
    run_fig16,
)
from repro.benchmarksuite.workloads import (
    BENCHMARK_NAMES,
    BenchmarkApp,
    BenchmarkResult,
)

__all__ = [
    "FIG16_PROFILES", "NormalizedScore", "run_device_suite", "run_fig16",
    "BENCHMARK_NAMES", "BenchmarkApp", "BenchmarkResult",
]
