"""Figure 16 runner: per-device Flux-vs-AOSP benchmark comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.android.device import Device
from repro.android.hardware.profiles import (
    NEXUS_4,
    NEXUS_7_2012,
    NEXUS_7_2013,
    DeviceProfile,
)
from repro.benchmarksuite.workloads import BENCHMARK_NAMES, BenchmarkApp
from repro.sim import SimClock


#: The three device types Figure 16 evaluates.
FIG16_PROFILES = (NEXUS_7_2012, NEXUS_4, NEXUS_7_2013)


@dataclass
class NormalizedScore:
    benchmark: str
    device: str
    aosp_score: float
    flux_score: float

    @property
    def normalized(self) -> float:
        """Flux score relative to AOSP (1.0 == no overhead)."""
        return self.flux_score / self.aosp_score if self.aosp_score else 0.0

    @property
    def overhead_percent(self) -> float:
        return (1.0 - self.normalized) * 100.0


def run_device_suite(profile: DeviceProfile,
                     flux_enabled: bool) -> Dict[str, float]:
    """Run all six benchmarks on a fresh device; returns name -> score."""
    device = Device(profile, SimClock(), name=f"{profile.name}-bench",
                    flux_enabled=flux_enabled)
    app = BenchmarkApp.launch(device)
    return {result.name: result.score for result in app.run_all()}


def run_fig16(profiles: Sequence[DeviceProfile] = FIG16_PROFILES
              ) -> List[NormalizedScore]:
    """The full Figure 16 matrix: 6 benchmarks x len(profiles) devices."""
    out: List[NormalizedScore] = []
    for profile in profiles:
        aosp = run_device_suite(profile, flux_enabled=False)
        flux = run_device_suite(profile, flux_enabled=True)
        for name in BENCHMARK_NAMES:
            out.append(NormalizedScore(
                benchmark=name, device=profile.model,
                aosp_score=aosp[name], flux_score=flux[name]))
    return out
