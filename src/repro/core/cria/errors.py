"""Migration failure taxonomy.

Every refusal the paper describes gets a stable reason code so the
app-support experiment can assert exactly which apps fail and why
(Facebook -> MULTI_PROCESS, Subway Surfers -> PRESERVED_EGL_CONTEXT).
"""

from __future__ import annotations

import enum


class MigrationRefusal(enum.Enum):
    MULTI_PROCESS = "multi-process"
    PRESERVED_EGL_CONTEXT = "preserved-egl-context"
    EXTERNAL_BINDER_CONNECTION = "external-non-system-binder"
    ACTIVE_CONTENT_PROVIDER = "active-content-provider"
    COMMON_SDCARD_FILES = "common-sdcard-files-open"
    API_LEVEL_INCOMPATIBLE = "api-level-incompatible"
    NOT_PAIRED = "not-paired"
    NOT_RUNNING = "not-running"
    DEVICE_STATE_RESIDUE = "device-specific-state-residue"


class MigrationError(Exception):
    """Raised when an app cannot be migrated; carries the reason code."""

    def __init__(self, reason: MigrationRefusal, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        message = reason.value if not detail else f"{reason.value}: {detail}"
        super().__init__(message)


class CheckpointError(Exception):
    """Internal checkpoint/restore mechanics failed (a bug, not a refusal)."""
