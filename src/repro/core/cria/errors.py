"""Migration failure taxonomy.

Every refusal the paper describes gets a stable reason code so the
app-support experiment can assert exactly which apps fail and why
(Facebook -> MULTI_PROCESS, Subway Surfers -> PRESERVED_EGL_CONTEXT).
"""

from __future__ import annotations

import enum


class MigrationRefusal(enum.Enum):
    MULTI_PROCESS = "multi-process"
    PRESERVED_EGL_CONTEXT = "preserved-egl-context"
    EXTERNAL_BINDER_CONNECTION = "external-non-system-binder"
    ACTIVE_CONTENT_PROVIDER = "active-content-provider"
    COMMON_SDCARD_FILES = "common-sdcard-files-open"
    API_LEVEL_INCOMPATIBLE = "api-level-incompatible"
    NOT_PAIRED = "not-paired"
    NOT_RUNNING = "not-running"
    DEVICE_STATE_RESIDUE = "device-specific-state-residue"
    # Admission control (scenario layer): one of the endpoints is
    # already hosting a migration and the admission policy is "refuse"
    # rather than "queue".
    DEVICE_BUSY = "device-busy"
    # Admission control (placement layer): no surface in the population
    # satisfies the app's recorded needs (screen, sensors, location,
    # vibrator) — the demand is refused before any session is compiled.
    NO_FEASIBLE_GUEST = "no-feasible-guest"
    # Runtime faults (as opposed to static app-shape refusals): the
    # migration started and was aborted by the stage pipeline, which
    # rolled the app back to the home device.
    LINK_DOWN = "link-down"
    RESTORE_FAILED = "restore-failed"


#: Reasons that are mid-flight faults, not up-front policy refusals.
#: Only these (and unexpected exceptions) mark a report's
#: ``faulted_stage`` — a refusal means "this app cannot migrate", a
#: fault means "this migration attempt died and was rolled back".
RUNTIME_FAULTS = frozenset({
    MigrationRefusal.LINK_DOWN,
    MigrationRefusal.RESTORE_FAILED,
})


class MigrationError(Exception):
    """Raised when an app cannot be migrated; carries the reason code."""

    def __init__(self, reason: MigrationRefusal, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        message = reason.value if not detail else f"{reason.value}: {detail}"
        super().__init__(message)

    @property
    def is_fault(self) -> bool:
        return self.reason in RUNTIME_FAULTS

    def __reduce__(self):
        # Exception's default reduce replays __init__ with the formatted
        # message (a str), not (reason, detail) — which made the error
        # un-picklable.  Process-pool sweep workers propagate refusals
        # across the process boundary, so the round-trip must be exact.
        return (MigrationError, (self.reason, self.detail))


class CheckpointError(Exception):
    """Internal checkpoint/restore mechanics failed (a bug, not a refusal)."""
