"""CRIA checkpoint: freeze the prepared app and capture its image.

Binder state gets the paper's three-way classification (§3.3): internal
connections are saved whole; references to *named* system services are
saved as (handle, service name) pairs so restore can re-bind by name on
the guest; anonymous service-created objects (sensor connections) are
saved as pending references for replay proxies to re-create; references
to non-system services make the app unmigratable and are refused.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.cria.errors import (
    CheckpointError,
    MigrationError,
    MigrationRefusal,
)
from repro.core.cria.image import (
    BinderRefImage,
    BinderRefKind,
    CheckpointImage,
    FdImage,
    ProcessImage,
    ThreadImage,
)
from repro.core.extensions import FluxExtensions


def checkpoint_app(device, package: str,
                   extensions: FluxExtensions = None) -> CheckpointImage:
    """Checkpoint the (already prepared) app on ``device``.

    With the ``multi_process`` extension the whole process tree is
    imaged (CRIU-style); otherwise a second process is a refusal.
    """
    ext = extensions or FluxExtensions.none()
    thread = device.thread_of(package)
    if thread is None:
        raise MigrationError(MigrationRefusal.NOT_RUNNING, package)
    processes = device.app_processes(package)
    if not processes:
        raise MigrationError(MigrationRefusal.NOT_RUNNING, package)
    if len(processes) > 1 and not ext.multi_process:
        raise MigrationError(MigrationRefusal.MULTI_PROCESS,
                             f"{package} has {len(processes)} processes")
    # The main (thread-hosting) process is imaged first.
    processes = sorted(processes,
                       key=lambda proc: proc.pid != thread.process.pid)

    process_images = []
    for process in processes:
        process.freeze()
        process_images.append(_image_of_process(device, package, process))

    record_log = device.recorder.extract_app_log(package)
    info = device.package_service.get_package(package)
    image = CheckpointImage(
        package=package,
        source_device=device.name,
        source_kernel=device.kernel.version,
        android_version=device.profile.android_version,
        api_level=info.api_level,
        checkpoint_time=device.clock.now,
        processes=process_images,
        app_payload=thread,
        record_log=list(record_log),
        metadata={
            "home_profile": device.profile.name,
            "stream_max_volumes": dict(
                device.service("audio")._max),
            "provider_connections": [
                {"authority": c.authority,
                 "provider_package": c.provider_package}
                for c in device.activity_service
                .provider_connections_of(package)],
        },
    )
    device.tracer.emit("cria", "checkpoint", package=package,
                       raw_bytes=image.raw_bytes(),
                       refs=len(image.main_process.binder_refs))
    metrics = getattr(device, "metrics", None)
    if metrics is not None:
        raw = image.raw_bytes()
        metrics.counter("cria", "checkpoints", app=package).inc()
        metrics.counter("cria", "processes_imaged",
                        app=package).inc(len(process_images))
        metrics.counter("cria", "image_raw_bytes", app=package).inc(raw)
        metrics.counter("cria", "image_compressed_bytes",
                        app=package).inc(image.compressed_bytes())
        # 4 KB pages, the unit a real CRIU-style dumper moves.
        metrics.counter("cria", "pages", app=package).inc(raw // 4096)
    return image


def _image_of_process(device, package: str, process) -> ProcessImage:
    binder_state = device.binder.state_of(process)
    refs = [_classify_ref(device, package, raw)
            for raw in binder_state["refs"]]
    for ref in refs:
        if ref.kind is BinderRefKind.EXTERNAL_NON_SYSTEM:
            process.thaw()
            raise MigrationError(
                MigrationRefusal.EXTERNAL_BINDER_CONNECTION,
                f"handle {ref.handle} -> {ref.label!r}")

    fds = [FdImage(fd=entry.fd, description=entry.obj.describe())
           for entry in process.fds.entries()]
    threads = [ThreadImage(tid=t.tid, name=t.name, context=dict(t.context))
               for t in process.live_threads()]
    regions = []
    for region in process.memory:
        if region.device_specific:
            process.thaw()
            raise MigrationError(
                MigrationRefusal.DEVICE_STATE_RESIDUE,
                f"device-specific region {region.name!r} at checkpoint")
        regions.append(region.clone())

    driver_state: Dict[str, Dict] = {}
    for driver in device.kernel.drivers():
        state = driver.checkpoint_state(process)
        if state is not None:
            driver_state[driver.name] = state

    return ProcessImage(
        name=process.name, virtual_pid=process.pid, uid=process.uid,
        regions=regions, threads=threads, fds=fds, binder_refs=refs,
        owned_node_labels=[n["label"]
                           for n in binder_state["owned_nodes"]],
        driver_state=driver_state)


def _classify_ref(device, package: str, raw: Dict) -> BinderRefImage:
    """The three-way (plus anonymous) classification of §3.3."""
    if raw["owner_package"] == package:
        kind = BinderRefKind.INTERNAL
        service_name = None
    elif raw["system_service"]:
        service_name = device.service_manager.name_of_node(raw["node_id"])
        if service_name is not None:
            kind = BinderRefKind.EXTERNAL_SYSTEM
        else:
            # A system-service-created per-app object (e.g. a
            # SensorEventConnection): not in the ServiceManager registry;
            # re-created on the guest by a replay proxy.
            kind = BinderRefKind.EXTERNAL_ANONYMOUS
            service_name = None
    else:
        kind = BinderRefKind.EXTERNAL_NON_SYSTEM
        service_name = None
    return BinderRefImage(handle=raw["handle"], kind=kind,
                          service_name=service_name, label=raw["label"],
                          strong_count=raw["strong_count"])
