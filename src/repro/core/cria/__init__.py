"""CRIA: Checkpoint/Restore In Android."""

from repro.core.cria.checkpoint import checkpoint_app
from repro.core.cria.errors import (
    CheckpointError,
    MigrationError,
    MigrationRefusal,
)
from repro.core.cria.image import (
    IMAGE_COMPRESSION_RATIO,
    BinderRefImage,
    BinderRefKind,
    CheckpointImage,
    FdImage,
    ProcessImage,
    ThreadImage,
)
from repro.core.cria.preparation import (
    PreparationReport,
    check_preparable,
    prepare_app,
)
from repro.core.cria.restore import RestoredApp, restore_app
from repro.core.cria.wire import (
    WireError,
    image_metadata,
    serialize_image,
    verify_against_image,
    verify_and_decode,
)

__all__ = [
    "checkpoint_app", "CheckpointError", "MigrationError", "MigrationRefusal",
    "IMAGE_COMPRESSION_RATIO", "BinderRefImage", "BinderRefKind",
    "CheckpointImage", "FdImage", "ProcessImage", "ThreadImage",
    "PreparationReport", "check_preparable", "prepare_app", "RestoredApp",
    "restore_app", "WireError", "image_metadata", "serialize_image",
    "verify_against_image", "verify_and_decode",
]
