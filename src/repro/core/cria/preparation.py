"""Migration preparation: drive the app into a checkpointable state.

Paper §3.1/§3.3, in order:

1. instruct the app to go to the background (frees drawing surfaces once
   the task idler stops it),
2. trigger a highest-severity trim-memory request (flushes renderer
   caches, destroys per-ViewRoot hardware resources, terminates GL
   contexts),
3. call the ``eglUnload`` extension to unload the vendor GL library.

Afterwards no device-specific memory may remain.  An app that asked to
preserve its EGL context across pause defeats step 2 and is refused —
the Subway Surfers limitation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.android.graphics.renderer import TRIM_MEMORY_COMPLETE
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.extensions import FluxExtensions


@dataclass
class PreparationReport:
    package: str
    surfaces_freed: int = 0
    gl_contexts_terminated: int = 0
    vendor_lib_unloaded: bool = False
    pmem_bytes_freed: int = 0
    device_regions_remaining: int = 0
    gl_capture: object = None            # GlStateCapture when the
                                         # gl_record_replay extension ran
    network_mounted_files: List[str] = field(default_factory=list)


def check_preparable(device, package: str,
                     extensions: Optional[FluxExtensions] = None) -> None:
    """Fast refusals detectable before any teardown work.

    Each refusal can be lifted by the corresponding extension flag —
    the implementations the paper sketches in §3.4.
    """
    ext = extensions or FluxExtensions.none()
    thread = device.thread_of(package)
    if thread is None:
        raise MigrationError(MigrationRefusal.NOT_RUNNING, package)

    processes = device.app_processes(package)
    if len(processes) > 1 and not ext.multi_process:
        raise MigrationError(
            MigrationRefusal.MULTI_PROCESS,
            f"{package} runs {len(processes)} processes")

    if not ext.gl_record_replay:
        for activity in thread.activities.values():
            if activity.view_root is None:
                continue
            for gl_view in activity.view_root.gl_surface_views():
                if gl_view.preserve_egl_context_on_pause:
                    raise MigrationError(
                        MigrationRefusal.PRESERVED_EGL_CONTEXT,
                        f"{activity.name}.{gl_view.name} called "
                        "setPreserveEGLContextOnPause")

    if (device.activity_service.provider_connections_of(package)
            and not ext.content_provider_replay):
        raise MigrationError(
            MigrationRefusal.ACTIVE_CONTENT_PROVIDER,
            f"{package} is mid-ContentProvider interaction")

    if not ext.sdcard_network_mount:
        for entry, path in _common_sdcard_fds(device, package):
            raise MigrationError(
                MigrationRefusal.COMMON_SDCARD_FILES,
                f"fd {entry.fd} open on {path}")


def _common_sdcard_fds(device, package: str):
    """(fd entry, path) pairs for open common (non-app) SD card files."""
    app_prefix = f"/sdcard/Android/data/{package}"
    out = []
    for process in device.app_processes(package):
        for entry in process.fds.entries():
            desc = entry.obj.describe()
            path = desc.get("path", "")
            if (desc.get("kind") == "file" and path.startswith("/sdcard")
                    and not path.startswith(app_prefix)):
                out.append((entry, path))
    return out


def prepare_app(device, package: str,
                extensions: Optional[FluxExtensions] = None
                ) -> PreparationReport:
    """Run the three-step preparation; the clock must then be advanced
    past the task idler before checkpointing (the migration service does
    this as part of the preparation stage's cost)."""
    ext = extensions or FluxExtensions.none()
    check_preparable(device, package, ext)
    thread = device.thread_of(package)
    process = thread.process
    report = PreparationReport(package=package)

    if ext.gl_record_replay:
        from repro.core.glreplay import capture_and_release
        capture = capture_and_release(thread)
        if not capture.is_empty():
            report.gl_capture = capture

    if ext.sdcard_network_mount:
        from repro.android.kernel.files import NetworkFile
        for entry, path in _common_sdcard_fds(device, package):
            desc = entry.obj.describe()
            mounted = NetworkFile(path, host=device.name,
                                  flags=desc["flags"],
                                  offset=desc["offset"])
            for proc in device.app_processes(package):
                if entry.fd in proc.fds:
                    proc.fds.dup2(mounted, entry.fd)
            report.network_mounted_files.append(path)

    surfaces_before = device.window_service.live_surface_count(package)

    # Step 1: background the app; the task idler will stop it.
    device.activity_service.background_app(package)
    device.clock.advance(device.activity_service.TASK_IDLE_DELAY + 0.01)
    report.surfaces_freed = (surfaces_before
                             - device.window_service.live_surface_count(package))

    # Step 2: highest-severity trim-memory request.
    contexts_before = device.vendor_gl.live_context_count(process.pid)
    device.activity_service.trim_memory(package, TRIM_MEMORY_COMPLETE)
    report.gl_contexts_terminated = (
        contexts_before - device.vendor_gl.live_context_count(process.pid))

    # A preserved EGL context would still be alive here; double-check
    # (defence in depth — check_preparable should have refused already).
    if device.vendor_gl.live_context_count(process.pid) > 0:
        raise MigrationError(
            MigrationRefusal.PRESERVED_EGL_CONTEXT,
            f"{package}: GL contexts survive trim-memory")

    # Step 3: eglUnload the vendor library.
    report.pmem_bytes_freed = device.kernel.pmem.free_all(process)
    device.gl.egl_unload(process)
    report.vendor_lib_unloaded = True

    for proc in device.app_processes(package):
        residue = proc.memory.device_specific_regions()
        report.device_regions_remaining += len(residue)
        if residue:
            raise MigrationError(
                MigrationRefusal.DEVICE_STATE_RESIDUE,
                f"pid {proc.pid}: regions remain: "
                f"{[r.name for r in residue]}")
    device.tracer.emit("cria", "prepared", package=package,
                       surfaces_freed=report.surfaces_freed,
                       contexts=report.gl_contexts_terminated)
    return report
