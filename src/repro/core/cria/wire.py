"""The checkpoint image wire format.

What actually crosses the link during the transfer stage: a framed,
checksummed encoding of the image — header magic, a JSON metadata
section (identity, per-process region digests, fd descriptions, binder
references, thread contexts, the record-log index), and a payload
section carrying the region contents.  The guest verifies the frame
checksum and every region digest *before* attempting restore, so a
corrupted transfer fails loudly instead of resurrecting a broken app.

The live Python object graph (``app_payload``) rides as the region
payloads' stand-in, exactly as CRIU moves raw memory pages out of band
from its image metadata; see DESIGN.md.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Dict, List, Tuple

from repro.core.cria.errors import CheckpointError
from repro.core.cria.image import CheckpointImage


MAGIC = b"FLUXIMG1"
_HEADER = struct.Struct(">8sII")    # magic, metadata length, payload length

#: Frame format version.  Version 2 records a per-region ``(offset,
#: length)`` table in the metadata section and concatenates region
#: payloads directly; version 1 joined payloads with ``b"\x00"``, which
#: is ambiguous when a payload itself contains NULs.
WIRE_VERSION = 2


class WireError(CheckpointError):
    """Frame corruption or version mismatch."""


def _describe_value(value: Any) -> Any:
    """JSON-safe description of a recorded argument or result."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_describe_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _describe_value(v) for k, v in value.items()}
    return {"__object__": type(value).__name__, "repr": repr(value)}


def image_metadata(image: CheckpointImage) -> Dict[str, Any]:
    """The JSON-encodable metadata section.

    Region entries gain their payload ``(offset, length)`` into the
    frame's payload section when framed by :func:`serialize_image`;
    here they carry identity and digests only.
    """
    return {
        "version": WIRE_VERSION,
        "package": image.package,
        "source_device": image.source_device,
        "source_kernel": image.source_kernel,
        "android_version": image.android_version,
        "api_level": image.api_level,
        "checkpoint_time": image.checkpoint_time,
        "processes": [{
            "name": proc.name,
            "virtual_pid": proc.virtual_pid,
            "uid": proc.uid,
            "regions": [{
                "name": region.name,
                "kind": region.kind.value,
                "size": region.size,
                "digest": region.content_hash(),
            } for region in proc.regions],
            "threads": [{"tid": t.tid, "name": t.name,
                         "context": t.context} for t in proc.threads],
            "fds": [{"fd": f.fd, "description": f.description}
                    for f in proc.fds],
            "binder_refs": [{
                "handle": r.handle, "kind": r.kind.value,
                "service_name": r.service_name, "label": r.label,
            } for r in proc.binder_refs],
            "driver_state": proc.driver_state,
        } for proc in image.processes],
        "record_log": [{
            "seq": entry.seq,
            "interface": entry.interface,
            "method": entry.method,
            "args": _describe_value(entry.args),
        } for entry in image.record_log],
    }


def serialize_image(image: CheckpointImage) -> bytes:
    """Frame the image for the wire.

    Region payloads are concatenated directly into the payload section;
    each region's metadata entry records its exact ``(offset, length)``
    so the receiver reconstructs every payload byte-for-byte even when
    payloads contain NULs or are empty.
    """
    metadata_dict = image_metadata(image)
    payload_parts: List[bytes] = []
    offset = 0
    for proc, proc_meta in zip(image.processes, metadata_dict["processes"]):
        for region, region_meta in zip(proc.regions, proc_meta["regions"]):
            region_meta["offset"] = offset
            region_meta["length"] = len(region.payload)
            payload_parts.append(region.payload)
            offset += len(region.payload)
    metadata = json.dumps(metadata_dict,
                          separators=(",", ":")).encode("utf-8")
    payload = b"".join(payload_parts)
    body = _HEADER.pack(MAGIC, len(metadata), len(payload)) \
        + metadata + payload
    return body + hashlib.sha256(body).digest()


def _verify_and_split(blob: bytes) -> Tuple[Dict[str, Any], bytes]:
    """Checksum-verify a frame; return (metadata, payload section)."""
    if len(blob) < _HEADER.size + 32:
        raise WireError("frame truncated")
    body, checksum = blob[:-32], blob[-32:]
    if hashlib.sha256(body).digest() != checksum:
        raise WireError("frame checksum mismatch (corrupt transfer)")
    magic, metadata_len, payload_len = _HEADER.unpack_from(body)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    expected = _HEADER.size + metadata_len + payload_len
    if len(body) != expected:
        raise WireError(f"frame length {len(body)} != declared {expected}")
    metadata_bytes = body[_HEADER.size:_HEADER.size + metadata_len]
    try:
        metadata = json.loads(metadata_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"metadata undecodable: {error}") from error
    if metadata.get("version") != WIRE_VERSION:
        raise WireError(f"unsupported image version {metadata.get('version')}")
    return metadata, body[_HEADER.size + metadata_len:]


def verify_and_decode(blob: bytes) -> Dict[str, Any]:
    """Checksum-verify a frame and return its metadata section.

    Raises :class:`WireError` on any corruption; restore must not be
    attempted from a frame that fails here.
    """
    metadata, _ = _verify_and_split(blob)
    return metadata


def region_payloads(blob: bytes) -> Dict[Tuple[int, str], bytes]:
    """Reconstruct every region payload exactly from a verified frame.

    Returns ``(virtual_pid, region_name) -> payload bytes``, sliced by
    the per-region offset/length table — NUL bytes inside payloads are
    preserved verbatim.
    """
    metadata, payload = _verify_and_split(blob)
    out: Dict[Tuple[int, str], bytes] = {}
    for proc in metadata["processes"]:
        for region in proc["regions"]:
            offset, length = region["offset"], region["length"]
            if offset < 0 or length < 0 or offset + length > len(payload):
                raise WireError(
                    f"region {region['name']!r} payload slice "
                    f"[{offset}:{offset + length}] outside payload section "
                    f"of {len(payload)} bytes")
            out[(proc["virtual_pid"], region["name"])] = \
                payload[offset:offset + length]
    return out


def verify_against_image(blob: bytes, image: CheckpointImage) -> None:
    """Guest-side pre-restore check: the frame matches the image.

    Every region digest in the frame must equal the digest of the region
    about to be restored — the moral equivalent of CRIU verifying its
    page checksums before injecting them — and the frame's payload
    slices must reproduce each region's payload byte-for-byte.
    """
    metadata = verify_and_decode(blob)
    if metadata["package"] != image.package:
        raise WireError(
            f"frame is for {metadata['package']!r}, not {image.package!r}")
    wire_digests = {
        (proc["virtual_pid"], region["name"]): region["digest"]
        for proc in metadata["processes"] for region in proc["regions"]}
    payloads = region_payloads(blob)
    for proc in image.processes:
        for region in proc.regions:
            key = (proc.virtual_pid, region.name)
            if key not in wire_digests:
                raise WireError(f"region {region.name!r} missing from frame")
            if wire_digests[key] != region.content_hash():
                raise WireError(
                    f"region {region.name!r} digest mismatch "
                    "(memory corrupted in transit)")
            if payloads[key] != region.payload:
                raise WireError(
                    f"region {region.name!r} payload mismatch "
                    "(framing reconstructed the wrong bytes)")
