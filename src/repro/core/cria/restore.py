"""CRIA restore: resurrect a checkpoint image on the guest device.

The app is restored *into the wrapper app* created at pairing (paper
§3.1): a fresh process inside a private PID namespace so the app keeps
its old pid, jailed to the synced filesystem.  Binder references to
named system services are re-injected under their original handle ids
against the guest's equivalents; anonymous references (sensor
connections) are left pending for the replay proxies; file descriptors
are re-created, with original socket descriptor numbers *reserved* so
replay can dup2 fresh sockets into them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.android.kernel.files import DeviceFile, OpenFile
from repro.core.cria.errors import (
    CheckpointError,
    MigrationError,
    MigrationRefusal,
)
from repro.core.cria.image import BinderRefKind, CheckpointImage, ProcessImage


class RestoreFault(CheckpointError):
    """An injected restore failure (see :class:`RestoreFaultPlan`)."""


@dataclass(frozen=True)
class RestoreFaultPlan:
    """Fail the restore after N completed sub-operations.

    Restore proceeds in counted steps (per process: memory, threads,
    fds, binder injection, driver state, freeze; plus the final rebind).
    ``fail_after_steps=N`` raises :class:`RestoreFault` once N steps have
    completed — deterministically, at a layer boundary — so tests can
    probe every intermediate state the guest can be left in.
    """

    fail_after_steps: int

    def __post_init__(self) -> None:
        if self.fail_after_steps < 0:
            raise ValueError(
                f"bad fail_after_steps {self.fail_after_steps!r}")


class _StepCounter:
    def __init__(self, plan: Optional[RestoreFaultPlan],
                 metrics=None, events=None, package: str = "") -> None:
        self._plan = plan
        self._metrics = metrics
        self._events = events
        self._package = package
        self.steps = 0

    def tick(self, label: str) -> None:
        """One restore sub-operation completed; fire the fault if due."""
        if (self._plan is not None
                and self.steps >= self._plan.fail_after_steps):
            if self._events is not None:
                self._events.emit("cria.restore_fault", app=self._package,
                                  steps_completed=self.steps,
                                  next_step=label)
            raise RestoreFault(
                f"injected restore fault after {self.steps} steps "
                f"(before {label})")
        self.steps += 1
        if self._metrics is not None:
            self._metrics.counter("cria", "restore_sub_ops",
                                  app=self._package, step=label).inc()
        if self._events is not None:
            self._events.emit("cria.restore_step", app=self._package,
                              step=label, n=self.steps)


@dataclass
class RestoredApp:
    package: str
    thread: object                 # the re-bound ActivityThread
    process: object                # guest kernel process (main)
    namespace: object              # private PID namespace
    pending_refs: List[object] = field(default_factory=list)
    reserved_fds: List[int] = field(default_factory=list)
    services_rebound: List[str] = field(default_factory=list)
    secondary_processes: List[object] = field(default_factory=list)


def rollback_restore(device, namespace, processes) -> None:
    """Erase a (possibly partial) restore from the guest.

    Kills every process the restore created (killing also unbinds its
    pid from all namespaces) and drops the private namespace — the guest
    is left exactly as if the restore never started.  Idempotent: dead
    pids and an already-removed namespace are skipped.
    """
    for process in processes:
        if device.kernel.has_pid(process.pid):
            device.kernel.kill_process(process.pid)
    if namespace is not None:
        device.kernel.destroy_pid_namespace(namespace)


def restore_app(device, image: CheckpointImage,
                fault_plan: Optional[RestoreFaultPlan] = None) -> RestoredApp:
    """Restore ``image`` on ``device`` (the guest).

    Atomic with respect to guest state: any failure (a real
    :class:`CheckpointError` or an injected :class:`RestoreFault`)
    rolls back everything created so far — partial processes are
    killed and the private PID namespace is dropped — before the error
    propagates.  The checkpointed thread is only rebound to the guest
    after every process restored, so a failed restore never leaves the
    app's heap pointing at the guest.
    """
    package = image.package
    _check_wrapper(device, image)

    metrics = getattr(device, "metrics", None)
    events = getattr(device, "events", None)
    counter = _StepCounter(fault_plan, metrics=metrics, events=events,
                           package=package)
    namespace = device.kernel.create_pid_namespace(f"flux:{package}")

    main_process = None
    secondary = []
    created = []
    pending: List[object] = []
    reserved: List[int] = []
    try:
        for proc_image in image.processes:
            process = device.kernel.create_process(
                proc_image.name, uid=proc_image.uid, package=package)
            created.append(process)
            namespace.bind(proc_image.virtual_pid, process.pid)
            counter.tick("memory")
            _restore_memory(process, proc_image)
            counter.tick("threads")
            _restore_threads(process, proc_image)
            counter.tick("fds")
            reserved.extend(_restore_fds(process, proc_image))
            counter.tick("binder")
            pending.extend(_restore_binder(device, process, proc_image))
            counter.tick("drivers")
            _restore_drivers(device, process, proc_image)
            counter.tick("freeze")
            process.freeze()   # thawed at reintegration
            if main_process is None:
                main_process = process
            else:
                secondary.append(process)
        counter.tick("rebind")
    except Exception:
        rollback_restore(device, namespace, created)
        device.tracer.emit("cria", "restore-rollback", package=package,
                           processes_killed=len(created),
                           steps_completed=counter.steps)
        if metrics is not None:
            metrics.counter("cria", "restore_rollbacks", app=package).inc()
        if events is not None:
            events.emit("cria.restore_rollback", app=package,
                        processes_killed=len(created),
                        steps_completed=counter.steps)
        raise

    thread = image.app_payload
    thread.rebind(device.framework, main_process)
    device.adopt_thread(package, thread)

    restored = RestoredApp(
        package=package, thread=thread, process=main_process,
        namespace=namespace, pending_refs=pending, reserved_fds=reserved,
        services_rebound=image.external_service_names(),
        secondary_processes=secondary)
    device.tracer.emit("cria", "restore", package=package,
                       virtual_pid=image.main_process.virtual_pid,
                       real_pid=main_process.pid,
                       rebound=len(restored.services_rebound),
                       pending=len(pending))
    return restored


def _check_wrapper(device, image: CheckpointImage) -> None:
    package = image.package
    if not device.package_service.is_installed(package):
        raise MigrationError(MigrationRefusal.NOT_PAIRED,
                             f"{package} has no wrapper on {device.name}")
    if image.api_level > device.profile.api_level:
        raise MigrationError(
            MigrationRefusal.API_LEVEL_INCOMPATIBLE,
            f"app needs API {image.api_level}, guest has "
            f"{device.profile.api_level}")


def _restore_memory(process, proc_image: ProcessImage) -> None:
    for region in proc_image.regions:
        restored = region.clone()
        process.memory.map(restored)
        if restored.content_hash() != region.content_hash():
            raise CheckpointError(
                f"memory corruption restoring region {region.name!r}")


def _restore_threads(process, proc_image: ProcessImage) -> None:
    # The main thread exists; recreate the rest and inject contexts.
    for i, thread_image in enumerate(proc_image.threads):
        if i == 0:
            target = process.main_thread
        else:
            target = process.spawn_thread(thread_image.name)
        target.context = dict(thread_image.context)


def _restore_fds(process, proc_image: ProcessImage) -> List[int]:
    """Recreate descriptors; sockets get their numbers reserved."""
    reserved: List[int] = []
    for fd_image in proc_image.fds:
        desc = fd_image.description
        kind = desc.get("kind")
        if kind == "file":
            process.fds.install(OpenFile(desc["path"], desc["flags"],
                                         desc["offset"]), fd=fd_image.fd)
        elif kind == "unix-socket":
            # The peer lives in a home-device service; a replay proxy
            # will dup2 a fresh guest socket into this number.
            process.fds.reserve(fd_image.fd, f"socket:{desc.get('label', '')}")
            reserved.append(fd_image.fd)
        elif kind == "network-file":
            from repro.android.kernel.files import NetworkFile
            process.fds.install(
                NetworkFile(desc["path"], host=desc["host"],
                            flags=desc["flags"], offset=desc["offset"]),
                fd=fd_image.fd)
        elif kind == "device":
            process.fds.install(DeviceFile(desc["driver"],
                                           dict(desc.get("state", {}))),
                                fd=fd_image.fd)
        elif kind == "pipe":
            process.fds.reserve(fd_image.fd, "pipe")
            reserved.append(fd_image.fd)
        else:
            raise CheckpointError(f"unknown fd kind {kind!r}")
    return reserved


def _restore_binder(device, process, proc_image: ProcessImage) -> List[object]:
    """Re-inject references under their original handle ids (paper §3.3)."""
    pending = []
    driver = device.binder
    for ref in proc_image.binder_refs:
        if ref.kind is BinderRefKind.EXTERNAL_SYSTEM:
            node = device.service_manager.node_of(ref.service_name)
            if node is None:
                raise MigrationError(
                    MigrationRefusal.NOT_PAIRED,
                    f"guest lacks system service {ref.service_name!r}")
            driver.inject_ref(process, ref.handle, node)
        elif ref.kind is BinderRefKind.INTERNAL:
            # Both ends are inside the app: recreate a node owned by the
            # restored process and point the handle at it.
            node = driver.create_node(process, None, ref.label)
            driver.inject_ref(process, ref.handle, node)
        elif ref.kind is BinderRefKind.EXTERNAL_ANONYMOUS:
            pending.append(ref)
        else:
            raise CheckpointError(
                f"unmigratable ref {ref.label!r} survived checkpoint")
    return pending


def _restore_drivers(device, process, proc_image: ProcessImage) -> None:
    for driver_name, state in proc_image.driver_state.items():
        device.kernel.driver(driver_name).restore_state(process, state)
