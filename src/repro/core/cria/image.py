"""The CRIA checkpoint image format.

An image carries everything needed to resurrect an app on another
device: per-process memory regions, thread contexts, file descriptors,
the classified Binder state, per-driver state, the pruned record log,
and the frozen app object graph (standing in for heap contents that the
region payloads size-account).  ``size accounting`` distinguishes raw
from compressed bytes: the compressed image is what crosses the wire
(paper §3.1: "the checkpoint image is compressed and sent").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.android.kernel.memory import MemoryRegion, RegionKind


#: Compression achieved on checkpoint images (heap pages compress well).
IMAGE_COMPRESSION_RATIO = 0.55


class BinderRefKind(enum.Enum):
    INTERNAL = "internal"                  # both ends inside the app
    EXTERNAL_SYSTEM = "external-system"    # a named system service
    EXTERNAL_ANONYMOUS = "external-anonymous"  # service-created sub-object
    EXTERNAL_NON_SYSTEM = "external-non-system"  # another app: unmigratable


@dataclass
class BinderRefImage:
    handle: int
    kind: BinderRefKind
    service_name: Optional[str] = None   # for EXTERNAL_SYSTEM
    label: str = ""                      # node label, for diagnostics
    strong_count: int = 1


@dataclass
class FdImage:
    fd: int
    description: Dict[str, Any]


@dataclass
class ThreadImage:
    tid: int
    name: str
    context: Dict[str, int]


@dataclass
class ProcessImage:
    name: str
    virtual_pid: int
    uid: int
    regions: List[MemoryRegion]
    threads: List[ThreadImage]
    fds: List[FdImage]
    binder_refs: List[BinderRefImage]
    owned_node_labels: List[str]
    driver_state: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def memory_bytes(self) -> int:
        return sum(r.size for r in self.regions)

    def anonymous_memory_bytes(self) -> int:
        """Bytes that must travel (file-backed CODE pages do not: the APK
        was already synced at pairing)."""
        return sum(r.size for r in self.regions
                   if r.kind is not RegionKind.CODE)


@dataclass
class CheckpointImage:
    package: str
    source_device: str
    source_kernel: str
    android_version: str
    api_level: int
    checkpoint_time: float
    processes: List[ProcessImage]
    app_payload: Any                       # the frozen ActivityThread graph
    record_log: List[Any]                  # CallRecord entries, in order
    metadata: Dict[str, Any] = field(default_factory=dict)

    BINDER_REF_BYTES = 64
    FD_BYTES = 48
    THREAD_BYTES = 1024

    def raw_bytes(self) -> int:
        """Uncompressed image size."""
        total = 4096    # image header
        for proc in self.processes:
            total += proc.anonymous_memory_bytes()
            total += len(proc.binder_refs) * self.BINDER_REF_BYTES
            total += len(proc.fds) * self.FD_BYTES
            total += len(proc.threads) * self.THREAD_BYTES
        total += sum(r.estimated_size() for r in self.record_log)
        return total

    def compressed_bytes(self) -> int:
        return int(self.raw_bytes() * IMAGE_COMPRESSION_RATIO)

    def record_log_bytes(self) -> int:
        return sum(r.estimated_size() for r in self.record_log)

    @property
    def main_process(self) -> ProcessImage:
        return self.processes[0]

    def external_service_names(self) -> List[str]:
        names = []
        for proc in self.processes:
            for ref in proc.binder_refs:
                if (ref.kind is BinderRefKind.EXTERNAL_SYSTEM
                        and ref.service_name):
                    names.append(ref.service_name)
        return sorted(set(names))
