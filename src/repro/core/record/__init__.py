"""Selective Record: call log, drop-rule engine, recording handler."""

from repro.core.record.log import CallLog, CallRecord
from repro.core.record.recorder import AppRecorder, Recorder, RecorderError
from repro.core.record.rules import DropOutcome, apply_drop_rules, describe_rules

__all__ = [
    "CallLog", "CallRecord", "AppRecorder", "Recorder", "RecorderError",
    "DropOutcome", "apply_drop_rules", "describe_rules",
]
