"""Executable semantics of the Flux decoration language.

Given a new call to a decorated method, the rule engine decides
(1) which previous log entries are now stale and must be removed, and
(2) whether the new call itself should be appended.

Semantics (see also :mod:`repro.android.aidl.ast`):

* Each ``@drop`` rule names target methods (possibly including ``this``)
  and zero or more signatures (from ``@if``/``@elif``), each a tuple of
  parameter names.
* A previous entry *matches* when its method is in the target list and,
  for at least one signature, every named argument compares equal between
  the previous entry and the current call.  An entry that lacks one of
  the named parameters cannot match that signature.  A rule with no
  signature matches every previous call to its targets (last-write-wins
  methods such as volume setters rely on this).
* All matching entries are removed.
* The current call is suppressed (not recorded) iff some rule containing
  ``this`` alongside *other* targets removed a matching entry of one of
  those other targets — the cancel/enqueue annihilation of Figure 7.  A
  rule whose only target is ``this`` (alarm ``set`` in Figure 9) replaces
  prior entries but still records the new call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.android.aidl.ast import THIS, Decoration, DropRule
from repro.core.record.log import CallLog, CallRecord


@dataclass
class DropOutcome:
    removed_seqs: List[int] = field(default_factory=list)
    suppress_current: bool = False

    @property
    def removed_count(self) -> int:
        return len(self.removed_seqs)


def _signature_matches(signature: Tuple[str, ...], previous: CallRecord,
                       current_args: Dict[str, object]) -> bool:
    for arg_name in signature:
        if arg_name not in previous.args or arg_name not in current_args:
            return False
        if previous.args[arg_name] != current_args[arg_name]:
            return False
    return True


def _entry_matches(rule: DropRule, previous: CallRecord,
                   current_args: Dict[str, object]) -> bool:
    if rule.unconditional:
        return True
    return any(_signature_matches(sig, previous, current_args)
               for sig in rule.signatures)


def apply_drop_rules(log: CallLog, app: str, interface: str, method: str,
                     args: Dict[str, object],
                     decoration: Decoration) -> DropOutcome:
    """Prune stale entries for a new call; see module docstring."""
    outcome = DropOutcome()
    for rule in decoration.drop_rules:
        targets = [method if t == THIS else t for t in rule.targets]
        other_targets = set(rule.other_targets())
        candidates = log.entries_for_methods(app, interface, targets)
        annihilated_other = False
        to_remove: List[int] = []
        for previous in candidates:
            if _entry_matches(rule, previous, args):
                to_remove.append(previous.seq)
                if previous.method in other_targets:
                    annihilated_other = True
        if to_remove:
            log.remove(to_remove)
            outcome.removed_seqs.extend(to_remove)
        if annihilated_other and rule.drops_this() and other_targets:
            outcome.suppress_current = True
    return outcome


def describe_rules(decoration: Decoration) -> List[str]:
    """Human-readable rule summary (used in docs/experiments output)."""
    out = []
    for rule in decoration.drop_rules:
        desc = f"drop {', '.join(rule.targets)}"
        if rule.signatures:
            sigs = " | ".join("(" + ", ".join(s) + ")" for s in rule.signatures)
            desc += f" if {sigs}"
        out.append(desc)
    if decoration.replay_proxy:
        out.append(f"replayproxy {decoration.replay_proxy}")
    return out
