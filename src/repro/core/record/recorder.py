"""The recording handler invoked by generated AIDL proxies.

One :class:`Recorder` exists per device; the generated proxy code calls
``on_call`` after every transaction on a ``@record``-decorated method
(Figure 5).  The recorder resolves the method's decoration from the
interface registry, prunes stale entries via the rule engine, and appends
the call — charging a small, measurable CPU cost so the Figure 16
overhead experiment measures something real.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.android.aidl.registry import InterfaceRegistry
from repro.core.record.log import CallLog, CallRecord
from repro.core.record.rules import apply_drop_rules
from repro.sim.events import FlightRecorder
from repro.sim.metrics import MetricsRegistry


class RecorderError(Exception):
    """Recording-layer failures."""


class Recorder:
    """Device-wide recording handler bound to a call log."""

    # Cost per recorded call, in CPU-seconds on the reference device.
    # Recording is asynchronous in Flux (paper §3.2): only the enqueue
    # cost lands on the app's thread; pruning happens off-path.
    RECORD_CPU_COST = 2e-5

    def __init__(self, registry: InterfaceRegistry, log: CallLog, clock,
                 cpu_factor: float = 1.0,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[FlightRecorder] = None) -> None:
        self._registry = registry
        self._log = log
        self._clock = clock
        self._cpu_factor = cpu_factor
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(enabled=False))
        self.events = (events if events is not None
                       else FlightRecorder(enabled=False))
        self.enabled = True
        #: When False, drop rules are skipped and every decorated call is
        #: kept — the strawman "record everything" design the paper argues
        #: against (§3.2); used by the selective-record ablation bench.
        self.prune = True
        self.calls_seen = 0
        self.calls_recorded = 0
        self.calls_suppressed = 0

    def bind_app(self, package: str) -> "AppRecorder":
        """The per-app facade handed to an app's framework libraries."""
        return AppRecorder(self, package)

    @property
    def log(self) -> CallLog:
        return self._log

    def on_call(self, app: str, descriptor: str, method: str,
                args: Dict[str, Any], result: Any) -> Optional[CallRecord]:
        if not self.enabled:
            return None
        self.calls_seen += 1
        self.metrics.counter("record", "calls_seen", app=app).inc()
        meta = self._registry.meta(descriptor).method(method)
        if not meta.recorded or meta.decoration is None:
            raise RecorderError(
                f"{descriptor}.{method} reached the recorder without a "
                "@record decoration; generated proxy out of sync")
        if self.RECORD_CPU_COST:
            self._clock.advance(self.RECORD_CPU_COST / self._cpu_factor)
        if self.prune:
            outcome = apply_drop_rules(self._log, app, descriptor, method,
                                       args, meta.decoration)
            if outcome.removed_count:
                # Stale entries dropped, attributed to the rule (the
                # decorated method) that pruned them.
                self.metrics.counter(
                    "record", "calls_pruned", app=app,
                    rule=f"{descriptor}.{method}",
                ).inc(outcome.removed_count)
                self.events.emit("record.prune", app=app,
                                 rule=f"{descriptor}.{method}",
                                 removed=outcome.removed_count)
            if outcome.suppress_current:
                self.calls_suppressed += 1
                self.metrics.counter("record", "calls_suppressed",
                                     app=app).inc()
                self.events.emit("record.suppress", app=app,
                                 interface=descriptor, method=method)
                return None
        record = self._log.append(time=self._clock.now, app=app,
                                  interface=descriptor, method=method,
                                  args=args, result=result)
        self.calls_recorded += 1
        self.metrics.counter("record", "calls_recorded", app=app).inc()
        self.metrics.counter("record", "log_bytes",
                             app=app).inc(record.estimated_size())
        self.events.emit("record.append", app=app, interface=descriptor,
                         method=method)
        return record

    def extract_app_log(self, app: str):
        """The app's surviving entries, in order (for the checkpoint image)."""
        return self._log.entries(app)

    def forget_app(self, app: str) -> int:
        """Drop an app's entries (after it migrated away or uninstalled)."""
        return self._log.remove_app(app)


class AppRecorder:
    """Per-app recorder facade; this is what proxies hold."""

    def __init__(self, recorder: Recorder, package: str) -> None:
        self._recorder = recorder
        self.package = package

    def on_call(self, descriptor: str, method: str, args: Dict[str, Any],
                result: Any) -> Optional[CallRecord]:
        return self._recorder.on_call(self.package, descriptor, method,
                                      args, result)
