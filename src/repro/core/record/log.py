"""The per-device call log for Selective Record.

Architecture follows the paper's Figure 5: the recording handler appends
into a log whose index lives in SQLite.  Because replay must re-issue the
*actual* argument objects (PendingIntents, listener binders, …), each
entry's rich payload is kept in memory keyed by sequence number while the
SQLite side holds the queryable metadata (app, interface, method, time)
— the same split a real implementation uses between a blob store and its
index.

The log is device-wide with one namespace per app package; migration
extracts exactly one app's entries.
"""

from __future__ import annotations

import itertools
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class CallRecord:
    """One recorded service call."""

    seq: int
    time: float
    app: str                      # package name
    interface: str                # AIDL descriptor, e.g. 'INotificationManager'
    method: str
    args: Dict[str, Any]          # parameter name -> value (rich objects)
    result: Any = None

    def arg(self, name: str) -> Any:
        return self.args.get(name)

    def estimated_size(self) -> int:
        """Rough serialized size in bytes, for transfer accounting."""
        size = 48 + len(self.interface) + len(self.method)
        for key, value in self.args.items():
            size += len(key) + self._value_size(value)
        return size

    @staticmethod
    def _value_size(value: Any) -> int:
        if isinstance(value, str):
            return 4 + 2 * len(value)
        if isinstance(value, bytes):
            return 4 + len(value)
        if isinstance(value, (int, float, bool)) or value is None:
            return 8
        if isinstance(value, (list, tuple)):
            return 8 + sum(CallRecord._value_size(v) for v in value)
        if isinstance(value, dict):
            return 8 + sum(4 + CallRecord._value_size(v) for v in value.values())
        return 64  # parcelable object


class CallLog:
    """SQLite-indexed append/prune log of recorded service calls.

    Appends are buffered and flushed to SQLite in batches (one
    ``executemany`` instead of a round trip per recorded call) — the
    index only has to be consistent when something *reads* it, and the
    recording hot path runs on every decorated Binder transaction, so
    batching directly lowers the Figure 16 runtime overhead.
    """

    #: Buffered inserts are flushed at this size (or at any read).
    FLUSH_THRESHOLD = 128

    def __init__(self) -> None:
        self._db = sqlite3.connect(":memory:")
        self._db.execute(
            "CREATE TABLE calls ("
            " seq INTEGER PRIMARY KEY,"
            " time REAL NOT NULL,"
            " app TEXT NOT NULL,"
            " interface TEXT NOT NULL,"
            " method TEXT NOT NULL)"
        )
        self._db.execute("CREATE INDEX idx_app ON calls (app, interface, method)")
        self._payloads: Dict[int, CallRecord] = {}
        self._pending: List[tuple] = []
        self._seq = itertools.count(1)
        self.appended = 0
        self.dropped = 0
        self.flushes = 0

    # -- writes ----------------------------------------------------------------

    def append(self, time: float, app: str, interface: str, method: str,
               args: Dict[str, Any], result: Any = None) -> CallRecord:
        record = CallRecord(seq=next(self._seq), time=time, app=app,
                            interface=interface, method=method,
                            args=dict(args), result=result)
        self._pending.append((record.seq, record.time, record.app,
                              record.interface, record.method))
        self._payloads[record.seq] = record
        self.appended += 1
        if len(self._pending) >= self.FLUSH_THRESHOLD:
            self._flush()
        return record

    def _flush(self) -> None:
        """Push buffered appends into the SQLite index."""
        if not self._pending:
            return
        self._db.executemany(
            "INSERT INTO calls (seq, time, app, interface, method) "
            "VALUES (?, ?, ?, ?, ?)", self._pending)
        self._pending.clear()
        self.flushes += 1

    def remove(self, seqs: Iterable[int]) -> int:
        """Delete the given entries; returns how many were removed."""
        self._flush()
        seq_list = list(seqs)
        removed = 0
        for seq in seq_list:
            if self._payloads.pop(seq, None) is not None:
                removed += 1
        if seq_list:
            marks = ",".join("?" * len(seq_list))
            self._db.execute(f"DELETE FROM calls WHERE seq IN ({marks})", seq_list)
        self.dropped += removed
        return removed

    def remove_app(self, app: str) -> int:
        seqs = [r.seq for r in self.entries(app)]
        return self.remove(seqs)

    # -- reads ----------------------------------------------------------------

    def entries(self, app: str, interface: Optional[str] = None,
                method: Optional[str] = None) -> List[CallRecord]:
        """Entries for ``app`` in record order, optionally filtered."""
        self._flush()
        query = "SELECT seq FROM calls WHERE app = ?"
        params: List[Any] = [app]
        if interface is not None:
            query += " AND interface = ?"
            params.append(interface)
        if method is not None:
            query += " AND method = ?"
            params.append(method)
        query += " ORDER BY seq"
        rows = self._db.execute(query, params).fetchall()
        return [self._payloads[seq] for (seq,) in rows]

    def entries_for_methods(self, app: str, interface: str,
                            methods: Iterable[str]) -> List[CallRecord]:
        """Entries for any of ``methods``, in record (seq) order.

        One ``method IN (...)`` query; SQLite returns rows ordered by
        the primary key, so no Python-side sort or merge is needed.
        """
        method_list = list(dict.fromkeys(methods))   # dedup, keep order
        if not method_list:
            return []
        self._flush()
        marks = ",".join("?" * len(method_list))
        rows = self._db.execute(
            f"SELECT seq FROM calls WHERE app = ? AND interface = ?"
            f" AND method IN ({marks}) ORDER BY seq",
            [app, interface, *method_list]).fetchall()
        return [self._payloads[seq] for (seq,) in rows]

    def count(self, app: Optional[str] = None) -> int:
        self._flush()
        if app is None:
            (n,) = self._db.execute("SELECT COUNT(*) FROM calls").fetchone()
        else:
            (n,) = self._db.execute(
                "SELECT COUNT(*) FROM calls WHERE app = ?", (app,)).fetchone()
        return n

    def size_bytes(self, app: str) -> int:
        return sum(r.estimated_size() for r in self.entries(app))

    def apps(self) -> List[str]:
        self._flush()
        rows = self._db.execute("SELECT DISTINCT app FROM calls").fetchall()
        return sorted(a for (a,) in rows)

    # -- durability -------------------------------------------------------------

    def export_index(self, path: str) -> int:
        """Write a durable, inspectable SQLite copy of the log to ``path``.

        The exported database carries the full metadata plus a JSON
        description of each call's arguments (rich argument *objects*
        live in app memory and travel with the checkpoint image, not the
        index — the same split the in-memory log uses).  Returns the
        number of rows written.
        """
        import json

        from repro.core.cria.wire import _describe_value

        disk = sqlite3.connect(path)
        try:
            disk.execute("DROP TABLE IF EXISTS calls")
            disk.execute(
                "CREATE TABLE calls ("
                " seq INTEGER PRIMARY KEY,"
                " time REAL NOT NULL,"
                " app TEXT NOT NULL,"
                " interface TEXT NOT NULL,"
                " method TEXT NOT NULL,"
                " args_json TEXT NOT NULL)")
            rows = 0
            for app in self.apps():
                for record in self.entries(app):
                    disk.execute(
                        "INSERT INTO calls VALUES (?, ?, ?, ?, ?, ?)",
                        (record.seq, record.time, record.app,
                         record.interface, record.method,
                         json.dumps(_describe_value(record.args))))
                    rows += 1
            disk.commit()
            return rows
        finally:
            disk.close()

    @staticmethod
    def read_exported(path: str) -> List[Dict[str, Any]]:
        """Rows of a previously exported index, in sequence order."""
        import json

        disk = sqlite3.connect(path)
        try:
            rows = disk.execute(
                "SELECT seq, time, app, interface, method, args_json "
                "FROM calls ORDER BY seq").fetchall()
        finally:
            disk.close()
        return [{"seq": seq, "time": time, "app": app,
                 "interface": interface, "method": method,
                 "args": json.loads(args_json)}
                for seq, time, app, interface, method, args_json in rows]

    def close(self) -> None:
        self._flush()
        self._db.close()
