"""Migration lifecycle: pairing, the five-stage migration, consistency,
and the gesture trigger."""

from repro.core.migration.consistency import (
    ConsistencyChoice,
    ConsistencyConflict,
    ConsistencyManager,
    MigratedOutRecord,
)
from repro.core.migration.gesture import (
    MigrationGestureTrigger,
    SwipeDetection,
    TouchEvent,
    TwoFingerSwipeDetector,
)
from repro.core.migration.migration import (
    STAGES,
    MigrationReport,
    MigrationService,
)
from repro.core.migration.pairing import (
    PairedApp,
    PairingReport,
    PairingService,
    flux_root,
)
from repro.core.migration.policies import BatteryRescuePolicy, PolicyEvent
from repro.core.migration.stages import (
    MigrationContext,
    Stage,
    StagePipeline,
    default_stages,
)
from repro.core.migration.ui import (
    MenuDecision,
    MenuError,
    MigrationTargetMenu,
    TargetEntry,
)
from repro.core.migration import costs

__all__ = [
    "ConsistencyChoice", "ConsistencyConflict", "ConsistencyManager",
    "MigratedOutRecord", "MigrationGestureTrigger", "SwipeDetection",
    "TouchEvent", "TwoFingerSwipeDetector", "STAGES", "MigrationReport",
    "MigrationService", "PairedApp", "PairingReport", "PairingService",
    "flux_root", "costs", "BatteryRescuePolicy", "PolicyEvent",
    "MenuDecision", "MenuError", "MigrationTargetMenu", "TargetEntry",
    "MigrationContext", "Stage", "StagePipeline", "default_stages",
]
