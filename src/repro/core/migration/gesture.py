"""The two-finger vertical-swipe migration trigger (paper §3.1).

A small gesture recognizer over touch events: two pointers moving
vertically, in the same direction, far enough and fast enough, trigger
the migration UI (modelled as a callback receiving the foreground
package).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TouchEvent:
    time: float
    pointer_id: int
    x: float
    y: float
    action: str            # "down" | "move" | "up"


@dataclass
class SwipeDetection:
    direction: str         # "up" | "down"
    distance: float
    duration: float
    pointer_count: int


class TwoFingerSwipeDetector:
    """Feed touch events; fires the callback on a two-finger vertical swipe."""

    MIN_DISTANCE_PX = 200.0
    MAX_DURATION_S = 0.8
    MAX_HORIZONTAL_DRIFT = 0.5     # |dx| must stay below drift * |dy|

    def __init__(self, on_swipe: Callable[[SwipeDetection], None]) -> None:
        self.on_swipe = on_swipe
        self._tracks: Dict[int, List[TouchEvent]] = {}
        self.detections: List[SwipeDetection] = []

    def feed(self, event: TouchEvent) -> Optional[SwipeDetection]:
        if event.action == "down":
            self._tracks[event.pointer_id] = [event]
            return None
        track = self._tracks.get(event.pointer_id)
        if track is None:
            return None
        track.append(event)
        if event.action != "up":
            return None
        # Evaluate only once every tracked finger has lifted.
        if any(t[-1].action != "up" for t in self._tracks.values()):
            return None
        detection = self._evaluate()
        self._tracks.clear()
        if detection is not None:
            self.detections.append(detection)
            self.on_swipe(detection)
        return detection

    def _evaluate(self) -> Optional[SwipeDetection]:
        finished = [t for t in self._tracks.values()
                    if t[-1].action == "up" and len(t) >= 2]
        if len(finished) != 2 or len(self._tracks) != 2:
            return None
        directions = []
        distances = []
        durations = []
        for track in finished:
            dy = track[-1].y - track[0].y
            dx = track[-1].x - track[0].x
            duration = track[-1].time - track[0].time
            if abs(dy) < self.MIN_DISTANCE_PX:
                return None
            if abs(dx) > self.MAX_HORIZONTAL_DRIFT * abs(dy):
                return None
            if duration > self.MAX_DURATION_S:
                return None
            directions.append("down" if dy > 0 else "up")
            distances.append(abs(dy))
            durations.append(duration)
        if directions[0] != directions[1]:
            return None
        return SwipeDetection(direction=directions[0],
                              distance=min(distances),
                              duration=max(durations),
                              pointer_count=2)


class MigrationGestureTrigger:
    """Binds the detector to a device: swipe -> migrate foreground app."""

    def __init__(self, device,
                 on_trigger: Callable[[str], None]) -> None:
        self.device = device
        self.on_trigger = on_trigger
        self.detector = TwoFingerSwipeDetector(self._on_swipe)

    def _on_swipe(self, detection: SwipeDetection) -> None:
        package = self._foreground_package()
        if package is not None:
            self.on_trigger(package)

    def _foreground_package(self) -> Optional[str]:
        for package in self.device.running_packages():
            thread = self.device.thread_of(package)
            if thread is not None and not thread.in_background:
                return package
        return None

    def swipe(self, direction: str = "up", start_time: float = 0.0) -> None:
        """Synthesize a canonical two-finger swipe (for tests/examples)."""
        dy = -300.0 if direction == "up" else 300.0
        xs = {pointer: 200.0 + pointer * 120.0 for pointer in (0, 1)}
        for pointer, x in xs.items():
            self.detector.feed(TouchEvent(start_time, pointer, x, 600.0,
                                          "down"))
        for pointer, x in xs.items():
            self.detector.feed(TouchEvent(start_time + 0.1, pointer, x,
                                          600.0 + dy / 2, "move"))
        for pointer, x in xs.items():
            self.detector.feed(TouchEvent(start_time + 0.25, pointer, x,
                                          600.0 + dy, "up"))
