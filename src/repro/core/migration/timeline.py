"""ASCII timeline rendering for migration reports.

Turns a MigrationReport's stage timings into the kind of Gantt strip
Figure 13 visualizes, annotated with the user-perceived window (the
stages hidden behind the target menu) and the Figure 14 floor.
"""

from __future__ import annotations

from typing import List

from repro.core.migration.migration import STAGES, MigrationReport


BAR_WIDTH = 60
STAGE_GLYPHS = {
    "preparation": "p",
    "checkpoint": "c",
    "transfer": "=",
    "restore": "r",
    "reintegration": "i",
}


def render_timeline(report: MigrationReport, width: int = BAR_WIDTH) -> str:
    """A proportional strip plus a per-stage legend."""
    total = report.total_seconds
    if total <= 0:
        return "(empty migration report)"
    cells: List[str] = []
    for stage in STAGES:
        seconds = report.stages.get(stage, 0.0)
        span = max(1, round(width * seconds / total)) if seconds else 0
        cells.append(STAGE_GLYPHS[stage] * span)
    strip = "".join(cells)[:width].ljust(width, cells[-1][-1] if cells[-1]
                                         else " ")

    lines = [
        f"{report.package}: {report.home} -> {report.guest} "
        f"({total:.2f}s total)",
        f"|{strip}|",
    ]
    for stage in STAGES:
        seconds = report.stages.get(stage, 0.0)
        glyph = STAGE_GLYPHS[stage]
        lines.append(f"  {glyph} {stage:13s} {seconds:7.3f}s "
                     f"{report.stage_fraction(stage) * 100:5.1f}%")
    lines.append(
        f"  user-perceived (menu hides p+c): "
        f"{report.perceived_seconds:.2f}s; "
        f"excluding transfer: {report.non_transfer_seconds:.2f}s")
    return "\n".join(lines)


def render_sweep_strip(reports: List[MigrationReport],
                       width: int = BAR_WIDTH) -> str:
    """One strip per report, aligned to the slowest for comparison."""
    if not reports:
        return "(no reports)"
    slowest = max(r.total_seconds for r in reports)
    lines = []
    for report in sorted(reports, key=lambda r: r.total_seconds):
        scale = report.total_seconds / slowest
        inner = max(1, round(width * scale))
        cells = []
        for stage in STAGES:
            seconds = report.stages.get(stage, 0.0)
            span = round(inner * seconds / report.total_seconds)
            cells.append(STAGE_GLYPHS[stage] * span)
        strip = "".join(cells)[:inner].ljust(inner, "i")
        lines.append(f"{report.package:28s} "
                     f"{report.total_seconds:6.2f}s |{strip}|")
    lines.append(f"{'legend':28s}         "
                 "p=prep c=checkpoint ==transfer r=restore i=reintegrate")
    return "\n".join(lines)
