"""The migration target menu.

Paper §4: "the preparation and checkpoint stages will largely go
unnoticed as they occur while the user is presented with the migration
target menu and they make their choice."  The menu lists paired guests
with the facts a user picks by (model, screen, battery); choosing one
records the decision time so the perceived-time accounting of Figure 14
has a concrete anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


class MenuError(Exception):
    pass


@dataclass(frozen=True)
class TargetEntry:
    name: str
    model: str
    screen: str
    battery_percent: int
    wifi_mbps: float


@dataclass
class MenuDecision:
    target_name: str
    presented_at: float
    chosen_at: float

    @property
    def decision_seconds(self) -> float:
        return self.chosen_at - self.presented_at


class MigrationTargetMenu:
    """Presents paired guests; the choice callback models the user."""

    #: How long a typical user takes to pick a target — the window that
    #: hides preparation + checkpoint (§4's ~2 s of hidden stages).
    DEFAULT_DECISION_SECONDS = 2.0

    def __init__(self, device, targets: Optional[List] = None) -> None:
        self.device = device
        self._targets = list(targets or [])
        self.decisions: List[MenuDecision] = []

    def add_target(self, guest) -> None:
        if guest not in self._targets:
            self._targets.append(guest)

    def entries(self) -> List[TargetEntry]:
        """What the menu shows: only *paired* targets appear."""
        entries = []
        for guest in self._targets:
            if not self.device.pairing_service.is_paired_with(guest.name):
                continue
            entries.append(TargetEntry(
                name=guest.name,
                model=guest.profile.model,
                screen=str(guest.profile.screen),
                battery_percent=round(guest.battery.level * 100),
                wifi_mbps=guest.profile.wifi_effective_mbps))
        return entries

    def choose(self, name_or_index,
               decision_seconds: Optional[float] = None) -> MenuDecision:
        """The user picks a target; the clock advances by their decision
        time (this is the window preparation+checkpoint hide behind)."""
        entries = self.entries()
        if not entries:
            raise MenuError("no paired migration targets")
        if isinstance(name_or_index, int):
            try:
                entry = entries[name_or_index]
            except IndexError:
                raise MenuError(f"no menu entry {name_or_index}") from None
        else:
            matches = [e for e in entries if e.name == name_or_index]
            if not matches:
                raise MenuError(f"no paired target named {name_or_index!r}")
            (entry,) = matches
        presented_at = self.device.clock.now
        seconds = (decision_seconds if decision_seconds is not None
                   else self.DEFAULT_DECISION_SECONDS)
        self.device.clock.advance(seconds)
        decision = MenuDecision(target_name=entry.name,
                                presented_at=presented_at,
                                chosen_at=self.device.clock.now)
        self.decisions.append(decision)
        return decision

    def target_by_name(self, name: str):
        for guest in self._targets:
            if guest.name == name:
                return guest
        raise MenuError(f"unknown target {name!r}")
