"""The migration service: orchestrates the five stages of Figure 13.

1. **Preparation** — background the app (task idler frees surfaces),
   trim memory at highest severity, eglUnload the vendor GL library.
2. **Checkpoint** — CRIA freezes the process and captures the image,
   including the pruned record log.
3. **Transfer** — verify/sync APK and data deltas, send the compressed
   image over the link.
4. **Restore** — CRIA resurrects the app in the wrapper on the guest,
   in a private PID namespace with its Binder handles re-injected.
5. **Reintegration** — adaptively replay the record log, signal the
   connectivity interrupt and hardware changes, bring the app to the
   foreground.

The report separates total, user-perceived (preparation and checkpoint
hide behind the target-selection menu) and non-transfer times, matching
the paper's Figures 12-14 definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.android.net.link import Link, link_between
from repro.core.cria.checkpoint import checkpoint_app
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.cria.image import CheckpointImage
from repro.core.cria.preparation import check_preparable, prepare_app
from repro.core.cria.restore import restore_app
from repro.core.extensions import FluxExtensions
from repro.core.migration import costs
from repro.core.replay.engine import ReplayReport, replay_log
from repro.sim.clock import Stopwatch


STAGES = ("preparation", "checkpoint", "transfer", "restore", "reintegration")


@dataclass
class MigrationReport:
    package: str
    home: str
    guest: str
    success: bool = False
    refusal: Optional[MigrationRefusal] = None
    refusal_detail: str = ""
    stages: Dict[str, float] = field(default_factory=dict)
    image_raw_bytes: int = 0
    image_compressed_bytes: int = 0
    #: Image bytes that actually crossed the wire.  Equal to
    #: ``image_compressed_bytes`` on the serial path; smaller under
    #: ``pipelined_transfer`` when the guest's chunk store hit.
    image_wire_bytes: int = 0
    data_delta_bytes: int = 0
    record_log_entries: int = 0
    record_log_bytes: int = 0
    #: Chunked-transfer stats (pipelined_transfer only; else zero).
    transfer_chunks_total: int = 0
    transfer_chunks_cached: int = 0
    chunk_bytes_cached: int = 0
    replay: Optional[ReplayReport] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.stages.values())

    @property
    def perceived_seconds(self) -> float:
        """Total minus the stages hidden behind the target menu (§4)."""
        return self.total_seconds - self.stages.get("preparation", 0.0) \
            - self.stages.get("checkpoint", 0.0)

    @property
    def non_transfer_seconds(self) -> float:
        """Figure 14: user-perceived time excluding data transfer."""
        return self.perceived_seconds - self.stages.get("transfer", 0.0)

    @property
    def transferred_bytes(self) -> int:
        """Figure 15's 'data transferred' — what crossed the wire."""
        image_bytes = self.image_wire_bytes or self.image_compressed_bytes
        return image_bytes + self.data_delta_bytes

    @property
    def chunk_hit_rate(self) -> float:
        """Fraction of image chunks the guest's store already had."""
        if not self.transfer_chunks_total:
            return 0.0
        return self.transfer_chunks_cached / self.transfer_chunks_total

    def stage_fraction(self, stage: str) -> float:
        total = self.total_seconds
        return self.stages.get(stage, 0.0) / total if total else 0.0


class MigrationService:
    """Runs on the home device; drives migrations to paired guests.

    ``extensions`` (per call, else the device's defaults) selects which
    of the paper's §3.4 extension sketches are active; everything is
    off by default, matching the published prototype.
    """

    def __init__(self, device,
                 extensions: Optional[FluxExtensions] = None) -> None:
        self.device = device
        self.extensions = extensions
        self.history: List[MigrationReport] = []

    def _extensions(self,
                    override: Optional[FluxExtensions]) -> FluxExtensions:
        if override is not None:
            return override
        if self.extensions is not None:
            return self.extensions
        return getattr(self.device, "extensions", None) \
            or FluxExtensions.none()

    def migrate(self, guest, package: str,
                link: Optional[Link] = None,
                extensions: Optional[FluxExtensions] = None
                ) -> MigrationReport:
        """Migrate ``package`` from this device to ``guest``.

        Raises :class:`MigrationError` on refusal; the failed report is
        still appended to ``history`` with the refusal reason.
        """
        home = self.device
        report = MigrationReport(package=package, home=home.name,
                                 guest=guest.name)
        self.history.append(report)
        try:
            self._migrate(guest, package, link, report,
                          self._extensions(extensions))
        except MigrationError as error:
            report.refusal = error.reason
            report.refusal_detail = error.detail
            self._recover_home(package)
            raise
        report.success = True
        return report

    # -- the five stages ----------------------------------------------------

    def _migrate(self, guest, package: str, link: Optional[Link],
                 report: MigrationReport,
                 extensions: FluxExtensions) -> None:
        home = self.device
        pairing = home.pairing_service
        if not pairing.is_paired_with(guest.name):
            raise MigrationError(MigrationRefusal.NOT_PAIRED,
                                 f"{home.name} !~ {guest.name}")
        thread = home.thread_of(package)
        if thread is None:
            raise MigrationError(MigrationRefusal.NOT_RUNNING, package)
        info = home.package_service.get_package(package)
        if info.api_level > guest.profile.api_level:
            raise MigrationError(
                MigrationRefusal.API_LEVEL_INCOMPATIBLE,
                f"needs API {info.api_level} > guest "
                f"{guest.profile.api_level}")

        link = link or link_between(home.profile, guest.profile,
                                    home.rng_factory)
        watch = Stopwatch(home.clock)
        process = thread.process

        # Stage 1: preparation.
        watch.start("preparation")
        check_preparable(home, package, extensions)
        view_count = sum(a.view_root.view_count()
                         for a in thread.activities.values()
                         if a.view_root is not None)
        context_count = home.vendor_gl.live_context_count(process.pid)
        prep_report = prepare_app(home, package, extensions)
        home.clock.advance(costs.preparation_cost(
            view_count, context_count, home.profile.cpu_factor))
        watch.stop()

        # Stage 2: checkpoint.  On the pipelined path compression is
        # deferred to the transfer stage where it overlaps the wire;
        # the serial path serializes+compresses here, as published.
        watch.start("checkpoint")
        image = checkpoint_app(home, package, extensions)
        if prep_report.gl_capture is not None:
            image.metadata["gl_capture"] = prep_report.gl_capture
        report.image_raw_bytes = image.raw_bytes()
        report.image_compressed_bytes = image.compressed_bytes()
        report.record_log_entries = len(image.record_log)
        report.record_log_bytes = image.record_log_bytes()
        if extensions.pipelined_transfer:
            home.clock.advance(costs.serialize_cost(
                report.image_raw_bytes, home.profile.cpu_factor))
        else:
            home.clock.advance(costs.checkpoint_cost(
                report.image_raw_bytes, home.profile.cpu_factor))
        watch.stop()

        # Stage 3: transfer (verify + sync deltas, then the image).
        watch.start("transfer")
        from repro.core.cria.wire import serialize_image, verify_against_image
        frame = serialize_image(image)
        report.data_delta_bytes = pairing.verify_app(guest, package, link)
        if extensions.pipelined_transfer:
            self._transfer_pipelined(guest, image, link, report)
        else:
            report.image_wire_bytes = report.image_compressed_bytes
            link.transfer(report.transferred_bytes, home.clock)
        watch.stop()

        # Stage 4: restore on the guest — only after the received frame
        # passes its integrity checks.
        watch.start("restore")
        verify_against_image(frame, image)
        restored = restore_app(guest, image)
        home.clock.advance(costs.restore_cost(
            report.image_raw_bytes, guest.profile.cpu_factor))
        watch.stop()

        # Stage 5: reintegration.
        watch.start("reintegration")
        report.replay = replay_log(
            guest, restored, image, extensions,
            home_location_service=(home.service("location")
                                   if extensions.gps_tether else None))
        restored.process.thaw()
        for proc in restored.secondary_processes:
            proc.thaw()
        self._reintegrate(guest, restored, image, extensions)
        home.clock.advance(costs.reintegration_cost(
            report.replay.total_handled, guest.profile.cpu_factor))
        watch.stop()

        for span in watch.spans():
            report.stages[span.name] = span.duration

        self._cleanup_home(package)
        home.consistency.mark_migrated_out(package, guest.name)
        home.tracer.emit("migration", "migrated", package=package,
                         guest=guest.name,
                         total=round(report.total_seconds, 3))

    def _transfer_pipelined(self, guest, image, link,
                            report: MigrationReport) -> None:
        """Chunked transfer: digest negotiation, chunk cache, pipeline.

        The image is split into content-addressed chunks; the guest's
        chunk store is consulted so only unseen chunks travel, and the
        compression of chunk *i+1* overlaps the send of chunk *i* on
        the virtual clock (pipeline fill + drain, not sum-of-stages).
        The app-data delta was already synced by ``verify_app``.
        """
        from repro.core.migration.chunks import chunk_image

        home = self.device
        plan = chunk_image(image)
        cached, missing = guest.chunk_store.split(plan)
        report.transfer_chunks_total = len(plan)
        report.transfer_chunks_cached = len(cached)
        report.chunk_bytes_cached = sum(c.raw_bytes for c in cached)

        # Digest negotiation + the data delta ride one round trip.
        negotiation_bytes = costs.CHUNK_DIGEST_BYTES * len(plan)
        link.transfer(report.data_delta_bytes + negotiation_bytes,
                      home.clock)

        wire_sizes = [c.wire_bytes for c in missing]
        compress_times = [costs.chunk_compress_cost(
            c.raw_bytes, home.profile.cpu_factor) for c in missing]
        send_times = link.burst_send_seconds(wire_sizes)
        burst_seconds = link.latency_s + costs.pipeline_seconds(
            compress_times, send_times)
        link.record_transfer(sum(wire_sizes), burst_seconds, home.clock)
        report.image_wire_bytes = sum(wire_sizes) + negotiation_bytes

        # Both ends now hold every chunk: the guest received them, the
        # home sent (and can re-derive) them — so a later return hop
        # (guest -> home) benefits symmetrically.
        guest.chunk_store.add_many(plan)
        home.chunk_store.add_many(plan)

    def _reintegrate(self, guest, restored, image,
                     extensions: FluxExtensions) -> None:
        """Hardware-change + connectivity signals, then foreground."""
        thread = restored.thread
        # Conditional initialization rebuilds the UI sized for the guest.
        thread.rebuild_view_roots()
        gl_capture = image.metadata.get("gl_capture")
        if gl_capture is not None and extensions.gl_record_replay:
            from repro.core.glreplay import replay_capture
            uploaded = replay_capture(thread, gl_capture)
            guest.tracer.emit("glreplay", "replayed",
                              package=restored.package, bytes=uploaded)
        config = {"screen": guest.profile.screen,
                  "country": guest.profile.country}
        thread.on_configuration_changed(config)
        # Connectivity appears as a loss followed by a new connection.
        guest.service("connectivity").simulate_connectivity_interrupt()
        guest.activity_service.foreground_app(restored.package)

    # -- home-side aftermath -----------------------------------------------------

    def _cleanup_home(self, package: str) -> None:
        """Remove every residual the app leaves in home-side services.

        The app's live state now belongs to the guest; anything still
        visible here — notifications on the status bar, armed alarms,
        held locks — is exactly the residual-dependency problem the
        paper's design eliminates.  (Found by the model-based ring test:
        a stale notification resurfaced when the app later migrated back
        to a device that had kept its old service state.)
        """
        from repro.android.services.base import SystemService

        home = self.device
        home.service("power").release_all_for(package)
        home.service("camera").release_all_for(package)
        home.service("alarm").cancel_all_for(package)
        home.recorder.forget_app(package)
        home.terminate_app(package)
        for service in home.services.values():
            if isinstance(service, SystemService):
                service.drop_app_state(package)

    def _recover_home(self, package: str) -> None:
        """After a refusal mid-flight, bring the app back if still here."""
        home = self.device
        thread = home.thread_of(package)
        if thread is None:
            return
        try:
            if thread.process.state.value == "frozen":
                thread.process.thaw()
            home.activity_service.foreground_app(package)
        except Exception:
            pass
