"""The migration service: orchestrates the five stages of Figure 13.

1. **Preparation** — background the app (task idler frees surfaces),
   trim memory at highest severity, eglUnload the vendor GL library.
2. **Checkpoint** — CRIA freezes the process and captures the image,
   including the pruned record log.
3. **Transfer** — verify/sync APK and data deltas, send the compressed
   image over the link.
4. **Restore** — CRIA resurrects the app in the wrapper on the guest,
   in a private PID namespace with its Binder handles re-injected.
5. **Reintegration** — adaptively replay the record log, signal the
   connectivity interrupt and hardware changes, bring the app to the
   foreground.

Each stage is a :class:`repro.core.migration.stages.Stage` object with a
forward action and a rollback action; the :class:`StagePipeline` runs
them atomically — a fault at any stage (an injected link drop, a failed
restore) rolls completed stages back so the app is still running on the
home device and the guest holds no partial process state.  Stage timing
comes from the pipeline's hierarchical tracer spans.

The report separates total, user-perceived (preparation and checkpoint
hide behind the target-selection menu) and non-transfer times, matching
the paper's Figures 12-14 definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.android.net.link import Link, link_between
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.cria.restore import RestoreFaultPlan
from repro.core.extensions import FluxExtensions
from repro.core.migration.stages import MigrationContext, StagePipeline
from repro.core.replay.engine import ReplayReport
from repro.sim.scheduler import drive_sync


STAGES = ("preparation", "checkpoint", "transfer", "restore", "reintegration")


@dataclass
class MigrationReport:
    package: str
    home: str
    guest: str
    success: bool = False
    refusal: Optional[MigrationRefusal] = None
    refusal_detail: str = ""
    #: Stage name -> seconds, derived from the pipeline's tracer spans.
    #: On a faulted migration this holds every completed stage plus the
    #: faulted stage's partial duration.
    stages: Dict[str, float] = field(default_factory=dict)
    #: Name of the stage a fault aborted the migration in (None when
    #: the migration succeeded or was refused before the pipeline ran).
    faulted_stage: Optional[str] = None
    image_raw_bytes: int = 0
    image_compressed_bytes: int = 0
    #: Image bytes that actually crossed the wire.  Equal to
    #: ``image_compressed_bytes`` on the serial path; smaller under
    #: ``pipelined_transfer`` when the guest's chunk store hit.  On a
    #: link-faulted migration: the bytes delivered before the drop.
    image_wire_bytes: int = 0
    data_delta_bytes: int = 0
    record_log_entries: int = 0
    record_log_bytes: int = 0
    #: Chunked-transfer stats (pipelined_transfer only; else zero).
    transfer_chunks_total: int = 0
    transfer_chunks_cached: int = 0
    chunk_bytes_cached: int = 0
    replay: Optional[ReplayReport] = None
    #: The stage that dominated this migration's wall time, and the
    #: dominant-descendant chain under it (derived from the span tree):
    #: each entry is ``{"name", "category", "seconds", "self_seconds"}``.
    dominant_stage: Optional[str] = None
    critical_path: List[Dict[str, object]] = field(default_factory=list)
    #: Contention decomposition of the session's wall time, populated by
    #: the scenario runner (None on the synchronous single-migration
    #: path, where wall time == work time by construction).  Keys:
    #: ``wall_s``, ``admission_queue_s``, ``resource_wait_s``,
    #: ``link_dilation_s``, ``active_s`` — the last four sum to
    #: ``wall_s`` within float tolerance.
    wait_profile: Optional[Dict[str, float]] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.stages.values())

    @property
    def perceived_seconds(self) -> float:
        """Total minus the stages hidden behind the target menu (§4)."""
        return self.total_seconds - self.stages.get("preparation", 0.0) \
            - self.stages.get("checkpoint", 0.0)

    @property
    def non_transfer_seconds(self) -> float:
        """Figure 14: user-perceived time excluding data transfer."""
        return self.perceived_seconds - self.stages.get("transfer", 0.0)

    @property
    def interaction_seconds(self) -> float:
        """Time until the user can interact again, excluding transfer.

        Alias of :attr:`non_transfer_seconds` under the name the
        experiment harness uses for the Figure 14 "time to interactive"
        reading.
        """
        return self.non_transfer_seconds

    @property
    def transferred_bytes(self) -> int:
        """Figure 15's 'data transferred' — what crossed the wire."""
        image_bytes = self.image_wire_bytes or self.image_compressed_bytes
        return image_bytes + self.data_delta_bytes

    @property
    def chunk_hit_rate(self) -> float:
        """Fraction of image chunks the guest's store already had."""
        if not self.transfer_chunks_total:
            return 0.0
        return self.transfer_chunks_cached / self.transfer_chunks_total

    def stage_fraction(self, stage: str) -> float:
        total = self.total_seconds
        return self.stages.get(stage, 0.0) / total if total else 0.0

    def stage_self_seconds(self, stage: str) -> float:
        """Self time of a stage on the critical path (0.0 if absent)."""
        for entry in self.critical_path:
            if entry["name"] == stage:
                return float(entry["self_seconds"])
        return 0.0


class MigrationService:
    """Runs on the home device; drives migrations to paired guests.

    ``extensions`` (per call, else the device's defaults) selects which
    of the paper's §3.4 extension sketches are active; everything is
    off by default, matching the published prototype.
    """

    def __init__(self, device,
                 extensions: Optional[FluxExtensions] = None) -> None:
        self.device = device
        self.extensions = extensions
        self.history: List[MigrationReport] = []

    def _extensions(self,
                    override: Optional[FluxExtensions]) -> FluxExtensions:
        if override is not None:
            return override
        if self.extensions is not None:
            return self.extensions
        return getattr(self.device, "extensions", None) \
            or FluxExtensions.none()

    def migrate(self, guest, package: str,
                link: Optional[Link] = None,
                extensions: Optional[FluxExtensions] = None,
                restore_fault: Optional[RestoreFaultPlan] = None
                ) -> MigrationReport:
        """Migrate ``package`` from this device to ``guest``.

        Raises :class:`MigrationError` on refusal or on a fault (link
        drop, restore failure); the failed report is still appended to
        ``history`` with the refusal reason and, for pipeline faults,
        the faulted stage.  ``restore_fault`` arms deterministic restore
        fault injection (tests/experiments); link faults are armed on
        the ``link`` itself via :class:`LinkFaultPlan`.
        """
        return drive_sync(
            self.migrate_steps(guest, package, link=link,
                               extensions=extensions,
                               restore_fault=restore_fault),
            self.device.clock)

    def migrate_steps(self, guest, package: str,
                      link: Optional[Link] = None,
                      extensions: Optional[FluxExtensions] = None,
                      restore_fault: Optional[RestoreFaultPlan] = None):
        """Generator form of :meth:`migrate` for cooperative scheduling.

        Yields the pipeline's charge points (so a
        :class:`~repro.sim.scheduler.Scheduler` can interleave several
        migrations) and returns the :class:`MigrationReport`;
        :meth:`migrate` is exactly this generator driven inline.  Each
        attempt gets a deterministic session label
        ``<home>/<package>@<attempt>`` carried on both telemetry planes.
        """
        home = self.device
        session = f"{home.name}/{package}@{len(self.history)}"
        report = MigrationReport(package=package, home=home.name,
                                 guest=guest.name)
        self.history.append(report)
        try:
            yield from self._migrate(guest, package, link, report,
                                     self._extensions(extensions),
                                     restore_fault, session)
        except MigrationError as error:
            report.refusal = error.reason
            report.refusal_detail = error.detail
            self._recover_home(package)
            raise
        report.success = True
        return report

    # -- the five stages ----------------------------------------------------

    def _migrate(self, guest, package: str, link: Optional[Link],
                 report: MigrationReport,
                 extensions: FluxExtensions,
                 restore_fault: Optional[RestoreFaultPlan] = None,
                 session: str = ""):
        home = self.device
        pairing = home.pairing_service
        if not pairing.is_paired_with(guest.name):
            raise MigrationError(MigrationRefusal.NOT_PAIRED,
                                 f"{home.name} !~ {guest.name}")
        thread = home.thread_of(package)
        if thread is None:
            raise MigrationError(MigrationRefusal.NOT_RUNNING, package)
        info = home.package_service.get_package(package)
        if info.api_level > guest.profile.api_level:
            raise MigrationError(
                MigrationRefusal.API_LEVEL_INCOMPATIBLE,
                f"needs API {info.api_level} > guest "
                f"{guest.profile.api_level}")

        link = link or link_between(home.profile, guest.profile,
                                    home.rng_factory, metrics=home.metrics,
                                    events=home.events,
                                    timeline=getattr(home, "timeline", None))
        if not link.metrics.enabled:
            # Caller-built links (fault injection, tests) inherit the
            # home device's registry so transfer metrics are not lost.
            link.metrics = home.metrics
        if not link.events.enabled:
            # Same for the causal event log: link.fault / link.transfer
            # events land in the home device's flight recorder.
            link.events = home.events
        home_timeline = getattr(home, "timeline", None)
        if (home_timeline is not None
                and not getattr(link.timeline, "enabled", False)):
            # And for the time-series plane: wire-occupancy samples.
            link.timeline = home_timeline
        ctx = MigrationContext(
            home=home, guest=guest, package=package, link=link,
            report=report, extensions=extensions,
            restore_fault=restore_fault,
            thread=thread, process=thread.process, session=session)
        yield from StagePipeline().steps(ctx)

        # Post-commit: every stage succeeded; the app now lives on the
        # guest, so erase the home-side residuals and mark consistency.
        self._cleanup_home(package)
        home.consistency.mark_migrated_out(package, guest.name)
        home.metrics.counter("migration", "sessions",
                             session=session, app=package).inc()
        home.tracer.emit("migration", "migrated", package=package,
                         guest=guest.name,
                         total=round(report.total_seconds, 3))

    # -- home-side aftermath -----------------------------------------------------

    def _cleanup_home(self, package: str) -> None:
        """Remove every residual the app leaves in home-side services.

        The app's live state now belongs to the guest; anything still
        visible here — notifications on the status bar, armed alarms,
        held locks — is exactly the residual-dependency problem the
        paper's design eliminates.  (Found by the model-based ring test:
        a stale notification resurfaced when the app later migrated back
        to a device that had kept its old service state.)
        """
        from repro.android.services.base import SystemService

        home = self.device
        home.service("power").release_all_for(package)
        home.service("camera").release_all_for(package)
        home.service("alarm").cancel_all_for(package)
        home.recorder.forget_app(package)
        home.terminate_app(package)
        for service in home.services.values():
            if isinstance(service, SystemService):
                service.drop_app_state(package)

    def _recover_home(self, package: str) -> None:
        """Final safety net after a refusal or rolled-back fault.

        The stage pipeline already compensated stage by stage; this
        re-checks the invariant (app thawed and foregrounded if it is
        still here) so even a failed compensation leaves the home
        device usable.
        """
        home = self.device
        thread = home.thread_of(package)
        if thread is None:
            return
        try:
            if thread.process.state.value == "frozen":
                thread.process.thaw()
            home.activity_service.foreground_app(package)
        except Exception:
            pass
