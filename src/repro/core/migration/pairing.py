"""Pairing: one-time preparation of a guest device for migrations.

Paper §3.1: pairing (1) syncs the home device's core frameworks and
libraries to a private area on the guest's data partition, hard-linking
files identical to the guest's own system partition (rsync
``--link-dest``); (2) syncs each app's APK and data directories
(including app-specific SD card directories, but not common SD data);
(3) pseudo-installs each APK's metadata with the guest's
PackageManagerService, creating the wrapper app; (4) refuses apps whose
required API level exceeds the guest's stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.android.net.link import Link, link_between
from repro.android.storage.sync import RsyncEngine, SyncResult
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.migration import costs


def flux_root(home_name: str) -> str:
    """Guest-side private area holding a home device's synced files."""
    return f"/data/flux/{home_name}"


@dataclass
class PairedApp:
    package: str
    version_code: int
    apk_synced_bytes: int
    data_synced_bytes: int


@dataclass
class PairingReport:
    home: str
    guest: str
    framework_sync: SyncResult
    apps: List[PairedApp] = field(default_factory=list)
    incompatible: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def constant_bytes_total(self) -> int:
        """Logical size of the constant data set (paper: 215 MB)."""
        return self.framework_sync.bytes_total

    @property
    def constant_bytes_after_linking(self) -> int:
        """What remains after hard links (paper: 123 MB)."""
        return self.framework_sync.bytes_after_linking

    @property
    def constant_bytes_compressed(self) -> int:
        """Compressed delta over the wire (paper: 56 MB)."""
        return self.framework_sync.bytes_compressed


class PairingService:
    """Runs on every Flux device; pairs this (home) device with guests."""

    def __init__(self, device) -> None:
        self.device = device
        self._paired_with: Dict[str, PairingReport] = {}

    def is_paired_with(self, guest_name: str) -> bool:
        return guest_name in self._paired_with

    def pairing_with(self, guest_name: str) -> Optional[PairingReport]:
        return self._paired_with.get(guest_name)

    def pair(self, guest, link: Optional[Link] = None) -> PairingReport:
        """Pair this home device with ``guest``; returns the report."""
        home = self.device
        link = link or link_between(home.profile, guest.profile,
                                    home.rng_factory,
                                    metrics=getattr(home, "metrics", None),
                                    events=getattr(home, "events", None))
        started = home.clock.now
        rsync = RsyncEngine()

        # 1. Core frameworks + libraries, hard-linked against the guest's
        #    own /system where contents are identical.
        framework_sync = rsync.sync(
            home.storage, "/system",
            guest.storage, f"{flux_root(home.name)}/system",
            link_dest_prefix="/system")
        home.clock.advance(costs.pairing_scan_cost(
            framework_sync.files_considered, home.profile.cpu_factor))
        link.transfer(framework_sync.bytes_compressed, home.clock)

        report = PairingReport(home=home.name, guest=guest.name,
                               framework_sync=framework_sync)

        # 2 + 3. Per-app APKs, data directories, pseudo-install.
        for info in home.package_service.installed_packages(
                include_pseudo=False):
            if info.api_level > guest.profile.api_level:
                report.incompatible.append(info.package)
                continue
            report.apps.append(
                self._pair_app(guest, link, rsync, info))

        report.seconds = home.clock.now - started
        self._paired_with[guest.name] = report
        guest_pairing = getattr(guest, "pairing_service", None)
        if guest_pairing is not None:
            guest_pairing._paired_with.setdefault(home.name, report)
        home.tracer.emit("pairing", "paired", guest=guest.name,
                         apps=len(report.apps),
                         constant_mb=round(
                             report.constant_bytes_total / 2**20, 1))
        return report

    def _pair_app(self, guest, link: Link, rsync: RsyncEngine,
                  info) -> PairedApp:
        home = self.device
        package = info.package
        root = flux_root(home.name)

        apk_sync = rsync.sync(home.storage, f"/data/app/{package}.apk",
                              guest.storage, f"{root}/app/{package}.apk")
        data_sync = rsync.sync(home.storage, f"/data/data/{package}",
                               guest.storage, f"{root}/data/{package}")
        sd_sync = rsync.sync(home.storage,
                             f"/sdcard/Android/data/{package}",
                             guest.storage,
                             f"{root}/sdcard/{package}")
        payload = (apk_sync.bytes_compressed + data_sync.bytes_compressed
                   + sd_sync.bytes_compressed)
        if payload:
            link.transfer(payload, home.clock)

        if not (guest.package_service.is_installed(package)
                and not guest.package_service.is_pseudo(package)):
            # No wrapper needed when the guest has a native install; the
            # migrated instance is kept distinct from it (paper §3.4).
            guest.package_service.pseudo_install(info)
        home.clock.advance(costs.PAIRING_PSEUDO_INSTALL_COST
                           / home.profile.cpu_factor)
        return PairedApp(
            package=package, version_code=info.version_code,
            apk_synced_bytes=apk_sync.bytes_delta,
            data_synced_bytes=(data_sync.bytes_delta + sd_sync.bytes_delta))

    # -- migration-time verification (paper: APK verified, updated if stale) --

    def verify_app(self, guest, package: str,
                   link: Optional[Link] = None) -> int:
        """Re-verify a paired app's APK/data; returns delta bytes moved."""
        home = self.device
        if not self.is_paired_with(guest.name):
            raise MigrationError(MigrationRefusal.NOT_PAIRED,
                                 f"{home.name} not paired with {guest.name}")
        link = link or link_between(home.profile, guest.profile,
                                    home.rng_factory,
                                    metrics=getattr(home, "metrics", None),
                                    events=getattr(home, "events", None))
        rsync = RsyncEngine()
        root = flux_root(home.name)
        apk_sync = rsync.sync(home.storage, f"/data/app/{package}.apk",
                              guest.storage, f"{root}/app/{package}.apk")
        data_sync = rsync.sync(home.storage, f"/data/data/{package}",
                               guest.storage, f"{root}/data/{package}")
        sd_sync = rsync.sync(home.storage,
                             f"/sdcard/Android/data/{package}",
                             guest.storage, f"{root}/sdcard/{package}")
        delta = (apk_sync.bytes_compressed + data_sync.bytes_compressed
                 + sd_sync.bytes_compressed)
        info = home.package_service.get_package(package)
        if info.api_level > guest.profile.api_level:
            raise MigrationError(
                MigrationRefusal.API_LEVEL_INCOMPATIBLE,
                f"{package} needs API {info.api_level}")
        if not guest.package_service.is_installed(package):
            # Installed on the home device since the original pairing:
            # the per-app sync above covered it; create the wrapper now.
            guest.package_service.pseudo_install(info)
        else:
            guest_info = guest.package_service.get_package(package)
            if (guest_info.pseudo
                    and guest_info.version_code != info.version_code):
                guest.package_service.pseudo_install(info)
        return delta
