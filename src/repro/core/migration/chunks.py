"""Content-addressed chunking of checkpoint images.

The paper's §4 names transfer as the dominant migration stage (>50% of
total time) and sketches transfer optimization as future work.  This
module implements the state-movement half of that sketch: the checkpoint
image is split into fixed-size, content-addressed chunks, and every
device keeps a :class:`ChunkStore` — a digest-indexed record of chunks
it has already received (or sent).  A repeat migration to the same guest
then negotiates digests first and moves only the chunks the guest has
never seen; for the common ring patterns (battery rescue round trips,
meeting pass-arounds) that is a small fraction of the image.

Chunk addressing is conservative: a chunk's digest covers the owning
region's full content hash plus the chunk's offset, so *any* change to a
region invalidates all of its chunks, and the always-changing parts of
an image (header/descriptor tables, the record log) are addressed by
checkpoint time so they are never falsely deduplicated.  The store holds
digests and sizes only — chunk payloads live in the checkpoint image
itself; this mirrors how a real implementation would index a blob cache.

Used only on the ``FluxExtensions.pipelined_transfer`` path; the default
migration keeps the paper-faithful whole-image transfer.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.cria.image import CheckpointImage, IMAGE_COMPRESSION_RATIO
from repro.sim import units
from repro.sim.metrics import MetricsRegistry


#: Raw (uncompressed) bytes per chunk.  256 KB keeps the digest table
#: small (a 14 MB image is ~55 chunks) while chunking finely enough that
#: partial image changes keep most of their chunks cacheable.
CHUNK_BYTES = units.kb(256)


@dataclass(frozen=True)
class Chunk:
    """One content-addressed slice of a checkpoint image."""

    digest: str
    raw_bytes: int
    label: str = ""                 # "pid:region:offset", for diagnostics

    @property
    def wire_bytes(self) -> int:
        """Compressed bytes this chunk occupies on the wire."""
        return int(self.raw_bytes * IMAGE_COMPRESSION_RATIO)


def _digest(*parts: object) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def _prefix_hasher(*parts: object):
    """A hasher pre-fed with ``parts``; ``copy()`` it per chunk.

    Splitting a large region produces many chunks whose digests share
    the ``("region", content_hash)`` prefix; hashing the prefix once and
    cloning the hasher state per chunk produces byte-identical digests
    to :func:`_digest` at a fraction of the cost (the profile showed
    per-chunk digest construction on the sweep's critical path).
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\x00")
    return h


def chunk_image(image: CheckpointImage,
                chunk_bytes: int = CHUNK_BYTES) -> List[Chunk]:
    """Split ``image`` into content-addressed chunks.

    The chunk sizes sum exactly to ``image.raw_bytes()`` so the chunked
    and whole-image accounting agree.  Memory-region chunks are
    addressed by region content (cacheable across migrations while the
    region is unchanged); the header/descriptor chunk and the record-log
    chunk are addressed by checkpoint time (live state, never assumed
    cached).
    """
    if chunk_bytes <= 0:
        raise ValueError(f"bad chunk size {chunk_bytes!r}")
    chunks: List[Chunk] = []

    # Image header + binder/fd/thread descriptor tables: one chunk,
    # keyed by checkpoint time — descriptors change with live state.
    descriptor_bytes = 4096
    for proc in image.processes:
        descriptor_bytes += (
            len(proc.binder_refs) * image.BINDER_REF_BYTES
            + len(proc.fds) * image.FD_BYTES
            + len(proc.threads) * image.THREAD_BYTES)
    chunks.append(Chunk(
        digest=_digest("descriptors", image.package, image.checkpoint_time),
        raw_bytes=descriptor_bytes, label="descriptors"))

    # Memory regions (CODE pages never travel: the APK was synced at
    # pairing — same rule as ProcessImage.anonymous_memory_bytes).
    for proc in image.processes:
        for region in proc.regions:
            if region.kind.value == "code":
                continue
            prefix = _prefix_hasher("region", region.content_hash())
            label_head = f"{proc.virtual_pid}:{region.name}:"
            offset = 0
            while offset < region.size:
                length = min(chunk_bytes, region.size - offset)
                h = prefix.copy()
                h.update(f"{offset}\x00{length}\x00".encode("utf-8"))
                chunks.append(Chunk(
                    digest=h.hexdigest(),
                    raw_bytes=length,
                    label=label_head + str(offset)))
                offset += length

    # The pruned record log: replayed live state, keyed by checkpoint
    # time so two migrations never share it even if sizes coincide.
    log_bytes = image.record_log_bytes()
    if log_bytes:
        chunks.append(Chunk(
            digest=_digest("record-log", image.package,
                           image.checkpoint_time, log_bytes),
            raw_bytes=log_bytes, label="record-log"))
    return chunks


class ChunkStore:
    """Digest-indexed record of chunks a device has seen, with LRU cap.

    Persists for the life of the device (across migrations), which is
    what makes ring tests and repeat migrations cheap: the second
    transfer of an unchanged heap region is a digest lookup, not a wire
    payload.
    """

    def __init__(self, capacity_bytes: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"bad capacity {capacity_bytes!r}")
        self.capacity_bytes = capacity_bytes
        self._chunks: "OrderedDict[str, int]" = OrderedDict()
        self.bytes_stored = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(enabled=False))

    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, digest: str) -> bool:
        return digest in self._chunks

    def add(self, chunk: Chunk) -> None:
        """Record ``chunk`` as present, refreshing its LRU position."""
        if chunk.digest in self._chunks:
            self._chunks.move_to_end(chunk.digest)
            return
        self._chunks[chunk.digest] = chunk.raw_bytes
        self.bytes_stored += chunk.raw_bytes
        self._evict()
        self.metrics.gauge("chunks", "store_bytes").set(self.bytes_stored)

    def add_many(self, chunks: Iterable[Chunk]) -> None:
        for chunk in chunks:
            self.add(chunk)

    def split(self, chunks: Iterable[Chunk]
              ) -> Tuple[List[Chunk], List[Chunk]]:
        """Partition ``chunks`` into (cached, missing), updating stats.

        This is the digest negotiation a sender performs before a
        chunked transfer: cached chunks need not travel.
        """
        cached: List[Chunk] = []
        missing: List[Chunk] = []
        for chunk in chunks:
            if chunk.digest in self._chunks:
                self._chunks.move_to_end(chunk.digest)
                cached.append(chunk)
                self.hits += 1
            else:
                missing.append(chunk)
                self.misses += 1
        if cached:
            self.metrics.counter("chunks", "store_hits").inc(len(cached))
            self.metrics.counter("chunks", "store_bytes_avoided").inc(
                sum(c.wire_bytes for c in cached))
        if missing:
            self.metrics.counter("chunks", "store_misses").inc(len(missing))
        return cached, missing

    def clear(self) -> None:
        self._chunks.clear()
        self.bytes_stored = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _evict(self) -> None:
        if self.capacity_bytes is None:
            return
        while self.bytes_stored > self.capacity_bytes and self._chunks:
            _, size = self._chunks.popitem(last=False)
            self.bytes_stored -= size
            self.evictions += 1
            self.metrics.counter("chunks", "store_evictions").inc()
