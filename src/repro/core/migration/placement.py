"""Placement: choosing the guest surface for a migration demand.

The paper's migration lifecycle begins with *target selection* — the
user picks a guest from a menu of paired surfaces.  At fleet scale the
system makes that choice: every demand (``at t, device H wants to move
package P somewhere``) is routed through a :class:`PlacementEngine`,
which filters the population down to the surfaces that can actually
host the app and then ranks the feasible ones by policy.

Feasibility is *capability matching* against the app's **recorded
needs** — the system services its Table 3 workload actually touched
(sensor listeners, location updates, vibration) plus its GL usage and a
minimum screen budget.  The needs table is static and derived from the
workload implementations in :mod:`repro.apps`, mirroring how Flux's
record layer would know, at migration time, which services the app has
live state in.

Three policies ship:

* ``capability``  — the most capable feasible surface (largest screen,
  fastest CPU as tie-break); load-blind.
* ``least-loaded`` — fewest projected queued migrations, then least
  cumulative busy time (the ``Resource.held_seconds`` signal); blind to
  how *slow* the chosen surface is.
* ``cost-model``  — smallest predicted end-to-end latency: projected
  queue wait plus the migration-cost model of
  :mod:`repro.core.migration.costs` (checkpoint/restore scaled by the
  endpoints' ``cpu_factor``) plus transfer time on the shared medium,
  dilated by the currently projected concurrent flows.

Everything here is pure and deterministic: engines score
:class:`CandidateView` snapshots produced by a :class:`LoadLedger`
(the compile-time projection of site load), never live simulation
state, so the same demand stream always compiles to the same
assignments — which is what makes sharded fleet runs byte-identical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.android.hardware.profiles import DeviceProfile
from repro.apps.common import AppSpec
from repro.core.cria.errors import MigrationRefusal
from repro.core.migration import costs
from repro.sim import units


class PlacementError(Exception):
    pass


# -- recorded needs ----------------------------------------------------------

#: Minimum guest screen area, as a fraction of the home screen's, for
#: an app to remain usable after landing (GL apps render full-screen
#: scenes and need more glass than list UIs).
SCREEN_FRACTION = 0.25
GL_SCREEN_FRACTION = 0.5

#: Static service-usage table derived from the Table 3 workloads in
#: :mod:`repro.apps` — exactly the state the record layer would hold at
#: migration time.  Packages not listed recorded no capability-relevant
#: service usage (audio/alarm/notification exist on every profile).
RECORDED_SERVICE_NEEDS: Dict[str, Dict[str, object]] = {
    "com.king.bubblewitch": {"vibrator": True},
    "com.dotgears.flappybird": {"sensors": ("accelerometer",),
                                "vibrator": True},
    "com.whatsapp": {"vibrator": True},
    "com.instagram.android": {"location": True},
    "com.groupon": {"location": True},
}


@dataclass(frozen=True)
class AppNeeds:
    """What an app's recorded state requires of a guest surface."""

    package: str
    uses_gl: bool = False
    sensor_types: Tuple[str, ...] = ()
    needs_location: bool = False
    needs_vibrator: bool = False
    min_screen_fraction: float = SCREEN_FRACTION


def recorded_needs(spec: AppSpec) -> AppNeeds:
    recorded = RECORDED_SERVICE_NEEDS.get(spec.package, {})
    uses_gl = bool(getattr(spec.activity_cls, "USES_GL", False))
    return AppNeeds(
        package=spec.package,
        uses_gl=uses_gl,
        sensor_types=tuple(recorded.get("sensors", ())),
        needs_location=bool(recorded.get("location", False)),
        needs_vibrator=bool(recorded.get("vibrator", False)),
        min_screen_fraction=(GL_SCREEN_FRACTION if uses_gl
                             else SCREEN_FRACTION),
    )


def infeasibility(needs: AppNeeds, home: DeviceProfile,
                  guest: DeviceProfile) -> Optional[str]:
    """Why ``guest`` cannot host the app, or ``None`` when it can."""
    guest_sensors = {s.sensor_type for s in guest.sensors}
    for sensor_type in needs.sensor_types:
        if sensor_type not in guest_sensors:
            return f"no {sensor_type} sensor"
    if needs.needs_location and not guest.location_providers:
        return "no location provider"
    if needs.needs_vibrator and not guest.has_vibrator:
        return "no vibrator"
    budget = needs.min_screen_fraction * home.screen.pixels
    if guest.screen.pixels < budget:
        return (f"screen {guest.screen} below "
                f"{needs.min_screen_fraction:g} of home's")
    return None


# -- predicted migration cost ------------------------------------------------

#: Nominal congestion factor the prediction uses in place of the link's
#: seeded jitter draw (the model predicts, the simulation measures).
NOMINAL_CONGESTION = 0.85
LINK_LATENCY_S = 0.004
#: Replayed-call budget assumed for the reintegration estimate.
ESTIMATED_REPLAYED_CALLS = 24


def estimated_image_bytes(spec: AppSpec) -> int:
    """Checkpoint-image size estimate: heap plus GL texture state."""
    image = units.mb(spec.heap_mb)
    if getattr(spec.activity_cls, "USES_GL", False):
        image += units.mb(getattr(spec.activity_cls, "GL_TEXTURE_MB", 0.0))
    return image


def predict_migration_seconds(spec: AppSpec, home: DeviceProfile,
                              guest: DeviceProfile,
                              active_flows: int = 0) -> Dict[str, float]:
    """Stage-by-stage latency prediction for one candidate route.

    Uses the same cost model the stage pipeline charges
    (:mod:`repro.core.migration.costs`), the link layer's
    min-of-endpoints goodput, and processor-sharing dilation for the
    transfer: with ``active_flows`` other flows projected on the
    medium, the wire time stretches by ``1 + active_flows``.
    """
    image = estimated_image_bytes(spec)
    view_count = getattr(spec.activity_cls, "VIEW_COUNT", 12)
    context_count = 1 if getattr(spec.activity_cls, "USES_GL", False) else 0
    goodput = units.mbps(min(home.wifi_effective_mbps,
                             guest.wifi_effective_mbps)) * NOMINAL_CONGESTION
    transfer = (LINK_LATENCY_S
                + units.transfer_seconds(image, goodput)
                * (1 + max(0, active_flows)))
    prediction = {
        "preparation": costs.preparation_cost(view_count, context_count,
                                              home.cpu_factor),
        "checkpoint": costs.checkpoint_cost(image, home.cpu_factor),
        "transfer": transfer,
        "restore": costs.restore_cost(image, guest.cpu_factor),
        "reintegration": costs.reintegration_cost(ESTIMATED_REPLAYED_CALLS,
                                                  guest.cpu_factor),
    }
    prediction["total"] = sum(prediction.values())
    return prediction


# -- demand / decision -------------------------------------------------------


@dataclass(frozen=True)
class Demand:
    """One placement request: at ``arrival``, ``home`` wants to move
    ``package`` somewhere."""

    arrival: float
    home: str
    package: str


@dataclass(frozen=True)
class PlacementDecision:
    """What an engine decided for one demand, self-describing.

    ``attrs()`` is the JSON-able, frozen key/value view carried on the
    compiled :class:`~repro.experiments.scenario.SessionSpec` and
    emitted as the ``placement.decision`` flight-recorder event — the
    record ``flux-sim explain --why`` answers "why this guest?" from.
    """

    demand: Demand
    policy: str
    guest: Optional[str]
    refusal: Optional[MigrationRefusal] = None
    detail: str = ""
    predicted_s: Optional[float] = None
    considered: int = 0
    feasible: int = 0
    runner_up: Optional[str] = None

    def attrs(self) -> Tuple[Tuple[str, object], ...]:
        items: List[Tuple[str, object]] = [
            ("policy", self.policy),
            ("guest", self.guest or ""),
            ("considered", self.considered),
            ("feasible", self.feasible),
        ]
        if self.predicted_s is not None:
            items.append(("predicted_s", round(self.predicted_s, 6)))
        if self.runner_up:
            items.append(("runner_up", self.runner_up))
        if self.detail:
            items.append(("detail", self.detail))
        return tuple(items)


@dataclass(frozen=True)
class CandidateView:
    """A device's projected load, snapshotted at a demand's arrival.

    Produced by :class:`LoadLedger`; what engines score.  ``queue_depth``
    and ``held_seconds`` mirror the admission ``Resource``'s live
    ``queued``/``held_seconds`` signals, projected forward;
    ``queue_wait_s`` is how long a new session would wait for the device
    to free up; ``active_flows`` is the projected transfer concurrency
    on the site medium at this instant.
    """

    name: str
    profile: DeviceProfile
    queue_depth: int = 0
    held_seconds: float = 0.0
    queue_wait_s: float = 0.0
    active_flows: int = 0


class LoadLedger:
    """Compile-time projection of site load, per placed assignment.

    The ledger records, for every committed placement, the predicted
    busy window of both endpoints and the predicted transfer window on
    the shared medium; :meth:`view` folds those into the load signals a
    :class:`CandidateView` carries.  It is a *model* of the load the
    compiled scenario will create — deliberately the same shape as the
    live ``Resource``/``Medium`` ledgers, but pure, so placement stays
    deterministic and shard-independent.
    """

    _EPS = 1e-9

    def __init__(self) -> None:
        self._windows: Dict[str, List[Tuple[float, float]]] = {}
        self._transfers: List[Tuple[float, float]] = []

    def view(self, name: str, profile: DeviceProfile,
             now: float) -> CandidateView:
        windows = self._windows.get(name, [])
        depth = sum(1 for _, end in windows if end > now + self._EPS)
        held = sum(min(end, now) - start for start, end in windows
                   if start < now)
        busy_until = max((end for _, end in windows), default=now)
        flows = sum(1 for start, end in self._transfers
                    if start <= now + self._EPS and end > now + self._EPS)
        return CandidateView(name=name, profile=profile, queue_depth=depth,
                             held_seconds=held,
                             queue_wait_s=max(0.0, busy_until - now),
                             active_flows=flows)

    def busy_until(self, name: str, now: float) -> float:
        return max((end for _, end in self._windows.get(name, [])),
                   default=now)

    def commit(self, home: str, guest: str, now: float,
               prediction: Dict[str, float]) -> Tuple[float, float]:
        """Record a placed assignment's projected windows; returns the
        session's projected ``(start, end)``."""
        start = max(now, self.busy_until(home, now),
                    self.busy_until(guest, now))
        end = start + prediction["total"]
        for device in (home, guest):
            self._windows.setdefault(device, []).append((start, end))
        transfer_start = (start + prediction["preparation"]
                          + prediction["checkpoint"])
        self._transfers.append((transfer_start,
                                transfer_start + prediction["transfer"]))
        return start, end


# -- the engines -------------------------------------------------------------


class PlacementEngine(ABC):
    """Policy interface: rank feasible candidates for one demand.

    :meth:`choose` owns the policy-independent parts — capability
    filtering and the ``NO_FEASIBLE_GUEST`` refusal — and delegates the
    ranking to :meth:`score` (ascending; ties broken by the device name
    inside the score tuple, so every policy is totally deterministic).
    """

    name = "?"

    @abstractmethod
    def score(self, spec: AppSpec, home: CandidateView,
              candidate: CandidateView) -> Tuple:
        """Sort key for ``candidate`` (lower is better)."""

    def reason(self, spec: AppSpec, home: CandidateView,
               chosen: CandidateView) -> str:
        """One human-readable line saying why ``chosen`` won."""
        return ""

    def predicted_seconds(self, spec: AppSpec, home: CandidateView,
                          chosen: CandidateView) -> Optional[float]:
        """End-to-end latency estimate for the chosen route, if the
        policy computes one (the cost model does; the others are
        blind to it by design)."""
        return None

    def choose(self, demand: Demand, spec: AppSpec, home: CandidateView,
               candidates: Sequence[CandidateView]) -> PlacementDecision:
        reasons: List[str] = []
        feasible: List[CandidateView] = []
        needs = recorded_needs(spec)
        for candidate in candidates:
            why = infeasibility(needs, home.profile, candidate.profile)
            if why is None:
                feasible.append(candidate)
            else:
                reasons.append(f"{candidate.name}: {why}")
        if not feasible:
            return PlacementDecision(
                demand=demand, policy=self.name, guest=None,
                refusal=MigrationRefusal.NO_FEASIBLE_GUEST,
                detail="; ".join(reasons) or "empty candidate set",
                considered=len(candidates), feasible=0)
        ranked = sorted(feasible,
                        key=lambda c: self.score(spec, home, c))
        best = ranked[0]
        return PlacementDecision(
            demand=demand, policy=self.name, guest=best.name,
            detail=self.reason(spec, home, best),
            predicted_s=self.predicted_seconds(spec, home, best),
            considered=len(candidates), feasible=len(feasible),
            runner_up=(ranked[1].name if len(ranked) > 1 else None))


class CapabilityEngine(PlacementEngine):
    """Most capable feasible surface: largest screen, then fastest CPU."""

    name = "capability"

    def score(self, spec: AppSpec, home: CandidateView,
              candidate: CandidateView) -> Tuple:
        return (-candidate.profile.screen.pixels,
                -candidate.profile.cpu_factor, candidate.name)

    def reason(self, spec: AppSpec, home: CandidateView,
               chosen: CandidateView) -> str:
        return (f"largest feasible surface "
                f"({chosen.profile.screen.pixels} px)")


class LeastLoadedEngine(PlacementEngine):
    """Fewest projected queued migrations, then least cumulative busy
    time — the live ``Resource.queued``/``held_seconds`` signals,
    projected.  Blind to how slow the chosen surface is."""

    name = "least-loaded"

    def score(self, spec: AppSpec, home: CandidateView,
              candidate: CandidateView) -> Tuple:
        return (candidate.queue_depth, round(candidate.held_seconds, 9),
                candidate.name)

    def reason(self, spec: AppSpec, home: CandidateView,
               chosen: CandidateView) -> str:
        return (f"depth {chosen.queue_depth}, "
                f"held {chosen.held_seconds:.3f}s")


class CostModelEngine(PlacementEngine):
    """Smallest predicted end-to-end latency: projected queue wait plus
    the stage cost model plus contention-dilated transfer time."""

    name = "cost-model"

    def _predict(self, spec: AppSpec, home: CandidateView,
                 candidate: CandidateView) -> float:
        wait = max(home.queue_wait_s, candidate.queue_wait_s)
        prediction = predict_migration_seconds(
            spec, home.profile, candidate.profile,
            active_flows=candidate.active_flows)
        return wait + prediction["total"]

    def score(self, spec: AppSpec, home: CandidateView,
              candidate: CandidateView) -> Tuple:
        return (round(self._predict(spec, home, candidate), 9),
                candidate.name)

    def predicted_seconds(self, spec: AppSpec, home: CandidateView,
                          chosen: CandidateView) -> Optional[float]:
        return self._predict(spec, home, chosen)

    def reason(self, spec: AppSpec, home: CandidateView,
               chosen: CandidateView) -> str:
        wait = max(home.queue_wait_s, chosen.queue_wait_s)
        return (f"predicted {self._predict(spec, home, chosen):.3f}s "
                f"(queue {wait:.3f}s, {chosen.active_flows} projected "
                f"flow(s))")


PLACEMENT_POLICIES: Tuple[str, ...] = ("capability", "least-loaded",
                                       "cost-model")

_ENGINES = {engine.name: engine for engine in
            (CapabilityEngine(), LeastLoadedEngine(), CostModelEngine())}


def engine_for(policy: str) -> PlacementEngine:
    try:
        return _ENGINES[policy]
    except KeyError:
        raise PlacementError(
            f"unknown placement policy {policy!r}; "
            f"choose from {PLACEMENT_POLICIES}") from None
