"""Timing model for migration stages.

The mechanisms (CRIA, replay, sync) do the state work; this module
charges virtual-clock time for the CPU-bound parts, scaled by the
device's ``cpu_factor``.  Constants were calibrated so the eighteen-app,
four-device-pair sweep reproduces the paper's §4 aggregates:

* average total migration time ≈ 7.88 s,
* user-perceived time (total minus preparation+checkpoint, which hide
  behind the target-selection menu) ≈ 5.8 s,
* user-perceived time excluding data transfer ≈ 1.35 s,
* data transfer > 50% of total on average.

Transfer time itself comes from the link model, not from here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import units


# -- preparation -----------------------------------------------------------

#: Fixed cost of signalling the app into the background (RPC round trips).
PREP_BACKGROUND_COST = 0.12
#: Per-view teardown cost during the trim-memory chain.
PREP_PER_VIEW_COST = 0.004
#: Per-GL-context termination cost.
PREP_PER_CONTEXT_COST = 0.06
#: Unloading the vendor GL library.
PREP_EGL_UNLOAD_COST = 0.08
# (The task idler delay — ActivityManagerService.TASK_IDLE_DELAY — is
# charged by the preparation mechanism itself while waiting for stop.)

# -- checkpoint / restore ----------------------------------------------------

#: Serialize+compress rate on the reference CPU, bytes/second.
CHECKPOINT_RATE = units.mb(18)
#: Fixed checkpoint overhead (freezing, driver hooks, binder capture).
CHECKPOINT_FIXED = 0.18
#: Decompress+inject rate on the reference CPU, bytes/second.
RESTORE_RATE = units.mb(30)
#: Fixed restore overhead (namespace, wrapper launch, binder injection).
RESTORE_FIXED = 0.55

# -- pipelined chunked transfer (FluxExtensions.pipelined_transfer) ----------
#
# The pipelined path splits CHECKPOINT_RATE's serialize+compress work in
# two: serialization stays in the checkpoint stage, compression moves
# into the transfer stage where it overlaps the wire per chunk.  The
# rates are chosen so 1/SERIALIZE_RATE + 1/COMPRESS_RATE equals
# 1/CHECKPOINT_RATE exactly — the pipelined path does the same total CPU
# work as the serial path, it just schedules it differently.

#: Serialize-only rate on the reference CPU, bytes/second.
SERIALIZE_RATE = units.mb(30)
#: Compress-only rate on the reference CPU, bytes/second.
COMPRESS_RATE = units.mb(45)
#: Wire bytes per entry of the chunk-digest negotiation table
#: (32-byte digest + offset/length framing).
CHUNK_DIGEST_BYTES = 40

# -- reintegration ----------------------------------------------------------

#: Fixed reintegration overhead (connectivity + configuration broadcasts,
#: foregrounding, first redraw).
REINTEGRATE_FIXED = 0.50
#: Per-replayed-call cost.
REINTEGRATE_PER_CALL = 0.004

# -- pairing -----------------------------------------------------------------

#: Per-file hash/compare rate for the rsync pass, files/second.
PAIRING_FILES_PER_SECOND = 600.0
#: Metadata pseudo-install cost per app.
PAIRING_PSEUDO_INSTALL_COST = 0.05


def preparation_cost(view_count: int, context_count: int,
                     cpu_factor: float) -> float:
    work = (PREP_BACKGROUND_COST
            + PREP_PER_VIEW_COST * view_count
            + PREP_PER_CONTEXT_COST * context_count
            + PREP_EGL_UNLOAD_COST)
    return work / cpu_factor


def checkpoint_cost(raw_image_bytes: int, cpu_factor: float) -> float:
    return CHECKPOINT_FIXED / cpu_factor + (
        raw_image_bytes / (CHECKPOINT_RATE * cpu_factor))


def serialize_cost(raw_image_bytes: int, cpu_factor: float) -> float:
    """Checkpoint-stage cost when compression is deferred to transfer."""
    return CHECKPOINT_FIXED / cpu_factor + (
        raw_image_bytes / (SERIALIZE_RATE * cpu_factor))


def chunk_compress_cost(raw_chunk_bytes: int, cpu_factor: float) -> float:
    """Compress one chunk just before it enters the wire."""
    return raw_chunk_bytes / (COMPRESS_RATE * cpu_factor)


def pipeline_schedule(prepare_seconds, send_seconds):
    """Per-chunk send windows of a (compress | send) chunk pipeline.

    Returns a ``(start, end)`` pair per chunk, measured from the start
    of the burst: chunk *i* starts sending once it is compressed and
    the link is free; compression of chunk *i+1* overlaps the send of
    chunk *i*.
    """
    windows = []
    prepared = 0.0
    link_free = 0.0
    for prep, send in zip(prepare_seconds, send_seconds):
        prepared += prep
        start = prepared if prepared > link_free else link_free
        link_free = start + send
        windows.append((start, link_free))
    return windows


def pipeline_seconds(prepare_seconds, send_seconds) -> float:
    """Completion time of a two-stage (compress | send) chunk pipeline.

    The result is fill + bottleneck drain, not sum-of-stages: bounded
    below by ``max(sum(prepare), sum(send))`` and above by their sum.
    """
    windows = pipeline_schedule(prepare_seconds, send_seconds)
    prepared = sum(p for p, _ in zip(prepare_seconds, send_seconds))
    link_free = windows[-1][1] if windows else 0.0
    return max(prepared, link_free)


def restore_cost(raw_image_bytes: int, cpu_factor: float) -> float:
    return RESTORE_FIXED / cpu_factor + (
        raw_image_bytes / (RESTORE_RATE * cpu_factor))


def reintegration_cost(replayed_calls: int, cpu_factor: float) -> float:
    return (REINTEGRATE_FIXED
            + REINTEGRATE_PER_CALL * replayed_calls) / cpu_factor


def pairing_scan_cost(file_count: int, cpu_factor: float) -> float:
    return file_count / (PAIRING_FILES_PER_SECOND * cpu_factor)
