"""Timing model for migration stages.

The mechanisms (CRIA, replay, sync) do the state work; this module
charges virtual-clock time for the CPU-bound parts, scaled by the
device's ``cpu_factor``.  Constants were calibrated so the eighteen-app,
four-device-pair sweep reproduces the paper's §4 aggregates:

* average total migration time ≈ 7.88 s,
* user-perceived time (total minus preparation+checkpoint, which hide
  behind the target-selection menu) ≈ 5.8 s,
* user-perceived time excluding data transfer ≈ 1.35 s,
* data transfer > 50% of total on average.

Transfer time itself comes from the link model, not from here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import units


# -- preparation -----------------------------------------------------------

#: Fixed cost of signalling the app into the background (RPC round trips).
PREP_BACKGROUND_COST = 0.12
#: Per-view teardown cost during the trim-memory chain.
PREP_PER_VIEW_COST = 0.004
#: Per-GL-context termination cost.
PREP_PER_CONTEXT_COST = 0.06
#: Unloading the vendor GL library.
PREP_EGL_UNLOAD_COST = 0.08
# (The task idler delay — ActivityManagerService.TASK_IDLE_DELAY — is
# charged by the preparation mechanism itself while waiting for stop.)

# -- checkpoint / restore ----------------------------------------------------

#: Serialize+compress rate on the reference CPU, bytes/second.
CHECKPOINT_RATE = units.mb(18)
#: Fixed checkpoint overhead (freezing, driver hooks, binder capture).
CHECKPOINT_FIXED = 0.18
#: Decompress+inject rate on the reference CPU, bytes/second.
RESTORE_RATE = units.mb(30)
#: Fixed restore overhead (namespace, wrapper launch, binder injection).
RESTORE_FIXED = 0.55

# -- reintegration ----------------------------------------------------------

#: Fixed reintegration overhead (connectivity + configuration broadcasts,
#: foregrounding, first redraw).
REINTEGRATE_FIXED = 0.50
#: Per-replayed-call cost.
REINTEGRATE_PER_CALL = 0.004

# -- pairing -----------------------------------------------------------------

#: Per-file hash/compare rate for the rsync pass, files/second.
PAIRING_FILES_PER_SECOND = 600.0
#: Metadata pseudo-install cost per app.
PAIRING_PSEUDO_INSTALL_COST = 0.05


def preparation_cost(view_count: int, context_count: int,
                     cpu_factor: float) -> float:
    work = (PREP_BACKGROUND_COST
            + PREP_PER_VIEW_COST * view_count
            + PREP_PER_CONTEXT_COST * context_count
            + PREP_EGL_UNLOAD_COST)
    return work / cpu_factor


def checkpoint_cost(raw_image_bytes: int, cpu_factor: float) -> float:
    return CHECKPOINT_FIXED / cpu_factor + (
        raw_image_bytes / (CHECKPOINT_RATE * cpu_factor))


def restore_cost(raw_image_bytes: int, cpu_factor: float) -> float:
    return RESTORE_FIXED / cpu_factor + (
        raw_image_bytes / (RESTORE_RATE * cpu_factor))


def reintegration_cost(replayed_calls: int, cpu_factor: float) -> float:
    return (REINTEGRATE_FIXED
            + REINTEGRATE_PER_CALL * replayed_calls) / cpu_factor


def pairing_scan_cost(file_count: int, cpu_factor: float) -> float:
    return file_count / (PAIRING_FILES_PER_SECOND * cpu_factor)
