"""Automatic migration policies.

The paper's introduction motivates migrations a *system* could initiate:
moving to a fresh device when the battery runs low (§1, scenario 3).
``BatteryRescuePolicy`` implements that: when the home device's battery
crosses the low threshold, the foreground app is migrated to the best
paired target — preferring higher remaining battery, then faster radio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.android.app.intent import ACTION_BATTERY_LOW, Intent
from repro.core.cria.errors import MigrationError


@dataclass
class PolicyEvent:
    time: float
    package: Optional[str]
    target: Optional[str]
    outcome: str          # "migrated" | "no-target" | "no-app" | "refused"
    detail: str = ""


class BatteryRescuePolicy:
    """Migrate the foreground app away when the battery runs low."""

    def __init__(self, device, targets: Optional[List] = None,
                 notify_user: bool = True) -> None:
        self.device = device
        self.targets = list(targets or [])
        self.notify_user = notify_user
        self.events: List[PolicyEvent] = []
        self.enabled = True
        device.battery.on_low(self._on_low_battery)

    def add_target(self, guest) -> None:
        if guest not in self.targets:
            self.targets.append(guest)

    # -- policy machinery ------------------------------------------------------

    def pick_target(self):
        """Best paired target: most battery, then fastest radio."""
        candidates = [
            guest for guest in self.targets
            if self.device.pairing_service.is_paired_with(guest.name)
            and not guest.battery.is_low]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda g: (g.battery.level,
                                  g.profile.wifi_effective_mbps))

    def foreground_package(self) -> Optional[str]:
        for package in self.device.running_packages():
            thread = self.device.thread_of(package)
            if thread is not None and not thread.in_background:
                return package
        return None

    def _on_low_battery(self, level: float) -> None:
        if not self.enabled:
            return
        clock = self.device.clock
        if self.notify_user:
            self.device.activity_service.broadcast(
                Intent(ACTION_BATTERY_LOW, level=round(level * 100)))
        package = self.foreground_package()
        if package is None:
            self.events.append(PolicyEvent(clock.now, None, None, "no-app"))
            return
        target = self.pick_target()
        if target is None:
            self.events.append(PolicyEvent(clock.now, package, None,
                                           "no-target"))
            return
        try:
            self.device.migration_service.migrate(target, package)
        except MigrationError as error:
            self.events.append(PolicyEvent(clock.now, package, target.name,
                                           "refused", error.reason.value))
            return
        self.events.append(PolicyEvent(clock.now, package, target.name,
                                       "migrated"))

    def last_event(self) -> Optional[PolicyEvent]:
        return self.events[-1] if self.events else None
