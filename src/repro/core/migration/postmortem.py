"""Post-mortems over a migration's causal event log (``flux-sim explain``).

A migration's ``--events-out`` JSONL is a flat, causally-ordered stream
(see :mod:`repro.sim.events`).  This module segments that stream into
migrations (``migration.start`` … ``migration.done`` /
``migration.rolled_back``), picks the one worth explaining (a faulted or
refused attempt beats a success), and reconstructs the causal chain a
human would ask for first:

    triggering event  ->  stage.fault  ->  rollbacks  ->  rolled_back

i.e. *which* low-layer event (``link.fault``, ``cria.restore_fault``)
killed *which* stage, and what the pipeline unwound afterwards.  The
rendered report also shows the last N events before the fault (the
flight-recorder tail) with their Binder transaction ids — every ``#seq``
and ``txn=`` printed resolves back to a line of the JSONL — plus
per-stage event counts and, when a ``--metrics`` document is supplied,
the migration's critical path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Low-layer events that directly cause a stage fault; the causal chain
#: starts at the last one seen before ``stage.fault``.
TRIGGER_KINDS = ("link.fault", "cria.restore_fault")

#: Pipeline bookkeeping — never the *cause* of a fault, so the fallback
#: trigger search (no known trigger kind present) skips these.
_LIFECYCLE_KINDS = frozenset({
    "migration.start", "migration.done", "migration.refused",
    "migration.rollback_begin", "migration.rolled_back",
    "stage.start", "stage.end", "stage.fault",
    "stage.rollback", "stage.rollback_error",
})


class PostmortemError(Exception):
    """The event stream holds nothing explainable (no migrations)."""


def segment_migrations(events: List[Dict[str, Any]]
                       ) -> List[Dict[str, Any]]:
    """Split a merged event stream into one segment per migration.

    A segment runs from ``migration.start`` through the matching
    terminal event (``migration.done`` or ``migration.rolled_back``);
    events of other devices interleaved in between (guest-side restore
    steps, for instance) belong to the segment.  A start with no
    terminal (the process died mid-flight, or the ring evicted the
    tail's terminal) yields an ``incomplete`` segment.

    Interleaved scenario logs segment by the ``session`` label every
    event of a migration carries: each label gets its own open segment,
    so two concurrent migrations' events never cross-contaminate.
    Events without a label (legacy logs, or bookkeeping between
    migrations) fall back to a per-pair anonymous segment — the
    pre-session behavior, bit for bit.
    """
    segments: List[Dict[str, Any]] = []
    open_map: Dict[Any, Dict[str, Any]] = {}
    for event in events:
        kind = event.get("kind")
        attrs = event.get("attrs", {})
        key = (event.get("pair"), attrs.get("session"))
        if kind == "migration.start":
            prior = open_map.pop(key, None)
            if prior is not None:
                # A new start under the same key before the previous
                # terminal: the ring evicted the tail, or the process
                # died mid-flight.  Keep what we saw.
                segments.append(prior)
            open_map[key] = {
                "package": attrs.get("package", ""),
                "home": attrs.get("home", ""),
                "guest": attrs.get("guest", ""),
                "pair": event.get("pair"),
                "session": attrs.get("session"),
                "events": [event],
                "outcome": "incomplete",
            }
            continue
        current = open_map.get(key)
        if current is None:
            continue
        current["events"].append(event)
        if kind in ("migration.done", "migration.rolled_back"):
            if kind == "migration.done":
                current["outcome"] = "succeeded"
            elif any(e.get("kind") == "migration.refused"
                     for e in current["events"]):
                current["outcome"] = "refused"
            else:
                current["outcome"] = "faulted"
            segments.append(current)
            del open_map[key]
    segments.extend(open_map.values())
    return segments


def _pick_segment(segments: List[Dict[str, Any]],
                  package: Optional[str],
                  session: Optional[str] = None) -> Dict[str, Any]:
    if session is not None:
        segments = [s for s in segments if s.get("session") == session]
        if not segments:
            raise PostmortemError(
                f"no migration session {session!r} in the event log")
    if package is not None:
        segments = [s for s in segments if s["package"] == package]
        if not segments:
            raise PostmortemError(
                f"no migration of {package!r} in the event log")
    failed = [s for s in segments if s["outcome"] in ("faulted", "refused")]
    return (failed or segments)[-1]


def _find(events: List[Dict[str, Any]], kind: str
          ) -> Optional[Dict[str, Any]]:
    for event in events:
        if event.get("kind") == kind:
            return event
    return None


def _trigger_for(events: List[Dict[str, Any]],
                 fault_index: int) -> Optional[Dict[str, Any]]:
    """The event that caused the fault: last trigger-kind event before
    ``stage.fault``, else the last non-lifecycle event before it."""
    for event in reversed(events[:fault_index]):
        if event.get("kind") in TRIGGER_KINDS:
            return event
    for event in reversed(events[:fault_index]):
        if event.get("kind") not in _LIFECYCLE_KINDS:
            return event
    return None


def _causal_chain(segment: Dict[str, Any]) -> List[Dict[str, Any]]:
    """trigger -> stage.fault/migration.refused -> rollbacks -> terminal."""
    events = segment["events"]
    abort = _find(events, "stage.fault") or _find(events,
                                                  "migration.refused")
    if abort is None:
        return []
    abort_index = events.index(abort)
    chain: List[Dict[str, Any]] = []
    trigger = _trigger_for(events, abort_index)
    if trigger is not None:
        chain.append(trigger)
    chain.append(abort)
    for event in events[abort_index + 1:]:
        if event.get("kind") in ("migration.rollback_begin",
                                 "stage.rollback", "stage.rollback_error",
                                 "migration.rolled_back"):
            chain.append(event)
    return chain


def build_postmortem(events: List[Dict[str, Any]],
                     package: Optional[str] = None,
                     last: int = 10,
                     critical_path: Optional[List[Dict[str, Any]]] = None,
                     session: Optional[str] = None
                     ) -> Dict[str, Any]:
    """Digest an event stream into one migration's post-mortem document.

    Raises :class:`PostmortemError` when the stream holds no migration
    (or none of ``package`` / ``session``).  The returned dict is
    JSON-ready; see :func:`render_postmortem` for the human rendering.
    """
    segments = segment_migrations(events)
    if not segments:
        raise PostmortemError(
            "no migration.start event in the log — was it produced by "
            "flux-sim migrate/sweep --events-out with FLUX_EVENTS enabled?")
    segment = _pick_segment(segments, package, session)
    seg_events = segment["events"]

    abort = _find(seg_events, "stage.fault") or _find(seg_events,
                                                      "migration.refused")
    faulted_stage = None
    reason = None
    if abort is not None:
        attrs = abort.get("attrs", {})
        faulted_stage = attrs.get("stage")
        reason = attrs.get("reason")

    stage_counts: Dict[str, int] = {}
    for event in seg_events:
        stage = event.get("attrs", {}).get("stage")
        if stage:
            stage_counts[stage] = stage_counts.get(stage, 0) + 1

    tail: List[Dict[str, Any]] = []
    if abort is not None and last > 0:
        abort_index = seg_events.index(abort)
        tail = seg_events[max(0, abort_index - last):abort_index]

    done = _find(seg_events, "migration.done")
    total_seconds = (done.get("attrs", {}).get("total_seconds")
                     if done is not None else None)

    return {
        "package": segment["package"],
        "home": segment["home"],
        "guest": segment["guest"],
        "pair": segment.get("pair"),
        "session": segment.get("session"),
        "outcome": segment["outcome"],
        "faulted_stage": faulted_stage,
        "reason": reason,
        "total_seconds": total_seconds,
        "migrations_in_log": len(segments),
        "event_count": len(seg_events),
        "stage_counts": stage_counts,
        "causal_chain": _causal_chain(segment),
        "tail": tail,
        "critical_path": critical_path or [],
    }


def build_blame(events: List[Dict[str, Any]], session: str
                ) -> Dict[str, Any]:
    """Rank where one session's wall time went, from the event log alone.

    Reconstructs the contention decomposition the scenario runner
    measures live (``wait_profile``) purely from causal events:

    * **queued** — ``resource.grant`` events for the session's route
      carry the measured enqueue→grant wait and who was ahead
      (``behind``); the blocker's route resolves to its session label
      via the segment that released the resource at our grant instant.
    * **link dilation** — ``link.dilation`` events inside the segment
      carry the medium's per-flow stretch attribution and the peak
      number of contending flows.
    * **own work** — last grant to terminal, minus the dilation: the
      time the session would have taken with the world to itself.

    The three terms sum to the session's wall time (first enqueue to
    terminal) exactly, because each is the same measurement the live
    ledgers make — re-derived from the log, which is the point: a
    post-mortem needs no access to the run that produced it.
    """
    segments = segment_migrations(events)
    matching = [s for s in segments if s.get("session") == session]
    if not matching:
        raise PostmortemError(
            f"no migration session {session!r} in the event log")
    segment = matching[-1]
    seg_events = segment["events"]
    start_t = seg_events[0].get("t", 0.0)
    end_t = seg_events[-1].get("t", start_t)
    who = f"{segment['home']}->{segment['guest']}:{segment['package']}"

    # Admission: the (up to two) endpoint grants for this route at or
    # before the segment opened.  Grants are world-level events, so they
    # live outside the segment; select by time, newest first.
    grants = [e for e in events
              if e.get("kind") == "resource.grant"
              and e.get("attrs", {}).get("who") == who
              and e.get("t", 0.0) <= start_t + 1e-9]
    grants = grants[-2:]
    queued = sum(float(e["attrs"].get("waited", 0.0)) for e in grants)
    behind: List[str] = []
    for grant in grants:
        attrs = grant["attrs"]
        blocker = attrs.get("behind")
        if not blocker or not attrs.get("waited"):
            continue
        # The blocker released at our grant instant; its segment's
        # terminal event carries the same timestamp.
        label = blocker
        for other in segments:
            other_who = (f"{other['home']}->{other['guest']}:"
                         f"{other['package']}")
            other_end = other["events"][-1].get("t")
            if (other_who == blocker and other.get("session")
                    and other_end is not None
                    and other_end <= grant.get("t", 0.0) + 1e-9):
                label = other["session"]
        behind.append(label)
    granted_t = max((e.get("t", start_t) for e in grants), default=start_t)
    submit_t = min((e.get("t", start_t)
                    - float(e["attrs"].get("waited", 0.0))
                    for e in grants), default=start_t)

    dilations = [e for e in seg_events if e.get("kind") == "link.dilation"
                 and e.get("attrs", {}).get("session") == session]
    dilation = sum(float(e["attrs"].get("dilation", 0.0))
                   for e in dilations)
    contenders = max((int(e["attrs"].get("others", 0))
                      for e in dilations), default=0)
    own = (end_t - granted_t) - dilation

    entries = [
        {"kind": "queued", "seconds": queued,
         "detail": ("behind " + ", ".join(behind)) if behind else ""},
        {"kind": "link dilation", "seconds": dilation,
         "detail": (f"from {contenders} contending "
                    f"flow{'s' if contenders != 1 else ''}"
                    if contenders else "")},
        {"kind": "own work", "seconds": own, "detail": ""},
    ]
    entries.sort(key=lambda entry: -entry["seconds"])

    # Fleet sessions carry a placement decision: the world recorder
    # emitted one ``placement.decision`` per session at submit time
    # (keyed by route, like the grants), so the blame can say not just
    # where the time went, but why the migration landed *here* at all.
    placements = [e for e in events
                  if e.get("kind") == "placement.decision"
                  and e.get("attrs", {}).get("who") == who
                  and e.get("t", 0.0) <= end_t + 1e-9]
    placement = dict(placements[-1]["attrs"]) if placements else None

    return {
        "session": session,
        "package": segment["package"],
        "home": segment["home"],
        "guest": segment["guest"],
        "outcome": segment["outcome"],
        "wall_s": end_t - submit_t,
        "entries": entries,
        "placement": placement,
    }


def critical_path_from_metrics(document: Dict[str, Any],
                               package: Optional[str] = None,
                               session: Optional[str] = None
                               ) -> Optional[List[Dict[str, Any]]]:
    """Pull a critical path out of a ``--metrics-out`` document.

    Understands all three shapes: a single migration's document
    (``{"migration": {...}}``, from ``flux-sim migrate``), a sweep
    document (``{"migrations": [...]}``), and a scenario document
    (``{"scenario": {"sessions": [...]}}``).  For the multi-row shapes,
    ``session`` (exact label) or ``package`` selects the row; else the
    first row wins.
    """
    migration = document.get("migration")
    if isinstance(migration, dict):
        return migration.get("critical_path") or None

    def _pick(rows: List[Dict[str, Any]]) -> Optional[List[Dict[str, Any]]]:
        for row in rows:
            if session is not None:
                if row.get("session") == session:
                    return row.get("critical_path") or None
                continue
            if package is None or row.get("package") == package:
                return row.get("critical_path") or None
        return None

    rows = document.get("migrations")
    if isinstance(rows, list):
        return _pick(rows)
    scenario = document.get("scenario")
    if isinstance(scenario, dict):
        return _pick(scenario.get("sessions") or [])
    fleet = document.get("fleet")
    if isinstance(fleet, dict):
        return _pick(fleet.get("sessions") or [])
    return None


def postmortem_from_bundle(bundle, package: Optional[str] = None,
                           last: int = 10,
                           session: Optional[str] = None
                           ) -> Dict[str, Any]:
    """Post-mortem straight from a run bundle — no side files needed.

    The bundle carries both planes the post-mortem wants: the causal
    event log and (via the metrics document) the critical path.  The
    path is looked up for the migration the post-mortem actually
    selected — not for the caller's (possibly absent) filter — so the
    annotation always belongs to the explained attempt.  ``bundle`` is
    any object with ``events()`` and ``metrics_document()`` (duck-typed
    so this core module never imports the sim layer).
    """
    pm = build_postmortem(bundle.events(), package=package, last=last,
                          session=session)
    pm["critical_path"] = critical_path_from_metrics(
        bundle.metrics_document(), package=pm.get("package"),
        session=pm.get("session")) or []
    return pm


# -- rendering ---------------------------------------------------------------


def format_event(event: Dict[str, Any]) -> str:
    """One JSONL event as a post-mortem line: ``#seq [t] kind k=v txn=``.

    Every ``#seq`` and ``txn=`` printed here resolves back to the
    source JSONL (same numbers, same device stream).
    """
    attrs = event.get("attrs", {})
    extras = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    txn = event.get("txn")
    txn_part = f" txn={txn}" if txn is not None else ""
    device = event.get("device", "")
    return (f"#{event.get('seq')} [{event.get('t', 0.0):10.4f}] "
            f"{device}: {event.get('kind')}{txn_part} {extras}").rstrip()


def render_postmortem(pm: Dict[str, Any]) -> str:
    """The human-readable post-mortem ``flux-sim explain`` prints."""
    lines: List[str] = []
    where = f"{pm['home']} -> {pm['guest']}" if pm["home"] else "?"
    pair = f" [{pm['pair']}]" if pm.get("pair") else ""
    session = (f" session={pm['session']}" if pm.get("session") else "")
    lines.append(f"post-mortem: {pm['package']} ({where}){pair}{session}")

    outcome = pm["outcome"]
    if outcome == "succeeded":
        total = pm.get("total_seconds")
        suffix = f" in {total}s" if total is not None else ""
        lines.append(f"outcome: SUCCEEDED{suffix}")
    elif outcome == "faulted":
        lines.append(f"outcome: FAULTED in {pm['faulted_stage']} stage "
                     f"({pm['reason']}); rolled back")
    elif outcome == "refused":
        lines.append(f"outcome: REFUSED ({pm['reason']}); rolled back")
    else:
        lines.append("outcome: INCOMPLETE (no terminal event in the log)")
    if pm["migrations_in_log"] > 1:
        which = ("failure" if outcome in ("faulted", "refused")
                 else "migration")
        lines.append(f"({pm['migrations_in_log']} migrations in the log; "
                     f"explaining the most recent {which})")

    if pm["stage_counts"]:
        lines.append("")
        lines.append("events per stage:")
        for stage, count in pm["stage_counts"].items():
            marker = "  <- faulted" if stage == pm["faulted_stage"] else ""
            lines.append(f"  {stage:<14} {count:>4}{marker}")

    if pm["causal_chain"]:
        lines.append("")
        lines.append("causal chain:")
        for i, event in enumerate(pm["causal_chain"]):
            prefix = "  " if i == 0 else "  -> "
            lines.append(prefix + format_event(event))

    if pm["tail"]:
        lines.append("")
        lines.append(f"last {len(pm['tail'])} events before the fault:")
        for event in pm["tail"]:
            lines.append("  " + format_event(event))

    if pm["critical_path"]:
        # Percentages only when the migration accrued wall time: a
        # refused session reports total 0.0 and a 0/0 share means
        # nothing (and used to mean a ZeroDivisionError).
        total = pm.get("total_seconds")
        try:
            total = float(total) if total is not None else 0.0
        except (TypeError, ValueError):
            total = 0.0
        parts = []
        for entry in pm["critical_path"]:
            seconds = float(entry["seconds"])
            label = f"{entry['name']} {seconds:.3f}s"
            if total > 0.0:
                label += f" ({seconds / total * 100.0:.0f}%)"
            parts.append(label)
        lines.append("")
        lines.append(f"critical path: {' > '.join(parts)}")
    return "\n".join(lines)


def render_blame(blame: Dict[str, Any]) -> str:
    """The ranked breakdown ``flux-sim explain --why <session>`` prints."""
    lines = [
        f"why: {blame['session']} "
        f"({blame['home']} -> {blame['guest']}) "
        f"{blame['outcome']} after {blame['wall_s']:.3f}s",
    ]
    for entry in blame["entries"]:
        detail = f" {entry['detail']}" if entry["detail"] else ""
        lines.append(f"  {entry['seconds']:8.3f}s  "
                     f"{entry['kind']}{detail}")
    placement = blame.get("placement")
    if placement:
        parts = [f"policy {placement.get('policy', '?')} chose "
                 f"{placement.get('guest') or blame['guest']}"]
        if placement.get("feasible") is not None:
            parts.append(f"{placement['feasible']}/"
                         f"{placement.get('considered', '?')} feasible")
        if placement.get("runner_up"):
            parts.append(f"over {placement['runner_up']}")
        if placement.get("detail"):
            parts.append(str(placement["detail"]))
        lines.append(f"  placement: {'; '.join(parts)}")
    return "\n".join(lines)
