"""The migration lifecycle as an explicit, abortable stage pipeline.

The paper's Figure 13 names five stages; here each is a :class:`Stage`
object declaring its forward action (``run``) and its compensating
action (``rollback``), driven by a :class:`StagePipeline` that
guarantees atomicity: a fault at any stage — an injected link drop
mid-transfer, a failed restore on the guest, a genuine bug — rolls back
the faulted stage and then every completed stage in reverse order, so
the app is still running on the home device and the guest holds no
partial process state.  What legitimately survives a rollback is cache,
not state: synced APK/data deltas and received chunk-store entries stay,
which is exactly what lets a retry under ``pipelined_transfer`` resume,
moving only the chunks the guest has not already seen.

Observability threads through the same seam: the pipeline opens one
``migration`` span on the home tracer, nests a span per stage (and the
transfer stage nests per-chunk spans), and derives
``MigrationReport.stages`` from those spans — the Chrome-trace export
(``flux-sim migrate --trace-out``) and the report are two views of one
measurement.

Fault injection lives at the layers faults actually occur:
:class:`repro.android.net.link.LinkFaultPlan` on the link and
:class:`repro.core.cria.restore.RestoreFaultPlan` on the restore engine;
the stages translate those layer errors into ``MigrationError`` with the
``LINK_DOWN`` / ``RESTORE_FAILED`` reason codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.android.net.link import (
    FaultOp,
    Link,
    LinkDownError,
    RecordOp,
    TransferOp,
)
from repro.core.cria.checkpoint import checkpoint_app
from repro.core.cria.errors import (
    CheckpointError,
    MigrationError,
    MigrationRefusal,
)
from repro.core.cria.preparation import check_preparable, prepare_app
from repro.core.cria.restore import (
    RestoreFaultPlan,
    restore_app,
    rollback_restore,
)
from repro.core.extensions import FluxExtensions
from repro.core.migration import costs
from repro.core.replay.engine import replay_log
from repro.sim.scheduler import Charge, drive_sync


@dataclass
class MigrationContext:
    """Mutable state threaded through the pipeline.

    Stages read what earlier stages produced and record what later
    stages (and rollbacks) need; the report accumulates the numbers.
    """

    home: object
    guest: object
    package: str
    link: Link
    report: object                      # MigrationReport
    extensions: FluxExtensions
    restore_fault: Optional[RestoreFaultPlan] = None
    thread: object = None               # home-side ActivityThread
    process: object = None              # home-side main kernel process
    prep_report: object = None
    image: object = None                # CheckpointImage
    frame: bytes = b""                  # serialized wire frame
    frozen_processes: List[object] = field(default_factory=list)
    restored: object = None             # RestoredApp on the guest
    session: str = ""                   # session label on both telemetry planes


def _emit(ctx: MigrationContext, kind: str, **attrs) -> None:
    """Emit a causal event on the home device's flight recorder.

    Guarded with ``getattr`` so bare test doubles without a device-level
    :class:`repro.sim.events.FlightRecorder` still drive the pipeline.
    """
    events = getattr(ctx.home, "events", None)
    if events is not None:
        events.emit(kind, **attrs)


class Stage:
    """One migration stage: a forward action plus its compensation.

    The forward action is :meth:`steps` — a generator that *yields* its
    charge points (:class:`~repro.sim.scheduler.Charge` for CPU work,
    link flow ops for wire time) instead of advancing the clock
    directly, so a scheduler can suspend the migration at every charge
    and interleave it with others.  It must either complete or leave
    nothing behind that ``rollback`` (its own, for partial effects, plus
    earlier stages') cannot erase.  ``rollback`` is best-effort
    synchronous compensation and must be idempotent: the pipeline calls
    it on the faulted stage first, then on completed stages in reverse
    order.

    Legacy stages (tests, experiments) that define only a synchronous
    ``run`` are bridged automatically: the default :meth:`steps` runs
    the override as one atomic step, and the default :meth:`run` drives
    :meth:`steps` inline — so either entry point works for either style.
    """

    name: str = "?"

    def run(self, ctx: MigrationContext) -> None:
        """Synchronous forward action (drives :meth:`steps` inline)."""
        drive_sync(self.steps(ctx), ctx.home.clock)

    def steps(self, ctx: MigrationContext):
        """Yield-point generator form of the forward action."""
        override = self._run_override()
        if override is None:
            raise NotImplementedError
        override(ctx)
        return
        yield  # pragma: no cover -- marks this as a generator function

    def _run_override(self):
        """A ``run`` defined on the instance or a subclass, else None.

        Instance-level assignment (``stage.run = fn``) takes priority;
        both forms are called with the context only.
        """
        run = self.__dict__.get("run")
        if run is not None:
            return run
        cls_run = type(self).run
        if cls_run is not Stage.run:
            return cls_run.__get__(self, type(self))
        return None

    def rollback(self, ctx: MigrationContext) -> None:
        """Undo this stage's effects; default is stateless (no-op)."""


class PreparationStage(Stage):
    """Background the app, trim memory, eglUnload (paper §3.1/§3.3)."""

    name = "preparation"

    def steps(self, ctx: MigrationContext):
        home = ctx.home
        check_preparable(home, ctx.package, ctx.extensions)
        view_count = sum(a.view_root.view_count()
                         for a in ctx.thread.activities.values()
                         if a.view_root is not None)
        context_count = home.vendor_gl.live_context_count(ctx.process.pid)
        ctx.prep_report = prepare_app(home, ctx.package, ctx.extensions)
        yield Charge(costs.preparation_cost(
            view_count, context_count, home.profile.cpu_factor))

    def rollback(self, ctx: MigrationContext) -> None:
        # The app was only backgrounded; bringing it to the foreground
        # rebuilds surfaces and resumes it on the home device.
        try:
            ctx.home.activity_service.foreground_app(ctx.package)
        except Exception:
            pass


class CheckpointStage(Stage):
    """Freeze the process tree and capture the image.

    On the pipelined path compression is deferred to the transfer stage
    where it overlaps the wire; the serial path serializes+compresses
    here, as published.
    """

    name = "checkpoint"

    def steps(self, ctx: MigrationContext):
        home, report = ctx.home, ctx.report
        image = checkpoint_app(home, ctx.package, ctx.extensions)
        ctx.image = image
        ctx.frozen_processes = list(home.app_processes(ctx.package))
        if ctx.prep_report.gl_capture is not None:
            image.metadata["gl_capture"] = ctx.prep_report.gl_capture
        report.image_raw_bytes = image.raw_bytes()
        report.image_compressed_bytes = image.compressed_bytes()
        report.record_log_entries = len(image.record_log)
        report.record_log_bytes = image.record_log_bytes()
        if ctx.extensions.pipelined_transfer:
            yield Charge(costs.serialize_cost(
                report.image_raw_bytes, home.profile.cpu_factor))
        else:
            yield Charge(costs.checkpoint_cost(
                report.image_raw_bytes, home.profile.cpu_factor))

    def rollback(self, ctx: MigrationContext) -> None:
        # Thaw every process the checkpoint froze — including those a
        # partially-failed multi-process checkpoint left frozen, so look
        # at the live process list, not just what a completed run
        # recorded.  The record log was never consumed (that happens in
        # the post-commit cleanup), so the recorder still holds the
        # app's entries.
        for process in ctx.home.app_processes(ctx.package):
            try:
                if process.state.value == "frozen":
                    process.thaw()
            except Exception:
                pass
        ctx.frozen_processes = []


class TransferStage(Stage):
    """Verify/sync APK+data deltas, then move the image over the link.

    A :class:`LinkDownError` (injected or real) surfaces as
    ``MigrationError(LINK_DOWN)``.  On the pipelined path the chunks
    fully delivered before the drop are recorded in the guest's chunk
    store — they really did arrive — which is what a retry resumes from.
    """

    name = "transfer"

    def steps(self, ctx: MigrationContext):
        from repro.core.cria.wire import serialize_image

        home, report, link = ctx.home, ctx.report, ctx.link
        ctx.frame = serialize_image(ctx.image)
        pairing = home.pairing_service
        try:
            report.data_delta_bytes = pairing.verify_app(
                ctx.guest, ctx.package, link)
            if ctx.extensions.pipelined_transfer:
                yield from self._pipelined(ctx)
            else:
                report.image_wire_bytes = report.image_compressed_bytes
                yield TransferOp(link, report.transferred_bytes,
                                 session=ctx.session)
                self._index_serial(ctx)
        except LinkDownError as error:
            if not ctx.extensions.pipelined_transfer:
                report.image_wire_bytes = error.delivered_bytes
            raise MigrationError(MigrationRefusal.LINK_DOWN,
                                 str(error)) from error
        home.metrics.counter("link", "migration_bytes",
                             app=ctx.package).inc(report.transferred_bytes)

    def _index_serial(self, ctx: MigrationContext) -> None:
        """Index the whole-image transfer's chunks in both chunk stores.

        The serial path moves the full compressed image, but both ends
        still record what crossed: the store is a digest index of chunks
        a device has received (or sent), whatever transfer mode moved
        them — so a later ``pipelined_transfer`` hop can dedupe against
        a serial one.  Pure bookkeeping: no clock, no RNG, no wire.
        """
        from repro.core.migration.chunks import chunk_image

        chunks = chunk_image(ctx.image)
        ctx.guest.chunk_store.add_many(chunks)
        ctx.home.chunk_store.add_many(chunks)
        ctx.home.metrics.counter(
            "chunks", "wire_bytes", app=ctx.package).inc(
            sum(c.wire_bytes for c in chunks))

    def _pipelined(self, ctx: MigrationContext):
        """Chunked transfer: digest negotiation, chunk cache, pipeline.

        The image is split into content-addressed chunks; the guest's
        chunk store is consulted so only unseen chunks travel, and the
        compression of chunk *i+1* overlaps the send of chunk *i* on
        the virtual clock (pipeline fill + drain, not sum-of-stages).
        The app-data delta was already synced by ``verify_app``.
        """
        from repro.core.migration.chunks import chunk_image

        home, guest, link, report = ctx.home, ctx.guest, ctx.link, ctx.report
        tracer = home.tracer
        plan = chunk_image(ctx.image)
        cached, missing = guest.chunk_store.split(plan)
        report.transfer_chunks_total = len(plan)
        report.transfer_chunks_cached = len(cached)
        report.chunk_bytes_cached = sum(c.raw_bytes for c in cached)
        metrics = home.metrics
        metrics.counter("chunks", "hits", app=ctx.package).inc(len(cached))
        metrics.counter("chunks", "misses", app=ctx.package).inc(len(missing))
        metrics.counter("chunks", "bytes_avoided", app=ctx.package).inc(
            sum(c.wire_bytes for c in cached))
        metrics.counter("chunks", "wire_bytes", app=ctx.package).inc(
            sum(c.wire_bytes for c in missing))

        # Digest negotiation + the data delta ride one round trip.
        negotiation_bytes = costs.CHUNK_DIGEST_BYTES * len(plan)
        yield TransferOp(link,
                         report.data_delta_bytes + negotiation_bytes,
                         session=ctx.session)

        wire_sizes = [c.wire_bytes for c in missing]
        compress_times = [costs.chunk_compress_cost(
            c.raw_bytes, home.profile.cpu_factor) for c in missing]
        send_times = link.burst_send_seconds(wire_sizes)
        windows = costs.pipeline_schedule(compress_times, send_times)
        burst_start = home.clock.now
        total_wire = sum(wire_sizes)

        budget = link.fault_budget()
        if budget is not None and total_wire > budget:
            yield from self._pipelined_fault(ctx, missing, wire_sizes,
                                             windows, burst_start, budget,
                                             negotiation_bytes)
            return

        burst_seconds = link.latency_s + costs.pipeline_seconds(
            compress_times, send_times)
        if cached:
            _emit(ctx, "link.chunks_cached", count=len(cached),
                  bytes=sum(c.wire_bytes for c in cached))
        for chunk, (start, end) in zip(missing, windows):
            tracer.add_span(
                f"chunk:{chunk.label or chunk.digest[:8]}",
                burst_start + link.latency_s + start,
                burst_start + link.latency_s + end,
                category="chunk", wire_bytes=chunk.wire_bytes)
            _emit(ctx, "link.chunk", digest=chunk.digest[:12],
                  label=chunk.label, wire_bytes=chunk.wire_bytes)
        yield RecordOp(link, total_wire, burst_seconds,
                       session=ctx.session)
        report.image_wire_bytes = total_wire + negotiation_bytes

        # Both ends now hold every chunk: the guest received them, the
        # home sent (and can re-derive) them — so a later return hop
        # (guest -> home) benefits symmetrically.
        guest.chunk_store.add_many(plan)
        home.chunk_store.add_many(plan)

    def _pipelined_fault(self, ctx: MigrationContext, missing, wire_sizes,
                         windows, burst_start: float, budget: int,
                         negotiation_bytes: int):
        """The burst crosses the armed drop point: deliver the prefix.

        Chunks whose wire bytes fit wholly under the fault budget
        arrive (and enter both chunk stores — the resume set); the
        drop is charged mid-flight through the first chunk that does
        not fit, then the link raises.
        """
        home, guest, link = ctx.home, ctx.guest, ctx.link
        tracer = home.tracer
        delivered = 0
        cumulative = 0
        drop_offset = 0.0
        for size, (start, end) in zip(wire_sizes, windows):
            if cumulative + size > budget:
                fraction = (budget - cumulative) / size if size else 0.0
                drop_offset = start + (end - start) * fraction
                break
            cumulative += size
            delivered += 1
            drop_offset = end
        arrived = missing[:delivered]
        for chunk, (start, end) in zip(arrived, windows):
            tracer.add_span(
                f"chunk:{chunk.label or chunk.digest[:8]}",
                burst_start + link.latency_s + start,
                burst_start + link.latency_s + end,
                category="chunk", wire_bytes=chunk.wire_bytes)
            _emit(ctx, "link.chunk", digest=chunk.digest[:12],
                  label=chunk.label, wire_bytes=chunk.wire_bytes)
        guest.chunk_store.add_many(arrived)
        home.chunk_store.add_many(arrived)
        ctx.report.image_wire_bytes = budget + negotiation_bytes
        tracer.emit("migration", "link-fault", package=ctx.package,
                    chunks_delivered=delivered, chunks_lost=len(missing)
                    - delivered, wire_bytes_delivered=budget)
        yield FaultOp(link, budget, link.latency_s + drop_offset,
                      session=ctx.session)


class RestoreStage(Stage):
    """Resurrect the image on the guest, after frame integrity checks.

    ``restore_app`` is internally atomic: any failure (injected
    :class:`RestoreFault` or a genuine corruption) erases its partial
    processes and namespace from the guest before the error reaches the
    pipeline, where it surfaces as ``MigrationError(RESTORE_FAILED)``.
    """

    name = "restore"

    def steps(self, ctx: MigrationContext):
        from repro.core.cria.wire import verify_against_image

        guest, report = ctx.guest, ctx.report
        try:
            verify_against_image(ctx.frame, ctx.image)
            ctx.restored = restore_app(guest, ctx.image,
                                       fault_plan=ctx.restore_fault)
        except CheckpointError as error:
            raise MigrationError(MigrationRefusal.RESTORE_FAILED,
                                 str(error)) from error
        yield Charge(costs.restore_cost(
            report.image_raw_bytes, guest.profile.cpu_factor))

    def rollback(self, ctx: MigrationContext) -> None:
        # Only reached when restore completed but a later stage faulted:
        # tear the restored app off the guest and point the thread (the
        # app's heap) back at its still-present home process.
        restored = ctx.restored
        if restored is None:
            return
        guest = ctx.guest
        try:
            guest.terminate_app(ctx.package)
        except Exception:
            pass
        rollback_restore(guest, restored.namespace, [])
        ctx.restored = None
        try:
            ctx.thread.rebind(ctx.home.framework, ctx.process)
        except Exception:
            pass


class ReintegrationStage(Stage):
    """Replay the record log, signal hardware changes, foreground."""

    name = "reintegration"

    def steps(self, ctx: MigrationContext):
        home, guest, report = ctx.home, ctx.guest, ctx.report
        restored = ctx.restored
        report.replay = replay_log(
            guest, restored, ctx.image, ctx.extensions,
            home_location_service=(home.service("location")
                                   if ctx.extensions.gps_tether else None))
        restored.process.thaw()
        for proc in restored.secondary_processes:
            proc.thaw()
        self._reintegrate(ctx)
        yield Charge(costs.reintegration_cost(
            report.replay.total_handled, guest.profile.cpu_factor))

    def _reintegrate(self, ctx: MigrationContext) -> None:
        """Hardware-change + connectivity signals, then foreground."""
        guest, restored = ctx.guest, ctx.restored
        thread = restored.thread
        # Conditional initialization rebuilds the UI sized for the guest.
        thread.rebuild_view_roots()
        gl_capture = ctx.image.metadata.get("gl_capture")
        if gl_capture is not None and ctx.extensions.gl_record_replay:
            from repro.core.glreplay import replay_capture
            uploaded = replay_capture(thread, gl_capture)
            guest.tracer.emit("glreplay", "replayed",
                              package=restored.package, bytes=uploaded)
        config = {"screen": guest.profile.screen,
                  "country": guest.profile.country}
        thread.on_configuration_changed(config)
        # Connectivity appears as a loss followed by a new connection.
        guest.service("connectivity").simulate_connectivity_interrupt()
        guest.activity_service.foreground_app(restored.package)


#: The paper's Figure 13 lifecycle, in order.
def default_stages() -> List[Stage]:
    return [PreparationStage(), CheckpointStage(), TransferStage(),
            RestoreStage(), ReintegrationStage()]


class StagePipeline:
    """Drives stages in order; on a fault, compensates in reverse.

    Atomicity contract: after a fault at stage *k*, stage *k*'s own
    rollback runs first (clearing any partial effects its ``run`` left),
    then stages *k-1 … 0* roll back in reverse order.  Rollback actions
    are best-effort and exception-isolated — a failing compensation is
    traced, never masks the original fault, and never blocks the
    remaining compensations.

    Every stage runs inside a tracer span nested under one ``migration``
    span; ``report.stages`` is derived from those spans (including the
    partial duration of a faulted stage), and ``report.faulted_stage``
    names the stage that aborted the migration.
    """

    def __init__(self, stages: Optional[List[Stage]] = None) -> None:
        self.stages = list(stages) if stages is not None \
            else default_stages()

    def run(self, ctx: MigrationContext) -> None:
        """Run-to-completion form: drives :meth:`steps` inline."""
        drive_sync(self.steps(ctx), ctx.home.clock)

    def steps(self, ctx: MigrationContext):
        """The pipeline as a cooperative session (yields charge points).

        Suspension happens only inside a stage's own yields; everything
        between two yields — rollback included — is one atomic step, so
        the atomicity contract is unchanged under interleaving.  Spans
        stay open across suspensions: wall time another session consumes
        while this one is suspended mid-stage genuinely is wire/CPU
        contention and belongs in the stage's measured duration.
        """
        tracer = ctx.home.tracer
        completed: List[Stage] = []
        recorders = self._recorders(ctx)
        if ctx.session:
            # The session label rides every event both devices emit for
            # this migration, so interleaved scenario logs segment
            # cleanly (flux-sim explain groups by it).
            for recorder in recorders:
                recorder.set_context(session=ctx.session)
        _emit(ctx, "migration.start", package=ctx.package,
              home=ctx.home.name, guest=ctx.guest.name)
        with tracer.span("migration", category="migration",
                         package=ctx.package, home=ctx.home.name,
                         guest=ctx.guest.name) as root:
            for stage in self.stages:
                # Stage context labels every event either device emits
                # while the stage runs (guest-side restore/replay events
                # have no open home-tracer span to attribute them).
                for recorder in recorders:
                    recorder.set_context(stage=stage.name,
                                         package=ctx.package)
                _emit(ctx, "stage.start", stage=stage.name)
                handle = tracer.span(stage.name, category="stage")
                try:
                    with handle:
                        yield from stage.steps(ctx)
                except Exception as error:
                    refused = (isinstance(error, MigrationError)
                               and not error.is_fault)
                    reason = (error.reason.value
                              if isinstance(error, MigrationError)
                              else type(error).__name__)
                    # A policy refusal means the app cannot migrate; a
                    # fault means this attempt died mid-flight.  Both
                    # roll back, only faults mark the stage.
                    if not refused:
                        ctx.report.faulted_stage = stage.name
                        root.annotate(faulted_stage=stage.name,
                                      refusal=reason)
                        _emit(ctx, "stage.fault", stage=stage.name,
                              reason=reason)
                    else:
                        root.annotate(refusal=reason)
                        _emit(ctx, "migration.refused",
                              stage=stage.name, reason=reason)
                    self._derive_stage_times(ctx, root)
                    self._rollback(ctx, stage, completed, reason)
                    self._clear_context(recorders)
                    raise
                _emit(ctx, "stage.end", stage=stage.name,
                      seconds=round(handle.span.duration, 6))
                completed.append(stage)
            self._derive_stage_times(ctx, root)
        # Emitted before the context clears so the terminal event still
        # carries the session label (segmenting needs it to close the
        # segment it opened).
        _emit(ctx, "migration.done", package=ctx.package,
              total_seconds=round(ctx.report.total_seconds, 6))
        self._clear_context(recorders)

    @staticmethod
    def _recorders(ctx: MigrationContext) -> List[object]:
        """Both devices' flight recorders (absent on bare test doubles)."""
        recorders = []
        for device in (ctx.home, ctx.guest):
            recorder = getattr(device, "events", None)
            if recorder is not None:
                recorders.append(recorder)
        return recorders

    @staticmethod
    def _clear_context(recorders: List[object]) -> None:
        for recorder in recorders:
            recorder.clear_context("stage", "package", "session")

    def _derive_stage_times(self, ctx: MigrationContext, root) -> None:
        """``report.stages`` from the span tree (was: ad-hoc Stopwatch)."""
        from repro.sim.trace import critical_path

        stage_spans = [span for span in root.children
                       if span.category == "stage" and span.closed]
        for span in stage_spans:
            ctx.report.stages[span.name] = span.duration
        if not stage_spans:
            return
        dominant = max(stage_spans, key=lambda s: s.duration)
        ctx.report.dominant_stage = dominant.name
        ctx.report.critical_path = [
            {"name": span.name, "category": span.category,
             "seconds": span.duration, "self_seconds": span.self_seconds}
            for span in critical_path(dominant)]
        metrics = getattr(ctx.home, "metrics", None)
        if metrics is not None:
            metrics.counter("migration", "dominant_stage",
                            stage=dominant.name, app=ctx.package).inc()

    def _rollback(self, ctx: MigrationContext, faulted: Stage,
                  completed: List[Stage], reason: str) -> None:
        tracer = ctx.home.tracer
        tracer.emit("migration", "rollback-begin", package=ctx.package,
                    faulted_stage=faulted.name, reason=reason)
        _emit(ctx, "migration.rollback_begin", package=ctx.package,
              faulted_stage=faulted.name, reason=reason)
        for stage in [faulted] + list(reversed(completed)):
            try:
                stage.rollback(ctx)
                _emit(ctx, "stage.rollback", stage=stage.name)
            except Exception as rollback_error:   # compensations never mask
                tracer.emit("migration", "rollback-error",
                            package=ctx.package, stage=stage.name,
                            error=repr(rollback_error))
                _emit(ctx, "stage.rollback_error", stage=stage.name,
                      error=repr(rollback_error))
        tracer.emit("migration", "rolled-back", package=ctx.package,
                    faulted_stage=faulted.name)
        _emit(ctx, "migration.rolled_back", package=ctx.package,
              faulted_stage=faulted.name)
