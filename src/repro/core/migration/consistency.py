"""Cross-device app-state consistency (paper §3.4).

After an app migrates out, its home device remembers where it went.
Starting the app natively on the home device while it still lives on a
guest raises a prompt: sync the guest's state back, or proceed and lose
the guest-side modifications.  Migrating the app back home resolves the
inconsistency and clears the mark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.android.storage.sync import RsyncEngine


class ConsistencyChoice(enum.Enum):
    SYNC_BACK = "sync-back"
    DISCARD_GUEST_STATE = "discard-guest-state"


class ConsistencyConflict(Exception):
    """App started at home while its live state is on a guest device."""

    def __init__(self, package: str, guest_name: str) -> None:
        super().__init__(
            f"{package} was migrated to {guest_name} and not migrated back; "
            "choose SYNC_BACK or DISCARD_GUEST_STATE")
        self.package = package
        self.guest_name = guest_name


@dataclass
class MigratedOutRecord:
    package: str
    guest_name: str
    migrated_at: float


class ConsistencyManager:
    def __init__(self, device) -> None:
        self.device = device
        self._migrated_out: Dict[str, MigratedOutRecord] = {}

    # -- bookkeeping ---------------------------------------------------------

    def mark_migrated_out(self, package: str, guest_name: str) -> None:
        self._migrated_out[package] = MigratedOutRecord(
            package=package, guest_name=guest_name,
            migrated_at=self.device.clock.now)

    def mark_returned(self, package: str) -> None:
        self._migrated_out.pop(package, None)

    def is_migrated_out(self, package: str) -> Optional[MigratedOutRecord]:
        return self._migrated_out.get(package)

    # -- home-launch gate (paper: the prompt) -------------------------------------

    def check_native_start(self, package: str) -> None:
        """Raise :class:`ConsistencyConflict` when state lives elsewhere."""
        record = self._migrated_out.get(package)
        if record is not None:
            raise ConsistencyConflict(package, record.guest_name)

    def resolve_native_start(self, package: str, guest,
                             choice: ConsistencyChoice) -> None:
        """Apply the user's choice for a conflicted native start."""
        record = self._migrated_out.get(package)
        if record is None:
            return
        if choice is ConsistencyChoice.SYNC_BACK:
            self.sync_state_back(package, guest)
        # Either way the guest's running instance is discarded and the
        # home copy becomes authoritative.
        if guest.thread_of(package) is not None:
            guest.terminate_app(package)
        guest.recorder.forget_app(package)
        self.mark_returned(package)

    def sync_state_back(self, package: str, guest) -> int:
        """Pull the app's data directory changes back from the guest."""
        from repro.core.migration.pairing import flux_root

        home = self.device
        rsync = RsyncEngine()
        root = flux_root(home.name)
        result = rsync.sync(guest.storage, f"{root}/data/{package}",
                            home.storage, f"/data/data/{package}")
        return result.bytes_delta
