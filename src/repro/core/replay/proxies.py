"""Built-in @replayproxy implementations.

Each proxy is registered under the dotted name the AIDL decoration uses
(``flux.recordreplay.Proxies.<name>``).  A proxy receives the replay
session and the recorded entry, and decides whether/how the call reaches
the guest's service — the "adaptive" half of Selective Record/Adaptive
Replay (paper §3.2).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.android.binder.parcel import FdToken


PROXIES: Dict[str, Callable] = {}


def replay_proxy(name: str):
    """Register a proxy under ``flux.recordreplay.Proxies.<name>``."""
    def decorator(func):
        PROXIES[f"flux.recordreplay.Proxies.{name}"] = func
        return func
    return decorator


def lookup(dotted_name: str) -> Callable:
    try:
        return PROXIES[dotted_name]
    except KeyError:
        raise KeyError(f"no replay proxy registered as {dotted_name!r}") \
            from None


@replay_proxy("alarmMgrSet")
def alarm_mgr_set(session, entry) -> bool:
    """Replay an alarm only if it has not already fired (paper Fig. 10).

    Compares against the time of *checkpoint* rather than the current
    time so an alarm due mid-migration still fires after restore.
    """
    if entry.args["triggerAtTime"] <= session.checkpoint_time:
        session.report.note_skip(entry, "alarm already triggered")
        return False
    session.invoke(entry)
    return True


@replay_proxy("alarmMgrSetRepeating")
def alarm_mgr_set_repeating(session, entry) -> bool:
    """Roll a repeating alarm's next trigger past the checkpoint time."""
    trigger = entry.args["triggerAtTime"]
    interval = entry.args["interval"]
    missed = 0
    while trigger <= session.checkpoint_time:
        trigger += interval
        missed += 1
    args = dict(entry.args)
    args["triggerAtTime"] = trigger
    if missed:
        session.report.note_adaptation(
            entry, f"advanced repeating alarm past {missed} missed firings")
    session.invoke(entry, args_override=args)
    return True


@replay_proxy("audioSetStreamVolume")
def audio_set_stream_volume(session, entry) -> bool:
    """Rescale the volume index to the guest's per-stream range."""
    stream = entry.args["streamType"]
    index = entry.args["index"]
    home_max = session.home_stream_max(stream)
    audio_proxy = session.service_proxy("IAudioService")
    guest_max = audio_proxy.getStreamMaxVolume(stream)
    if home_max and guest_max != home_max:
        rescaled = round(index * guest_max / home_max)
        session.report.note_adaptation(
            entry, f"volume {index}/{home_max} -> {rescaled}/{guest_max}")
    else:
        rescaled = index
    args = dict(entry.args)
    args["index"] = rescaled
    session.invoke(entry, args_override=args)
    return True


@replay_proxy("sensorCreateConnection")
def sensor_create_connection(session, entry) -> bool:
    """Re-create the SensorEventConnection under its original handle.

    The recorded call's result was an IBinder whose handle the app still
    holds in its heap; CRIA left that handle pending, and this proxy asks
    the guest's SensorService for a fresh connection mapped to it.
    """
    old_handle = entry.result.handle
    sensor_service = session.device.service("sensor")
    new_remote = sensor_service.create_connection_for(
        session.process, at_handle=old_handle)
    session.resolve_pending(old_handle)
    # Keep the guest's record log consistent for a future re-migration.
    session.record_replayed(entry, result=new_remote)
    session.report.note_proxy(entry, f"connection re-created @{old_handle}")
    return True


@replay_proxy("sensorGetChannel")
def sensor_get_channel(session, entry) -> bool:
    """Obtain a fresh event socket and dup2 it into the original fd.

    The original descriptor number was reserved during restore
    (paper §3.2: "dup2 this descriptor into the original socket
    descriptor, reserved during restoration of the app").
    """
    old_fd = entry.result.fd
    connection_handle = entry.args.get("__target__")
    node = session.device.binder.resolve(session.process, connection_handle)
    connection = node.service
    new_token = connection.getSensorChannel(session.process)
    socket = session.process.fds.detach(new_token.fd)
    session.process.fds.dup2(socket, old_fd)
    connection.client_fd = old_fd
    session.record_replayed(entry, result=FdToken(old_fd))
    session.report.note_proxy(entry, f"sensor channel dup2 -> fd {old_fd}")
    return True
