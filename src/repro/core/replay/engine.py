"""The Adaptive Replay engine.

Walks the migrated record log in order and re-issues each call against
the guest device's services *through the app's own (recording) proxies*,
so the guest's call log ends up consistent — a second migration carries
the right state.  Methods decorated with ``@replayproxy`` go through
their registered proxy instead; hardware differences are adapted (GPS
absent -> network provider fallback; paper §3.2's "communication with
that device ... over the network" option is modelled as an adaptation
note plus fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.android.binder.ibinder import IBinder
from repro.android.services.aidl_sources import SERVICE_SPECS
from repro.core.replay.proxies import lookup as lookup_proxy
from repro.sim.events import FlightRecorder
from repro.sim.metrics import MetricsRegistry


DESCRIPTOR_TO_KEY: Dict[str, str] = {
    spec.interface: spec.key for spec in SERVICE_SPECS}


class ReplayError(Exception):
    pass


@dataclass
class ReplayReport:
    package: str
    replayed: int = 0
    skipped: int = 0
    proxied: int = 0
    adaptations: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def note_skip(self, entry, why: str) -> None:
        self.skipped += 1
        self.notes.append(f"skip {entry.interface}.{entry.method}: {why}")

    def note_proxy(self, entry, what: str) -> None:
        self.proxied += 1
        self.notes.append(f"proxy {entry.interface}.{entry.method}: {what}")

    def note_adaptation(self, entry, what: str) -> None:
        self.adaptations.append(
            f"{entry.interface}.{entry.method}: {what}")

    @property
    def total_handled(self) -> int:
        return self.replayed + self.skipped + self.proxied


class ReplaySession:
    """One app's replay onto one guest device."""

    def __init__(self, device, restored, image, extensions=None,
                 home_location_service=None) -> None:
        from repro.core.extensions import FluxExtensions
        self.device = device
        self.thread = restored.thread
        self.process = restored.process
        self.image = image
        self.extensions = extensions or FluxExtensions.none()
        self.home_location_service = home_location_service
        self.checkpoint_time = image.checkpoint_time
        self.report = ReplayReport(package=image.package)
        device_metrics = getattr(device, "metrics", None)
        self.metrics = (device_metrics if device_metrics is not None
                        else MetricsRegistry(enabled=False))
        device_events = getattr(device, "events", None)
        self.events = (device_events if device_events is not None
                       else FlightRecorder(enabled=False))
        self._home_volumes: Dict[int, int] = dict(
            image.metadata.get("stream_max_volumes", {}))
        self._pending = {ref.handle: ref for ref in restored.pending_refs}

    # -- context helpers used by proxies ----------------------------------------

    def home_stream_max(self, stream: int) -> Optional[int]:
        return self._home_volumes.get(stream)

    def service_proxy(self, descriptor: str):
        """The app's own rebound proxy for a named system service."""
        key = DESCRIPTOR_TO_KEY[descriptor]
        manager = self.thread.context.get_system_service(key)
        return manager._proxy

    def anonymous_proxy(self, descriptor: str, handle: int):
        """A recording proxy over an app-held handle (sub-object calls)."""
        remote = IBinder(self.device.binder, self.process, handle)
        compiled = self.device.registry.get(descriptor)
        return compiled.new_proxy(remote, self.thread.recorder)

    def resolve_pending(self, handle: int) -> None:
        self._pending.pop(handle, None)

    def unresolved_pending(self) -> List[int]:
        return sorted(self._pending)

    def record_replayed(self, entry, result: Any = None) -> None:
        """Append a proxied call to the guest's log without re-invoking."""
        self.thread.recorder.on_call(entry.interface, entry.method,
                                     dict(entry.args), result)

    # -- the replay loop ---------------------------------------------------------

    def replay_all(self) -> ReplayReport:
        # inc(0) still creates the series: an app whose log pruned to
        # nothing shows up as "0 entries replayed", not as a gap.
        self.metrics.counter("replay", "log_entries",
                             app=self.report.package).inc(
            len(self.image.record_log))
        for entry in self.image.record_log:
            self._dispatch(entry)
        if self._pending:
            raise ReplayError(
                f"{self.report.package}: pending binder handles never "
                f"re-created: {self.unresolved_pending()}")
        self.device.tracer.emit(
            "replay", "done", package=self.report.package,
            replayed=self.report.replayed, proxied=self.report.proxied,
            skipped=self.report.skipped)
        return self.report

    def _dispatch(self, entry) -> None:
        app = self.report.package
        meta = self.device.registry.meta(entry.interface).method(entry.method)
        proxy_name = meta.replay_proxy
        if proxy_name is not None:
            lookup_proxy(proxy_name)(self, entry)
            self.metrics.counter("replay", "calls_proxied", app=app,
                                 proxy=proxy_name).inc()
            self.events.emit("replay.proxy", app=app, proxy=proxy_name,
                             interface=entry.interface, method=entry.method)
            return
        if self._should_skip(entry):
            self.metrics.counter("replay", "calls_skipped", app=app).inc()
            self.events.emit("replay.skip", app=app,
                             interface=entry.interface, method=entry.method)
            return
        self.invoke(entry)
        self.report.replayed += 1
        self.metrics.counter("replay", "calls_replayed", app=app).inc()
        self.events.emit("replay.invoke", app=app,
                         interface=entry.interface, method=entry.method)

    def _should_skip(self, entry) -> bool:
        """Calls that cannot be expressed at all on the guest's hardware."""
        if (entry.interface == "ILocationManagerService"
                and entry.method in ("addGpsStatusListener",
                                     "removeGpsStatusListener")):
            location_service = self.device.service("location")
            if not location_service.has_provider("gps"):
                if self._try_tether("gps", entry):
                    return False
                self.report.note_skip(
                    entry, "guest has no GPS hardware; GPS status events "
                    "unavailable (network proxying to home device offered)")
                return True
        return False

    def _try_tether(self, provider: str, entry) -> bool:
        """gps_tether extension: keep using the home device's hardware."""
        if not self.extensions.gps_tether:
            return False
        if self.home_location_service is None:
            return False
        location_service = self.device.service("location")
        if not location_service.is_tethered(provider):
            location_service.attach_tethered_provider(
                provider, self.home_location_service)
            self.report.note_adaptation(
                entry, f"provider {provider!r} tethered to the home "
                "device over the network")
        return True

    def invoke(self, entry, args_override: Optional[Dict[str, Any]] = None) -> Any:
        """Re-issue the recorded call against the guest's services."""
        args = dict(args_override if args_override is not None else entry.args)
        target_handle = args.pop("__target__", None)
        args = self._adapt_hardware(entry, args)

        if entry.interface in DESCRIPTOR_TO_KEY:
            proxy = self.service_proxy(entry.interface)
        elif target_handle is not None:
            proxy = self.anonymous_proxy(entry.interface, target_handle)
        else:
            raise ReplayError(
                f"cannot route {entry.interface}.{entry.method}: "
                "no service key and no target handle")
        method = getattr(proxy, entry.method)
        return method(**args)

    # -- hardware-absence adaptation ---------------------------------------------

    def _adapt_hardware(self, entry, args: Dict[str, Any]) -> Dict[str, Any]:
        if entry.interface != "ILocationManagerService":
            return args
        location_service = self.device.service("location")
        provider = args.get("provider")
        if provider is not None and not location_service.has_provider(provider):
            if self._try_tether(provider, entry):
                return args
            fallback = "network"
            self.report.note_adaptation(
                entry,
                f"guest lacks provider {provider!r}; falling back to "
                f"{fallback!r} (user may instead proxy {provider} over the "
                "network to the home device)")
            self.metrics.counter("replay", "calls_remapped",
                                 app=self.report.package,
                                 provider=str(provider)).inc()
            args = dict(args)
            args["provider"] = fallback
        return args


def replay_log(device, restored, image, extensions=None,
               home_location_service=None) -> ReplayReport:
    """Convenience wrapper: build a session and replay the whole log."""
    return ReplaySession(device, restored, image, extensions,
                         home_location_service).replay_all()
