"""Adaptive Replay: replay engine and @replayproxy implementations."""

from repro.core.replay.engine import (
    DESCRIPTOR_TO_KEY,
    ReplayError,
    ReplayReport,
    ReplaySession,
    replay_log,
)
from repro.core.replay.proxies import PROXIES, lookup, replay_proxy

__all__ = [
    "DESCRIPTOR_TO_KEY", "ReplayError", "ReplayReport", "ReplaySession",
    "replay_log", "PROXIES", "lookup", "replay_proxy",
]
