"""Feature flags for the paper's proposed extensions (§3.4, §6).

The base prototype refuses several app shapes; the paper sketches how
each refusal could be lifted.  This reproduction implements those
sketches behind explicit opt-in flags so the default behaviour stays
faithful to the published prototype while the extensions are real,
tested code:

* ``multi_process`` — checkpoint/restore the whole process tree
  ("CRIU already supports checkpointing an entire process tree").
  Lifts the Facebook refusal.
* ``gl_record_replay`` — record-prune-replay of GL calls for apps that
  preserve their EGL context across pause (the paper cites
  Kazemi/Garg/Cooperman [30] as the way around this).  Lifts the
  Subway Surfers refusal.
* ``content_provider_replay`` — treat ContentProvider connections as
  short-lived Binder services handled by record/replay ("it should be
  possible to leverage Flux's Selective Record/Adaptive Replay for
  support").
* ``sdcard_network_mount`` — instead of refusing on open common SD-card
  files, mount the home device's SD card over the network ("migrate the
  app and mount the home device's common SD card data as a network file
  system").
* ``gps_tether`` — when the guest lacks hardware the app was using,
  tether that device back to the home device over the network ("the
  user is given the option to allow communication with that device to
  continue to take place over the network").
* ``pipelined_transfer`` — §4 names transfer as the dominant stage and
  sketches transfer optimization as future work: the checkpoint image
  is split into content-addressed chunks, compression of chunk *i+1*
  overlaps the send of chunk *i*, and each device's persistent chunk
  store lets repeat migrations skip chunks the receiver has already
  seen.  See :mod:`repro.core.migration.chunks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class FluxExtensions:
    multi_process: bool = False
    gl_record_replay: bool = False
    content_provider_replay: bool = False
    sdcard_network_mount: bool = False
    gps_tether: bool = False
    pipelined_transfer: bool = False

    @classmethod
    def none(cls) -> "FluxExtensions":
        """The published prototype's behaviour."""
        return cls()

    @classmethod
    def all(cls) -> "FluxExtensions":
        return cls(multi_process=True, gl_record_replay=True,
                   content_provider_replay=True, sdcard_network_mount=True,
                   gps_tether=True, pipelined_transfer=True)

    def with_(self, **flags: bool) -> "FluxExtensions":
        return replace(self, **flags)
