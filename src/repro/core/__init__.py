"""Flux core: Selective Record / Adaptive Replay, CRIA, migration."""

from repro.core import cria, glreplay, migration, record, replay
from repro.core.extensions import FluxExtensions

__all__ = ["cria", "glreplay", "migration", "record", "replay",
           "FluxExtensions"]
