"""GL record-prune-replay: migrating preserved EGL contexts (extension).

The published prototype refuses apps that call
``setPreserveEGLContextOnPause`` because their GL context survives the
trim-memory chain (paper §3.4).  The paper points at transparent
checkpoint-restore of 3D graphics via record-prune-replay of the GL
call stream (Kazemi, Garg, Cooperman — reference [30]) as the way
around it.  This module implements that idea against our GL model:

* **record** — each preserved GLSurfaceView's live context is walked
  and its resources captured as a device-independent description
  (kind + size; contents are hash-tracked),
* **prune** — only *live* resources are captured: anything the app
  created and already deleted never appears (the "minimal number of
  calls" property of [30]),
* **replay** — on the guest, a fresh context is created against the
  guest's vendor library and the recorded resources are re-created
  into it, after which the view believes its context was never lost.

Enabled via ``FluxExtensions.gl_record_replay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class GlResourceRecord:
    kind: str
    size: int


@dataclass
class GlViewState:
    view_name: str
    texture_bytes: int
    preserve_flag: bool
    resources: Tuple[GlResourceRecord, ...]

    def total_bytes(self) -> int:
        return sum(r.size for r in self.resources)


@dataclass
class GlStateCapture:
    package: str
    views: List[GlViewState] = field(default_factory=list)

    def total_bytes(self) -> int:
        return sum(v.total_bytes() for v in self.views)

    def is_empty(self) -> bool:
        return not self.views


def capture_and_release(thread) -> GlStateCapture:
    """Record the preserved contexts' live resources, then destroy them.

    After this runs, the app has no live GL contexts — the preparation
    phase can proceed exactly as for a well-behaved app.
    """
    capture = GlStateCapture(package=thread.package)
    for activity in thread.activities.values():
        if activity.view_root is None:
            continue
        for gl_view in activity.view_root.gl_surface_views():
            if not gl_view.preserve_egl_context_on_pause:
                continue
            context = gl_view._context
            resources: Tuple[GlResourceRecord, ...] = ()
            if context is not None and not context.destroyed:
                resources = tuple(
                    GlResourceRecord(kind=r.kind, size=r.size)
                    for r in context.resources.values())
                context.destroy()
                gl_view._context = None
            capture.views.append(GlViewState(
                view_name=gl_view.name,
                texture_bytes=gl_view.texture_bytes,
                preserve_flag=True,
                resources=resources))
    return capture


def replay_capture(thread, capture: GlStateCapture) -> int:
    """Re-create the recorded GL state on the guest; returns bytes uploaded.

    The rebuilt view tree (conditional initialization) contains fresh
    GLSurfaceViews; each one matching a recorded view gets its context
    re-created against the *guest's* vendor library and the recorded
    resources uploaded into it.
    """
    by_name = {view.view_name: view for view in capture.views}
    uploaded = 0
    for activity in thread.activities.values():
        if activity.view_root is None:
            continue
        for gl_view in activity.view_root.gl_surface_views():
            state = by_name.get(gl_view.name)
            if state is None:
                continue
            gl_view.attach_gl(thread.framework.gl, thread.process)
            # Fresh context on the guest vendor library.
            if not gl_view.has_live_context:
                thread.framework.gl.egl_initialize(thread.process)
                gl_view._context = thread.framework.gl.egl_create_context(
                    thread.process)
            context = gl_view._context
            # Upload what the home context held, beyond the base texture
            # on_resume would create anyway.
            for record in state.resources:
                context.create_resource(record.kind, record.size)
                uploaded += record.size
            gl_view.preserve_egl_context_on_pause = state.preserve_flag
    return uploaded
