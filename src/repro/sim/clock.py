"""Deterministic virtual clock used by every component of the simulation.

All timing results reported by the benchmark harness come from this clock,
never from wall-clock time.  Components *charge* durations for the work
they model (CPU time for a checkpoint, wire time for a transfer) and the
clock advances accordingly.  Timers (e.g. the AlarmManagerService) register
callbacks that fire as the clock sweeps past their deadlines.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class ClockError(Exception):
    """Raised on invalid clock operations (e.g. moving time backwards)."""


@dataclass(order=True)
class _Timer:
    deadline: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    popped: bool = field(default=False, compare=False)


class TimerHandle:
    """Handle returned by :meth:`SimClock.call_at`; allows cancellation."""

    def __init__(self, timer: _Timer, clock: "SimClock") -> None:
        self._timer = timer
        self._clock = clock

    def cancel(self) -> None:
        timer = self._timer
        if timer.cancelled or timer.popped:
            return
        timer.cancelled = True
        self._clock._cancelled += 1

    @property
    def deadline(self) -> float:
        return self._timer.deadline

    @property
    def cancelled(self) -> bool:
        return self._timer.cancelled


class SimClock:
    """A monotonically advancing virtual clock with scheduled callbacks.

    The clock counts seconds as floats.  ``advance`` moves time forward,
    firing any timers whose deadlines are crossed, in deadline order.
    """

    #: Compact the heap once at least this many cancelled entries are
    #: buried in it *and* they outnumber the live ones; below the floor a
    #: rebuild costs more than the dead entries do.
    COMPACT_FLOOR = 64

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._timers: List[_Timer] = []
        self._seq = itertools.count()
        self._cancelled = 0
        self._dispatch_seq = 0
        self._dispatch = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def dispatch_token(self) -> int:
        """Identity of the innermost timer callback currently running.

        0 outside any dispatch.  Each fired timer gets a fresh token for
        the duration of its callback; nested advances push new tokens
        and restore the old one when they return.  Observers (the
        scheduler's time ledger) use this to tell whether a piece of
        code was reached synchronously from a given frame — same token
        — or through a timer callback that fired in between.
        """
        return self._dispatch

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds``, firing due timers in order."""
        if seconds < 0:
            raise ClockError(f"cannot advance clock by {seconds!r} seconds")
        self.advance_to(self._now + seconds)

    def advance_to(self, deadline: float) -> None:
        """Move time forward to an absolute ``deadline``.

        Re-entrant: a timer callback may itself advance the clock (a
        resumed session charging time synchronously).  The nested sweep
        shares the heap, and the outer sweep resumes from wherever the
        nested one left ``now`` — time never moves backwards.
        """
        if deadline < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {deadline}"
            )
        # Fire timers one at a time; a callback may schedule new timers,
        # which fire in this sweep too when due before the deadline.
        while self._timers and self._timers[0].deadline <= deadline:
            timer = heapq.heappop(self._timers)
            timer.popped = True
            if timer.cancelled:
                self._cancelled -= 1
                continue
            self._now = max(self._now, timer.deadline)
            outer = self._dispatch
            self._dispatch_seq += 1
            self._dispatch = self._dispatch_seq
            try:
                timer.callback()
            finally:
                self._dispatch = outer
        self._now = max(self._now, deadline)
        self._compact()

    def call_at(self, deadline: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run when the clock reaches ``deadline``.

        A deadline in the past fires on the next advance (immediately at
        the current time), matching how an expired alarm behaves.
        """
        timer = _Timer(deadline=deadline, seq=next(self._seq), callback=callback)
        heapq.heappush(self._timers, timer)
        return TimerHandle(timer, self)

    def call_after(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ClockError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback)

    def pending_timers(self) -> int:
        """Number of scheduled, uncancelled timers (O(1))."""
        return len(self._timers) - self._cancelled

    def next_deadline(self) -> Optional[float]:
        """Earliest pending deadline, or None when nothing is scheduled."""
        self._prune_head()
        return self._timers[0].deadline if self._timers else None

    def _prune_head(self) -> None:
        """Pop cancelled entries off the top of the heap."""
        while self._timers and self._timers[0].cancelled:
            heapq.heappop(self._timers).popped = True
            self._cancelled -= 1

    def _compact(self) -> None:
        """Lazily drop cancelled timers buried in the heap.

        Cancellation only flags the entry; long multi-session scenarios
        would otherwise accumulate dead entries for every rescheduled
        flow.  Rebuilding is O(n), amortised by the floor check.
        """
        if (self._cancelled >= self.COMPACT_FLOOR
                and self._cancelled * 2 > len(self._timers)):
            for timer in self._timers:
                if timer.cancelled:
                    timer.popped = True
            self._timers = [t for t in self._timers if not t.cancelled]
            heapq.heapify(self._timers)
            self._cancelled = 0


class StopwatchSpan:
    """A named span measured on a :class:`SimClock`; see :class:`Stopwatch`."""

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ClockError(f"span {self.name!r} not finished")
        return self.end - self.start


class Stopwatch:
    """Measures named, non-overlapping phases on a virtual clock.

    Used by the migration service to produce the per-stage timing
    breakdown reported in Figure 13.
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._spans: List[StopwatchSpan] = []
        self._open: Optional[StopwatchSpan] = None

    def start(self, name: str) -> None:
        if self._open is not None:
            raise ClockError(
                f"span {self._open.name!r} still open; cannot start {name!r}"
            )
        self._open = StopwatchSpan(name, self._clock.now)

    def stop(self) -> StopwatchSpan:
        if self._open is None:
            raise ClockError("no span open")
        span = self._open
        span.end = self._clock.now
        self._spans.append(span)
        self._open = None
        return span

    def spans(self) -> Tuple[StopwatchSpan, ...]:
        return tuple(self._spans)

    def duration(self, name: str) -> float:
        """Total duration of all completed spans with ``name``."""
        return sum(s.duration for s in self._spans if s.name == name)

    def total(self) -> float:
        return sum(s.duration for s in self._spans)
