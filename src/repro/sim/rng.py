"""Seeded random-number utilities.

Every stochastic component (network jitter, synthetic Play-store catalog,
workload variation) draws from a stream derived from a single experiment
seed, so any run is exactly reproducible and independent streams do not
perturb one another when a new consumer is added.
"""

from __future__ import annotations

import hashlib
import random


DEFAULT_SEED = 20150421  # EuroSys '15 opening day; arbitrary but fixed.


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a stable 63-bit child seed from ``root_seed`` and a name path."""
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


class RngFactory:
    """Hands out independent, named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = DEFAULT_SEED) -> None:
        self.root_seed = root_seed

    def stream(self, *names: str) -> random.Random:
        """A fresh generator for the stream identified by ``names``."""
        return random.Random(derive_seed(self.root_seed, *names))
