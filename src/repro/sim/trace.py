"""Structured event tracing.

Components append :class:`TraceEvent` records to a shared :class:`Tracer`.
Tests assert on the event stream (e.g. "trim-memory ran before eglUnload")
and the experiment harness uses it for debugging; it is cheap enough to be
always on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    name: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.4f}] {self.category}:{self.name} {extras}".rstrip()


class Tracer:
    """Append-only event log keyed to a virtual clock."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self._events: List[TraceEvent] = []
        self.enabled = True

    def emit(self, category: str, name: str, **detail: Any) -> None:
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(time=self._clock.now, category=category, name=name,
                       detail=detail)
        )

    def events(self, category: Optional[str] = None,
               name: Optional[str] = None) -> List[TraceEvent]:
        """Events filtered by category and/or name, in emission order."""
        out = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            out.append(event)
        return out

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()

    def index_of(self, category: str, name: str) -> int:
        """Index of the first matching event; -1 when absent."""
        for i, event in enumerate(self._events):
            if event.category == category and event.name == name:
                return i
        return -1
