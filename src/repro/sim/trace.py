"""Structured event tracing and hierarchical spans.

Components append :class:`TraceEvent` records to a shared :class:`Tracer`.
Tests assert on the event stream (e.g. "trim-memory ran before eglUnload")
and the experiment harness uses it for debugging; it is cheap enough to be
always on.  Event lookup by ``(category, name)`` is index-backed so the
harness's assertions do not rescan the full event list.

Long-running operations additionally open :class:`Span` records via
``tracer.span("migration")``: spans nest (a stage span inside the
migration span, chunk spans inside the transfer stage), measure start and
end on the virtual clock, and export as Chrome-trace JSON
(``chrome://tracing`` / Perfetto "traceEvents" format) for offline
inspection.  Spans never advance the clock or touch the RNG, so enabling
them cannot perturb simulation results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    name: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.4f}] {self.category}:{self.name} {extras}".rstrip()


@dataclass
class Span:
    """A named interval on the virtual clock, possibly nested.

    ``end is None`` while the span is open.  Children are appended in
    the order they close their parents opened them, preserving the
    execution order of sibling stages.
    """

    name: str
    category: str
    start: float
    end: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} still open")
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def self_seconds(self) -> float:
        """Time spent in this span itself, excluding closed children.

        Analytic child intervals may overlap (pipelined chunk windows),
        so the subtraction is clamped at zero rather than allowed to go
        negative.
        """
        child_time = sum(c.duration for c in self.children if c.closed)
        return max(0.0, self.duration - child_time)

    def annotate(self, **detail: Any) -> None:
        self.detail.update(detail)

    def child(self, name: str, category: Optional[str] = None) -> Optional["Span"]:
        """First direct child with ``name`` (and category, if given)."""
        for span in self.children:
            if span.name == name and (category is None
                                      or span.category == category):
                return span
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def critical_path(span: Span) -> List[Span]:
    """The dominant-descendant chain starting at ``span``.

    At each level the closed child with the largest duration is
    followed (first such child on ties, which is deterministic because
    children keep execution order).  For a migration span this names
    the dominant stage, then the dominant sub-operation inside it —
    the chain an optimization would have to shorten to move the
    end-to-end number.
    """
    path = [span]
    node = span
    while True:
        closed_children = [c for c in node.children if c.closed]
        if not closed_children:
            return path
        node = max(closed_children, key=lambda c: c.duration)
        path.append(node)


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end_span(self.span)
        return None


class Tracer:
    """Append-only event log plus a span tree, keyed to a virtual clock."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self._events: List[TraceEvent] = []
        # Position indexes into _events, maintained on emit so filtered
        # lookups never rescan the full list.
        self._by_pair: Dict[Tuple[str, str], List[int]] = {}
        self._by_category: Dict[str, List[int]] = {}
        self._by_name: Dict[str, List[int]] = {}
        self._roots: List[Span] = []
        self._open_spans: List[Span] = []
        # Cached "a/b/c" join of the open spans' names; rebuilt on span
        # open/close instead of per event (the flight recorder stamps
        # every emitted event with this path, making the join a sweep
        # hot path when recomputed per emit).
        self._open_span_path: Optional[str] = None
        self.enabled = True

    # -- flat events ---------------------------------------------------------

    def emit(self, category: str, name: str, **detail: Any) -> None:
        if not self.enabled:
            return
        position = len(self._events)
        self._events.append(
            TraceEvent(time=self._clock.now, category=category, name=name,
                       detail=detail)
        )
        self._by_pair.setdefault((category, name), []).append(position)
        self._by_category.setdefault(category, []).append(position)
        self._by_name.setdefault(name, []).append(position)

    def events(self, category: Optional[str] = None,
               name: Optional[str] = None) -> List[TraceEvent]:
        """Events filtered by category and/or name, in emission order."""
        if category is None and name is None:
            return list(self._events)
        if category is not None and name is not None:
            positions = self._by_pair.get((category, name), [])
        elif category is not None:
            positions = self._by_category.get(category, [])
        else:
            positions = self._by_name.get(name, [])
        return [self._events[i] for i in positions]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._by_pair.clear()
        self._by_category.clear()
        self._by_name.clear()
        self._roots.clear()
        self._open_spans.clear()
        self._open_span_path = None

    def index_of(self, category: str, name: str) -> int:
        """Index of the first matching event; -1 when absent."""
        positions = self._by_pair.get((category, name))
        return positions[0] if positions else -1

    # -- hierarchical spans ----------------------------------------------------

    def span(self, name: str, category: str = "span",
             **detail: Any) -> _SpanHandle:
        """Open a span nested under the innermost still-open span.

        Use as a context manager::

            with tracer.span("migration", package=pkg) as root:
                with tracer.span("transfer", category="stage"):
                    ...

        The span closes (records its end time) when the ``with`` block
        exits — also on exception, so a faulted stage still has a
        measured duration.
        """
        span = Span(name=name, category=category, start=self._clock.now,
                    detail=detail)
        if self._open_spans:
            self._open_spans[-1].children.append(span)
        else:
            self._roots.append(span)
        self._open_spans.append(span)
        self._open_span_path = None
        return _SpanHandle(self, span)

    @property
    def open_span_path(self) -> Optional[str]:
        """``"migration/transfer"``-style path of the open spans, cached."""
        if self._open_span_path is None and self._open_spans:
            self._open_span_path = "/".join(
                s.name for s in self._open_spans)
        return self._open_span_path

    def add_span(self, name: str, start: float, end: float,
                 category: str = "span", **detail: Any) -> Span:
        """Attach an already-measured interval under the open span.

        Used for sub-operations whose schedule was computed analytically
        (e.g. individual chunks of a pipelined burst charged to the
        clock as one block): the interval is recorded without touching
        the clock.
        """
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        span = Span(name=name, category=category, start=start, end=end,
                    detail=detail)
        if self._open_spans:
            self._open_spans[-1].children.append(span)
        else:
            self._roots.append(span)
        return span

    def end_span(self, span: Span) -> None:
        if span.end is None:
            span.end = self._clock.now
        while self._open_spans and self._open_spans[-1] is not span:
            dangling = self._open_spans.pop()
            if dangling.end is None:
                dangling.end = self._clock.now
        if self._open_spans:
            self._open_spans.pop()
        self._open_span_path = None

    def root_spans(self, category: Optional[str] = None) -> List[Span]:
        """Top-level spans, in open order."""
        if category is None:
            return list(self._roots)
        return [s for s in self._roots if s.category == category]

    # -- Chrome-trace export -----------------------------------------------------

    def chrome_trace(self, metrics=None, events=None) -> Dict[str, Any]:
        """The span tree as a Chrome-trace ("traceEvents") dict.

        Complete ("ph": "X") events with microsecond timestamps; the
        viewer reconstructs nesting from the containment of intervals.
        A span still open at export time is closed *at the current
        virtual time* and marked with a ``"flux.incomplete": true``
        arg, so the viewer shows a real interval instead of a
        malformed/invisible event and the reader can tell it never
        finished.

        ``metrics`` (a :class:`repro.sim.metrics.MetricsRegistry`)
        additionally appends the registry's timeline samples as counter
        ("C"-phase) tracks.  ``events`` (a
        :class:`repro.sim.events.FlightRecorder`, or a list of exported
        event dicts) interleaves the causal event log as instant
        ("i"-phase, thread-scoped) markers, so the viewer shows each
        ``binder.transact`` / ``link.chunk`` / ``stage.rollback`` tick
        at its position inside the spans.
        """
        trace_events: List[Dict[str, Any]] = []
        for root in self._roots:
            for span in root.walk():
                event: Dict[str, Any] = {
                    "name": span.name,
                    "cat": span.category,
                    "pid": 1,
                    "tid": 1,
                    "ts": round(span.start * 1e6, 3),
                    "ph": "X",
                }
                args = {k: v for k, v in span.detail.items()}
                if span.closed:
                    event["dur"] = round(span.duration * 1e6, 3)
                else:
                    if self._clock.now < span.start:
                        raise ValueError(
                            f"span {span.name!r} starts in the future; "
                            "cannot export an open span before its start")
                    event["dur"] = round(
                        (self._clock.now - span.start) * 1e6, 3)
                    args["flux.incomplete"] = True
                if args:
                    event["args"] = args
                trace_events.append(event)
        if metrics is not None:
            trace_events.extend(metrics.chrome_counter_events())
        if events is not None:
            trace_events.extend(chrome_instant_events(events))
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str, metrics=None,
                           events=None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(metrics=metrics, events=events),
                      handle, indent=1)


def chrome_instant_events(events) -> List[Dict[str, Any]]:
    """A causal event stream as Chrome-trace instant ("i") events.

    ``events`` is a :class:`repro.sim.events.FlightRecorder` or an
    iterable of exported event dicts.  Each becomes a thread-scoped
    (``"s": "t"``) instant whose args carry the per-device sequence
    number, the Binder transaction id (when inside one) and the event's
    attributes — the same fields the ``--events-out`` JSONL records, so
    a tick in the viewer resolves back to a line in the artifact.
    """
    exported = events.export() if hasattr(events, "export") else events
    instants: List[Dict[str, Any]] = []
    for event in exported:
        args: Dict[str, Any] = {"seq": event["seq"],
                                "device": event["device"]}
        if event.get("txn") is not None:
            args["txn"] = event["txn"]
        if event.get("span"):
            args["span"] = event["span"]
        args.update(event.get("attrs", {}))
        instants.append({
            "name": event["kind"],
            "cat": "event",
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": 1,
            "ts": round(event["t"] * 1e6, 3),
            "args": args,
        })
    return instants
