"""Telemetry diff engine: compare two run bundles, attribute regressions.

``flux-sim bench-check`` *detects* drift in a handful of gated
aggregates; this module *attributes* it.  Given two run bundles
(:mod:`repro.sim.bundle`), it aligns them by fingerprint and walks
every plane both runs recorded:

* **counters and histograms** — per-key deltas with a relative
  tolerance band (the same banding the bench gate uses);
* **migrations** — stage-by-stage diffs per aligned migration attempt:
  wall seconds from the stage map, self seconds from the critical path,
  plus outcome flips (migrated -> faulted is the loudest possible
  regression);
* **wait profiles** — per-session queued / resource-wait / dilation /
  active deltas (where contended time moved);
* **events** — a first-divergence search over the merged causal logs:
  the first ``(t, device, seq)`` where the two streams disagree, with
  the surrounding flight-recorder context from both sides — the exact
  place to start reading when two "identical" runs are not.

The result is a ranked **suspect table** ("stage ``transfer`` +0.41s
self on nexus4/...", "link dilation +0.38s on session X") and a verdict
with CI-friendly exit codes: 0 identical, 1 within band, 2 regressed.

Everything here is pure: two loaded bundles in, one JSON-ready document
out.  Determinism matters doubly for a diff tool — suspect ranking
breaks ties lexicographically, so the table is stable across submission
orders and re-runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.sim.bundle import RunBundle, fingerprint_differences

#: Exit codes ``flux-sim diff`` maps the verdict to.
EXIT_IDENTICAL = 0
EXIT_WITHIN_BAND = 1
EXIT_REGRESSED = 2

VERDICTS = ("identical", "within-band", "regressed")

#: Default relative drift band, matching the bench gate's.
DEFAULT_TOLERANCE = 0.02

#: Events shown on each side of a first divergence.
DEFAULT_CONTEXT = 5

#: Suspect deltas below this (seconds) are noise, not suspects.
MIN_SUSPECT_SECONDS = 1e-6


class DiffError(Exception):
    """Bundles that cannot be meaningfully compared."""


# -- shared delta primitives --------------------------------------------------


def relative_drift(current: float, baseline: float) -> float:
    """|current - baseline| / |baseline| (inf when only baseline is 0)."""
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return abs(current - baseline) / abs(baseline)


def band_edges(baseline: float, tolerance: float) -> Tuple[float, float]:
    """The inclusive [lo, hi] band a value may drift inside."""
    slack = abs(baseline) * tolerance
    return baseline - slack, baseline + slack


def format_delta(label: str, base: float, current: float,
                 tolerance: float) -> str:
    """One value's drift as a human line, naming the band edge it broke.

    Reused by the bench gate's failure output, so ``bench-check`` and
    ``diff`` describe the same drift in the same words::

        counter link/bytes_total: 100 -> 150 (+50.0% outside the
        ±2% band [98, 102])
    """
    drift = relative_drift(current, base)
    lo, hi = band_edges(base, tolerance)
    if drift == float("inf"):
        drift_text = "new" if base == 0 else "gone"
    else:
        sign = "+" if current >= base else "-"
        drift_text = f"{sign}{drift:.1%}"
    if drift > tolerance:
        band = (f"outside the ±{tolerance:.0%} band "
                f"[{lo:g}, {hi:g}]")
    else:
        band = f"within the ±{tolerance:.0%} band"
    return f"{label}: {base:g} -> {current:g} ({drift_text} {band})"


def _delta_entry(key: str, a: float, b: float,
                 tolerance: float) -> Dict[str, Any]:
    drift = relative_drift(b, a)
    return {
        "key": key,
        "a": a,
        "b": b,
        "delta": b - a,
        "drift": drift,
        "within_band": drift <= tolerance,
    }


# -- per-plane diffs ----------------------------------------------------------


def diff_counters(a: Mapping[str, float], b: Mapping[str, float],
                  tolerance: float) -> List[Dict[str, Any]]:
    """Per-counter deltas (only differing keys); missing keys count as 0."""
    entries = []
    for key in sorted(set(a) | set(b)):
        value_a = float(a.get(key, 0))
        value_b = float(b.get(key, 0))
        if value_a != value_b:
            entries.append(_delta_entry(key, value_a, value_b, tolerance))
    return entries


def diff_histograms(a: Mapping[str, Dict[str, Any]],
                    b: Mapping[str, Dict[str, Any]],
                    tolerance: float) -> List[Dict[str, Any]]:
    """Per-histogram count/sum deltas (only differing keys)."""
    entries = []
    for key in sorted(set(a) | set(b)):
        hist_a = a.get(key) or {"count": 0, "sum": 0.0}
        hist_b = b.get(key) or {"count": 0, "sum": 0.0}
        for stat in ("count", "sum"):
            value_a = float(hist_a.get(stat) or 0)
            value_b = float(hist_b.get(stat) or 0)
            if value_a != value_b:
                entries.append(_delta_entry(f"{key}.{stat}", value_a,
                                            value_b, tolerance))
    return entries


def diff_migrations(a_rows: List[Dict[str, Any]],
                    b_rows: List[Dict[str, Any]],
                    tolerance: float) -> List[Dict[str, Any]]:
    """Align migration attempts by key; diff outcomes and stage timings.

    Each aligned pair yields one entry carrying the outcome flip (if
    any) and per-stage deltas — wall seconds always, critical-path self
    seconds when both runs recorded them.  Attempts present on only one
    side yield an ``only_in`` entry (a migration that vanished is a
    diff, not an alignment error).
    """
    index_a = {row["key"]: row for row in a_rows}
    index_b = {row["key"]: row for row in b_rows}
    entries: List[Dict[str, Any]] = []
    for key in sorted(set(index_a) | set(index_b)):
        row_a, row_b = index_a.get(key), index_b.get(key)
        if row_a is None or row_b is None:
            present = row_a or row_b
            entries.append({
                "key": key,
                "only_in": "A" if row_b is None else "B",
                "outcome": present["outcome"],
                "stage_deltas": [],
                "self_deltas": [],
                "outcome_changed": True,
                "outcome_a": row_a["outcome"] if row_a else None,
                "outcome_b": row_b["outcome"] if row_b else None,
                "faulted_stage": present.get("faulted_stage"),
                "total_delta": 0.0,
            })
            continue
        stage_deltas = []
        for stage in sorted(set(row_a["stages"]) | set(row_b["stages"])):
            seconds_a = row_a["stages"].get(stage, 0.0)
            seconds_b = row_b["stages"].get(stage, 0.0)
            if seconds_a != seconds_b:
                stage_deltas.append(_delta_entry(stage, seconds_a,
                                                 seconds_b, tolerance))
        self_deltas = []
        if row_a["self_seconds"] or row_b["self_seconds"]:
            for stage in sorted(set(row_a["self_seconds"])
                                | set(row_b["self_seconds"])):
                seconds_a = row_a["self_seconds"].get(stage, 0.0)
                seconds_b = row_b["self_seconds"].get(stage, 0.0)
                if seconds_a != seconds_b:
                    self_deltas.append(_delta_entry(stage, seconds_a,
                                                    seconds_b, tolerance))
        changed = (row_a["outcome"] != row_b["outcome"]
                   or row_a.get("faulted_stage") != row_b.get(
                       "faulted_stage"))
        if changed or stage_deltas or self_deltas:
            entries.append({
                "key": key,
                "only_in": None,
                "outcome_changed": changed,
                "outcome_a": row_a["outcome"],
                "outcome_b": row_b["outcome"],
                "faulted_stage": (row_b.get("faulted_stage")
                                  or row_a.get("faulted_stage")),
                "stage_deltas": stage_deltas,
                "self_deltas": self_deltas,
                "total_delta": (row_b["total_seconds"]
                                - row_a["total_seconds"]),
            })
    return entries


WAIT_TERMS = ("admission_queue_s", "resource_wait_s", "link_dilation_s",
              "active_s", "wall_s")

#: Suspect-table names for the wait-profile terms.
_WAIT_NAMES = {
    "admission_queue_s": "admission queue",
    "resource_wait_s": "resource wait",
    "link_dilation_s": "link dilation",
    "active_s": "active time",
    "wall_s": "wall time",
}


def diff_wait_profiles(a: Mapping[str, Dict[str, float]],
                       b: Mapping[str, Dict[str, float]],
                       tolerance: float) -> List[Dict[str, Any]]:
    """Per-session wait-profile deltas (queued/resource/dilation/active)."""
    entries: List[Dict[str, Any]] = []
    for session in sorted(set(a) | set(b)):
        profile_a = a.get(session, {})
        profile_b = b.get(session, {})
        term_deltas = []
        for term in WAIT_TERMS:
            value_a = float(profile_a.get(term, 0.0))
            value_b = float(profile_b.get(term, 0.0))
            if value_a != value_b:
                term_deltas.append(_delta_entry(term, value_a, value_b,
                                                tolerance))
        if term_deltas:
            entries.append({"session": session, "terms": term_deltas})
    return entries


def first_divergence(a_events: List[Dict[str, Any]],
                     b_events: List[Dict[str, Any]],
                     context: int = DEFAULT_CONTEXT
                     ) -> Optional[Dict[str, Any]]:
    """The first position where the merged event streams disagree.

    Streams are compared entry-by-entry in their merged causal order;
    the result carries the disagreeing ``(t, device, seq)`` from each
    side plus the ``context`` preceding events (the flight-recorder
    tail leading *into* the divergence — shared by both runs, since
    everything before the divergence is identical by construction).
    Returns None for identical streams.
    """
    limit = min(len(a_events), len(b_events))
    index = None
    for i in range(limit):
        if a_events[i] != b_events[i]:
            index = i
            break
    if index is None:
        if len(a_events) == len(b_events):
            return None
        index = limit            # one stream is a strict prefix
    event_a = a_events[index] if index < len(a_events) else None
    event_b = b_events[index] if index < len(b_events) else None

    def _at(event: Optional[Dict[str, Any]]) -> Optional[List[Any]]:
        if event is None:
            return None
        return [event.get("t"), event.get("device"), event.get("seq")]

    return {
        "index": index,
        "at_a": _at(event_a),
        "at_b": _at(event_b),
        "a": event_a,
        "b": event_b,
        "context": a_events[max(0, index - context):index],
        "a_total": len(a_events),
        "b_total": len(b_events),
    }


# -- suspects -----------------------------------------------------------------


def build_suspects(migrations: List[Dict[str, Any]],
                   wait_profiles: List[Dict[str, Any]]
                   ) -> List[Dict[str, Any]]:
    """Rank what most plausibly explains the regression.

    Outcome flips outrank everything (a migration that now faults *is*
    the regression); timing suspects rank by |delta seconds|, stage
    self-time and wait-profile terms competing in one table.  Ties
    break lexicographically so the ranking is stable across runs and
    session submission orders.
    """
    suspects: List[Dict[str, Any]] = []
    for entry in migrations:
        if entry["outcome_changed"]:
            if entry["only_in"]:
                detail = (f"attempt only in "
                          f"{'A' if entry['only_in'] == 'A' else 'B'}")
            else:
                detail = f"{entry['outcome_a']} -> {entry['outcome_b']}"
                if entry.get("faulted_stage"):
                    detail += f" in stage {entry['faulted_stage']}"
            suspects.append({
                "kind": "outcome",
                "subject": entry["key"],
                "stage": entry.get("faulted_stage"),
                "delta_s": entry["total_delta"],
                "detail": detail,
                "priority": 0,
            })
        # Self seconds are sharper than wall seconds (a slow child
        # stage inflates every ancestor's wall time); prefer them when
        # the runs recorded a critical path.
        timing = entry["self_deltas"] or entry["stage_deltas"]
        measure = "self" if entry["self_deltas"] else "wall"
        for delta in timing:
            if abs(delta["delta"]) < MIN_SUSPECT_SECONDS:
                continue
            suspects.append({
                "kind": "stage",
                "subject": entry["key"],
                "stage": delta["key"],
                "delta_s": delta["delta"],
                "detail": (f"stage {delta['key']} "
                           f"{delta['delta']:+.3f}s {measure}"),
                "priority": 1,
            })
    for entry in wait_profiles:
        for delta in entry["terms"]:
            if delta["key"] == "wall_s":     # the sum, not a cause
                continue
            if abs(delta["delta"]) < MIN_SUSPECT_SECONDS:
                continue
            suspects.append({
                "kind": "wait",
                "subject": entry["session"],
                "stage": delta["key"],
                "delta_s": delta["delta"],
                "detail": (f"{_WAIT_NAMES.get(delta['key'], delta['key'])} "
                           f"{delta['delta']:+.3f}s on session "
                           f"{entry['session']}"),
                "priority": 1,
            })
    suspects.sort(key=lambda s: (s["priority"], -abs(s["delta_s"]),
                                 s["subject"], s["stage"] or ""))
    for rank, suspect in enumerate(suspects, start=1):
        suspect["rank"] = rank
    return suspects


# -- the top-level diff -------------------------------------------------------


def diff_bundles(a: RunBundle, b: RunBundle,
                 tolerance: float = DEFAULT_TOLERANCE,
                 context: int = DEFAULT_CONTEXT) -> Dict[str, Any]:
    """Compare two loaded bundles; returns the JSON-ready diff document.

    Raises :class:`DiffError` when the bundles are different kinds —
    a sweep and a scenario have no aligned planes to compare.
    Fingerprint differences within one kind are *reported*, never
    fatal: diffing a perturbed run against a baseline is the point.
    """
    if a.kind != b.kind:
        raise DiffError(
            f"cannot diff a {a.kind!r} bundle against a {b.kind!r} "
            f"bundle ({a.path} vs {b.path})")
    snapshot_a, snapshot_b = a.snapshot(), b.snapshot()
    counters = diff_counters(snapshot_a.get("counters", {}),
                             snapshot_b.get("counters", {}), tolerance)
    gauges = diff_counters(snapshot_a.get("gauges", {}),
                           snapshot_b.get("gauges", {}), tolerance)
    histograms = diff_histograms(snapshot_a.get("histograms", {}),
                                 snapshot_b.get("histograms", {}),
                                 tolerance)
    migrations = diff_migrations(a.migration_rows(), b.migration_rows(),
                                 tolerance)
    wait_profiles = diff_wait_profiles(a.wait_profiles(),
                                       b.wait_profiles(), tolerance)
    divergence = first_divergence(a.events(), b.events(), context=context)
    suspects = build_suspects(migrations, wait_profiles)

    numeric = counters + gauges + histograms
    for entry in migrations:
        numeric.extend(entry["stage_deltas"])
        numeric.extend(entry["self_deltas"])
    for entry in wait_profiles:
        numeric.extend(entry["terms"])
    beyond_band = [entry for entry in numeric if not entry["within_band"]]
    outcome_flips = [entry for entry in migrations
                     if entry["outcome_changed"]]
    any_difference = bool(numeric or outcome_flips
                          or divergence is not None)
    if not any_difference:
        verdict = "identical"
    elif beyond_band or outcome_flips:
        verdict = "regressed"
    else:
        verdict = "within-band"
    return {
        "schema": 1,
        "kind": a.kind,
        "a": a.path,
        "b": b.path,
        "tolerance": tolerance,
        "fingerprint": {
            "matches": not fingerprint_differences(a.fingerprint,
                                                   b.fingerprint),
            "differences": {
                field: {"a": values[0], "b": values[1]}
                for field, values in fingerprint_differences(
                    a.fingerprint, b.fingerprint).items()},
        },
        "verdict": verdict,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "migrations": migrations,
        "wait_profiles": wait_profiles,
        "first_divergence": divergence,
        "suspects": suspects,
    }


def exit_code(document: Dict[str, Any]) -> int:
    """The CI exit code for a diff document: 0/1/2."""
    return {"identical": EXIT_IDENTICAL,
            "within-band": EXIT_WITHIN_BAND}.get(document["verdict"],
                                                 EXIT_REGRESSED)


# -- rendering ----------------------------------------------------------------


def _format_divergence_event(event: Optional[Dict[str, Any]]) -> str:
    if event is None:
        return "(stream ended)"
    attrs = event.get("attrs", {})
    extras = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return (f"#{event.get('seq')} [{event.get('t', 0.0):10.4f}] "
            f"{event.get('device')}: {event.get('kind')} {extras}").rstrip()


def render_diff(document: Dict[str, Any], limit: int = 10) -> str:
    """The human-readable report ``flux-sim diff`` prints."""
    lines: List[str] = []
    lines.append(f"diff ({document['kind']}): {document['a']} vs "
                 f"{document['b']}")
    fingerprint = document["fingerprint"]
    if fingerprint["matches"]:
        lines.append("fingerprints match (same config, env and sha)")
    else:
        lines.append("fingerprint differences:")
        for field, values in fingerprint["differences"].items():
            lines.append(f"  {field}: {values['a']!r} -> {values['b']!r}")

    if document["verdict"] == "identical":
        lines.append("verdict: IDENTICAL (empty diff: every plane "
                     "byte-equal)")
        return "\n".join(lines)

    if document["suspects"]:
        lines.append("")
        lines.append("ranked suspects:")
        for suspect in document["suspects"][:limit]:
            lines.append(f"  #{suspect['rank']:<2} {suspect['delta_s']:+9.3f}s"
                         f"  {suspect['detail']}"
                         + (f" ({suspect['subject']})"
                            if suspect["kind"] == "stage" else ""))
        hidden = len(document["suspects"]) - limit
        if hidden > 0:
            lines.append(f"  ... {hidden} more")

    tolerance = document["tolerance"]
    for section, title in (("counters", "counter deltas"),
                           ("gauges", "gauge deltas"),
                           ("histograms", "histogram deltas")):
        entries = document[section]
        if not entries:
            continue
        lines.append("")
        lines.append(f"{title} ({len(entries)}):")
        shown = sorted(entries, key=lambda e: (-abs(e["delta"]), e["key"]))
        for entry in shown[:limit]:
            lines.append("  " + format_delta(entry["key"], entry["a"],
                                             entry["b"], tolerance))
        if len(entries) > limit:
            lines.append(f"  ... {len(entries) - limit} more")

    for entry in document["wait_profiles"]:
        lines.append("")
        lines.append(f"wait profile, session {entry['session']}:")
        for delta in entry["terms"]:
            lines.append("  " + format_delta(delta["key"], delta["a"],
                                             delta["b"], tolerance))

    divergence = document["first_divergence"]
    if divergence is not None:
        lines.append("")
        lines.append(f"first event divergence at merged index "
                     f"{divergence['index']} "
                     f"(A has {divergence['a_total']} events, "
                     f"B has {divergence['b_total']}):")
        for event in divergence["context"]:
            lines.append("    " + _format_divergence_event(event))
        lines.append("  A: " + _format_divergence_event(divergence["a"]))
        lines.append("  B: " + _format_divergence_event(divergence["b"]))

    lines.append("")
    lines.append(f"verdict: {document['verdict'].upper().replace('-', ' ')} "
                 f"(tolerance ±{tolerance:.0%})")
    return "\n".join(lines)
