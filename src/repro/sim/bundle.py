"""Self-describing run bundles: one artifact per simulation run.

Every telemetry plane so far (metrics snapshots, causal event logs,
Chrome traces, edge-sampled timelines, wait profiles, cProfile rows)
writes a loose file; comparing two runs — the core loop of performance
and correctness work — means juggling paths and remembering which
knobs produced which file.  A *run bundle* makes the run itself the
artifact: one directory (or ``.tar.gz``) holding every plane the run
produced, a **fingerprint** of the configuration that produced it
(workload, device pairs, seed, executor, every ``FLUX_*`` knob, the
git sha), and a **manifest** with a SHA-256 digest per file, so a
bundle read back months later is provably the bundle that was written.

Layout (all members optional except the manifest)::

    manifest.json    schema, kind, fingerprint, per-file digests
    metrics.json     the --metrics-out document (shape varies by kind)
    events.jsonl     the causally-merged event log (--events-out)
    timeline.json    the edge-sampled time-series plane (--timeline-out)
    trace.json       the Chrome trace (--trace-out)
    profile.txt      per-pair cProfile rows (--profile-out), when taken

``flux-sim migrate/sweep/scenario/fleet --bundle-out PATH`` writes one;
``flux-sim explain`` and ``flux-sim bench-check`` read one back, so a
post-mortem or a regression gate runs from the bundle alone — no access
to the run that produced it, no re-simulation.  ``flux-sim diff A B``
(:mod:`repro.sim.diffing`) compares two.

Determinism contract: a bundle contains **no wall-clock timestamps**
and every JSON member is written with sorted keys, so two runs of the
same deterministic simulation under the same configuration produce
byte-identical bundles — which is exactly what lets ``diff`` report an
*empty* diff instead of a noisy one.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import subprocess
import tarfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sim.events import parse_jsonl
from repro.sim.metrics import empty_snapshot
from repro.sim.timeline import parse_timeline_document, timeline_document

#: On-disk bundle format version; readers reject any other value.
BUNDLE_SCHEMA = 1

MANIFEST_NAME = "manifest.json"

#: The run kinds a bundle can describe (what produced it).
BUNDLE_KINDS = ("migrate", "sweep", "scenario", "fleet")

#: Suffixes that select the single-file tarball representation.
_TAR_SUFFIXES = (".tar.gz", ".tgz")

#: Canonical member order inside a bundle (manifest first, then planes);
#: tarballs are packed in this order so identical runs produce
#: byte-identical archives.
_MEMBER_ORDER = (MANIFEST_NAME, "metrics.json", "events.jsonl",
                 "timeline.json", "trace.json", "profile.txt")


class BundleError(Exception):
    """Unreadable, corrupt, or schema-incompatible run bundles."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _dumps(document: Any) -> bytes:
    return (json.dumps(document, indent=1, sort_keys=True) + "\n").encode(
        "utf-8")


def _dumps_jsonl(events: Iterable[Dict[str, Any]]) -> bytes:
    buffer = io.StringIO()
    for event in events:
        buffer.write(json.dumps(event, sort_keys=True))
        buffer.write("\n")
    return buffer.getvalue().encode("utf-8")


# -- fingerprinting -----------------------------------------------------------


def flux_environment() -> Dict[str, str]:
    """Every ``FLUX_*`` knob currently set, sorted — part of the
    fingerprint because the knobs change what the planes contain
    (``FLUX_EVENTS=0`` yields an empty event log, not a broken one)."""
    return {key: value for key, value in sorted(os.environ.items())
            if key.startswith("FLUX_")}


_GIT_SHA: Optional[str] = None
_GIT_SHA_PROBED = False


def git_sha() -> Optional[str]:
    """The repo's HEAD sha, or None outside a git checkout.

    Memoized: the sha cannot change within one process's run, and the
    subprocess probe is the only non-trivial cost of fingerprinting.
    """
    global _GIT_SHA, _GIT_SHA_PROBED
    if _GIT_SHA_PROBED:
        return _GIT_SHA
    _GIT_SHA_PROBED = True
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(Path(__file__).resolve().parent),
            capture_output=True, text=True, timeout=10)
        if probe.returncode == 0:
            _GIT_SHA = probe.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        _GIT_SHA = None
    return _GIT_SHA


def collect_fingerprint(kind: str, *,
                        workload: Iterable[str] = (),
                        pairs: Iterable[str] = (),
                        seed: Optional[int] = None,
                        executor: Optional[str] = None,
                        workers: Optional[Any] = None,
                        extra: Optional[Mapping[str, Any]] = None
                        ) -> Dict[str, Any]:
    """The config/env identity of a run, JSON-ready and sorted.

    ``workload`` is the packages migrated, ``pairs`` the device routes,
    and ``extra`` carries kind-specific knobs (extensions, fault plans,
    admission policy).  Two bundles with equal fingerprints *should* be
    byte-identical; :mod:`repro.sim.diffing` reports every field that
    differs before comparing the planes.
    """
    if kind not in BUNDLE_KINDS:
        raise BundleError(f"unknown bundle kind {kind!r}; "
                          f"choose from {BUNDLE_KINDS}")
    fingerprint: Dict[str, Any] = {
        "kind": kind,
        "workload": sorted(workload),
        "pairs": list(pairs),
        "seed": seed,
        "executor": executor,
        "workers": None if workers is None else str(workers),
        "env": flux_environment(),
        "git_sha": git_sha(),
    }
    if extra:
        for key, value in sorted(extra.items()):
            fingerprint[key] = value
    return fingerprint


# -- writing ------------------------------------------------------------------


def is_tar_path(path: str) -> bool:
    return str(path).endswith(_TAR_SUFFIXES)


def write_bundle(path: str, *, kind: str, fingerprint: Dict[str, Any],
                 metrics: Optional[Dict[str, Any]] = None,
                 events: Optional[List[Dict[str, Any]]] = None,
                 timeline: Optional[Dict[str, List[List[float]]]] = None,
                 trace: Optional[Any] = None,
                 profile: Optional[str] = None) -> str:
    """Write a run bundle to ``path`` (a directory, or ``.tar.gz``).

    Every supplied plane becomes one member; the manifest records each
    member's byte size and SHA-256 digest.  Returns the path written.
    """
    if kind not in BUNDLE_KINDS:
        raise BundleError(f"unknown bundle kind {kind!r}; "
                          f"choose from {BUNDLE_KINDS}")
    members: Dict[str, bytes] = {}
    if metrics is not None:
        members["metrics.json"] = _dumps(metrics)
    if events is not None:
        members["events.jsonl"] = _dumps_jsonl(events)
    if timeline is not None:
        members["timeline.json"] = _dumps(timeline_document(timeline))
    if trace is not None:
        members["trace.json"] = _dumps(trace)
    if profile is not None:
        members["profile.txt"] = profile.encode("utf-8")

    manifest = {
        "schema": BUNDLE_SCHEMA,
        "kind": kind,
        "fingerprint": fingerprint,
        "files": {name: {"bytes": len(data), "sha256": _sha256(data)}
                  for name, data in sorted(members.items())},
    }
    members[MANIFEST_NAME] = _dumps(manifest)

    ordered = [(name, members[name]) for name in _MEMBER_ORDER
               if name in members]
    if is_tar_path(path):
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        # Fixed mtime/uid/gid and no embedded filename: the archive
        # bytes are a pure function of the members, so identical runs
        # tar identically whatever the archive is called.
        with open(path, "wb") as raw:
            import gzip
            with gzip.GzipFile(filename="", fileobj=raw, mode="wb",
                               mtime=0) as gz:
                with tarfile.open(fileobj=gz, mode="w") as tar:
                    for name, data in ordered:
                        info = tarfile.TarInfo(name=name)
                        info.size = len(data)
                        info.mtime = 0
                        info.uid = info.gid = 0
                        info.uname = info.gname = ""
                        tar.addfile(info, io.BytesIO(data))
    else:
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        for name, data in ordered:
            (root / name).write_bytes(data)
    return str(path)


# -- reading ------------------------------------------------------------------


def is_bundle_path(path: str) -> bool:
    """Does ``path`` look like a run bundle (vs a loose plane file)?"""
    p = Path(path)
    if p.is_dir():
        return (p / MANIFEST_NAME).is_file()
    if p.is_file() and is_tar_path(path):
        return tarfile.is_tarfile(path)
    return False


class RunBundle:
    """A loaded run bundle: manifest, fingerprint, and lazy plane views.

    Digests are verified at load time (``verify=False`` skips, for
    tooling that wants to inspect a corrupt bundle anyway); a mismatch
    names the member, because "which file rotted" is the first question.
    """

    def __init__(self, path: str, manifest: Dict[str, Any],
                 members: Dict[str, bytes]) -> None:
        self.path = str(path)
        self.manifest = manifest
        self._members = members

    # -- loading ------------------------------------------------------------

    @classmethod
    def load(cls, path: str, verify: bool = True) -> "RunBundle":
        p = Path(path)
        members: Dict[str, bytes] = {}
        if p.is_dir():
            manifest_path = p / MANIFEST_NAME
            if not manifest_path.is_file():
                raise BundleError(f"{path}: not a run bundle "
                                  f"(no {MANIFEST_NAME})")
            for child in p.iterdir():
                if child.is_file():
                    members[child.name] = child.read_bytes()
        elif p.is_file():
            try:
                with tarfile.open(path, mode="r:*") as tar:
                    for info in tar.getmembers():
                        if not info.isfile():
                            continue
                        extracted = tar.extractfile(info)
                        if extracted is not None:
                            members[info.name] = extracted.read()
            except tarfile.TarError as error:
                raise BundleError(f"{path}: unreadable bundle archive: "
                                  f"{error}") from error
        else:
            raise BundleError(f"{path}: no such bundle")
        if MANIFEST_NAME not in members:
            raise BundleError(f"{path}: not a run bundle "
                              f"(no {MANIFEST_NAME} member)")
        try:
            manifest = json.loads(members[MANIFEST_NAME].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BundleError(f"{path}: corrupt {MANIFEST_NAME}: "
                              f"{error}") from error
        schema = manifest.get("schema")
        if schema != BUNDLE_SCHEMA:
            raise BundleError(
                f"{path}: unsupported bundle schema {schema!r} (this "
                f"build reads schema {BUNDLE_SCHEMA}); regenerate the "
                f"bundle or upgrade")
        bundle = cls(path, manifest, members)
        if verify:
            bundle.verify()
        return bundle

    def verify(self) -> None:
        """Check every manifest digest against the member bytes."""
        for name, meta in self.manifest.get("files", {}).items():
            data = self._members.get(name)
            if data is None:
                raise BundleError(f"{self.path}: member {name!r} listed "
                                  f"in the manifest but missing")
            digest = _sha256(data)
            if digest != meta.get("sha256"):
                raise BundleError(
                    f"{self.path}: member {name!r} digest mismatch "
                    f"(manifest {meta.get('sha256')}, actual {digest}) "
                    f"— the bundle was modified after it was written")

    # -- identity -----------------------------------------------------------

    @property
    def kind(self) -> str:
        return self.manifest.get("kind", "?")

    @property
    def fingerprint(self) -> Dict[str, Any]:
        return self.manifest.get("fingerprint", {})

    def members(self) -> List[str]:
        return sorted(self._members)

    def has(self, name: str) -> bool:
        return name in self._members

    def read_bytes(self, name: str) -> bytes:
        data = self._members.get(name)
        if data is None:
            raise BundleError(f"{self.path}: bundle has no member "
                              f"{name!r} (members: {self.members()})")
        return data

    def read_json(self, name: str) -> Any:
        try:
            return json.loads(self.read_bytes(name).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BundleError(f"{self.path}/{name}: corrupt JSON: "
                              f"{error}") from error

    # -- plane views --------------------------------------------------------

    def metrics_document(self) -> Dict[str, Any]:
        """The bundled ``--metrics-out`` document (shape varies by kind)."""
        return self.read_json("metrics.json")

    def events(self) -> List[Dict[str, Any]]:
        """The bundled causal event log ([] when the run had none)."""
        if not self.has("events.jsonl"):
            return []
        text = self.read_bytes("events.jsonl").decode("utf-8")
        return parse_jsonl(text.splitlines(),
                           source=f"{self.path}/events.jsonl")

    def timeline_series(self) -> Dict[str, List[List[float]]]:
        """The bundled edge-sampled series ({} when the run had none)."""
        if not self.has("timeline.json"):
            return {}
        return parse_timeline_document(self.read_json("timeline.json"),
                                       source=f"{self.path}/timeline.json")

    # -- cross-kind normalizations (what the diff engine consumes) ----------

    def snapshot(self) -> Dict[str, Any]:
        """The run's merged metrics snapshot, whatever the kind.

        ``migrate`` and ``scenario`` documents carry it under
        ``metrics``; ``sweep`` documents under ``totals``.
        """
        if not self.has("metrics.json"):
            return empty_snapshot()
        document = self.metrics_document()
        if isinstance(document.get("totals"), dict):
            return document["totals"]
        metrics = document.get("metrics")
        return metrics if isinstance(metrics, dict) else empty_snapshot()

    def migration_rows(self) -> List[Dict[str, Any]]:
        """One normalized row per migration attempt in the bundle.

        Keys: ``key`` (stable join key for diffing), ``package``,
        ``outcome``, ``stages`` (stage -> wall seconds),
        ``self_seconds`` (stage -> critical-path self time, when the
        run recorded a critical path), ``total_seconds``,
        ``faulted_stage``, ``session`` (scenario only).
        """
        if not self.has("metrics.json"):
            return []
        document = self.metrics_document()
        rows: List[Dict[str, Any]] = []
        migration = document.get("migration")
        if isinstance(migration, dict):        # flux-sim migrate
            rows.append(self._normalize_row(
                key=migration.get("package", "?"), source=migration))
        for row in document.get("migrations") or []:   # flux-sim sweep
            rows.append(self._normalize_row(
                key=f"{row.get('pair', '?')}/{row.get('package', '?')}",
                source=row))
        scenario = document.get("scenario")
        if isinstance(scenario, dict):          # flux-sim scenario
            for session in scenario.get("sessions", []):
                key = (f"{session.get('home', '?')}->"
                       f"{session.get('guest', '?')}:"
                       f"{session.get('package', '?')}")
                rows.append(self._normalize_row(key=key, source=session))
        fleet = document.get("fleet")
        if isinstance(fleet, dict):             # flux-sim fleet
            for session in fleet.get("sessions", []):
                key = (f"{session.get('site', '?')}/"
                       f"{session.get('home', '?')}->"
                       f"{session.get('guest') or '-'}:"
                       f"{session.get('package', '?')}")
                rows.append(self._normalize_row(key=key, source=session))
        return rows

    @staticmethod
    def _normalize_row(key: str, source: Dict[str, Any]) -> Dict[str, Any]:
        self_seconds = {entry["name"]: float(entry["self_seconds"])
                        for entry in source.get("critical_path") or []
                        if "self_seconds" in entry}
        stages = {stage: float(seconds) for stage, seconds
                  in (source.get("stages") or {}).items()}
        if "status" in source:                  # scenario session row
            outcome = source["status"]
        elif source.get("success") is False:
            outcome = ("faulted" if source.get("faulted_stage")
                       else "refused")
        else:
            outcome = "migrated"
        total = source.get("total_seconds")
        return {
            "key": key,
            "package": source.get("package", "?"),
            "outcome": outcome,
            "faulted_stage": source.get("faulted_stage"),
            "session": source.get("session"),
            "stages": stages,
            "self_seconds": self_seconds,
            "total_seconds": (float(total) if total is not None
                              else sum(stages.values())),
        }

    def wait_profiles(self) -> Dict[str, Dict[str, float]]:
        """Per-session wait profiles (queued/resource/dilation/active).

        Populated by scenario bundles; a migrate/sweep bundle (whose
        synchronous migrations never wait) returns ``{}``.
        """
        if not self.has("metrics.json"):
            return {}
        document = self.metrics_document()
        profiles: Dict[str, Dict[str, float]] = {}
        scenario = document.get("scenario")
        if isinstance(scenario, dict):
            for session in scenario.get("sessions", []):
                profile = session.get("wait_profile")
                if profile:
                    label = (session.get("session")
                             or f"{session.get('home', '?')}->"
                                f"{session.get('guest', '?')}:"
                                f"{session.get('package', '?')}")
                    profiles[label] = {k: float(v)
                                       for k, v in profile.items()}
        fleet = document.get("fleet")
        if isinstance(fleet, dict):
            for session in fleet.get("sessions", []):
                profile = session.get("wait_profile")
                if profile:
                    label = (session.get("session")
                             or f"{session.get('site', '?')}/"
                                f"{session.get('home', '?')}->"
                                f"{session.get('guest') or '-'}:"
                                f"{session.get('package', '?')}")
                    profiles[label] = {k: float(v)
                                       for k, v in profile.items()}
        migration = document.get("migration")
        if isinstance(migration, dict) and migration.get("wait_profile"):
            profiles[migration.get("package", "?")] = {
                k: float(v)
                for k, v in migration["wait_profile"].items()}
        return profiles


def fingerprint_differences(a: Mapping[str, Any], b: Mapping[str, Any]
                            ) -> Dict[str, Tuple[Any, Any]]:
    """Fingerprint fields that differ: ``field -> (a_value, b_value)``."""
    differences: Dict[str, Tuple[Any, Any]] = {}
    for field in sorted(set(a) | set(b)):
        if a.get(field) != b.get(field):
            differences[field] = (a.get(field), b.get(field))
    return differences
