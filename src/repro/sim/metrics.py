"""Deterministic, typed metrics: counters, gauges, fixed-bucket histograms.

The span tree in :mod:`repro.sim.trace` answers "where did the time
go?"; this registry answers "how much work happened?" — how many Binder
transactions were interposed, record-log calls pruned, chunks served
from cache, restore sub-operations replayed.  Every metric is keyed by
``(subsystem, name, labels)`` and is one of three types:

* :class:`Counter` — monotonically increasing integer/float total.
* :class:`Gauge` — a point-in-time level (chunk-store occupancy).
* :class:`Histogram` — fixed, declared-up-front bucket bounds; observing
  a value increments exactly one bucket and updates sum/count/min/max.

Determinism contract (this is what lets metrics stay always-on):

* The registry **never advances the clock and never draws from the
  RNG** — reading ``clock.now`` for timeline samples is the only clock
  interaction.  Enabling or disabling metrics cannot perturb a
  simulation; the default sweep stays byte-identical either way.
* Snapshots are emitted with **sorted keys**, so two runs of the same
  simulation produce identical JSON documents.
* Snapshots **merge associatively** (counters and histogram buckets
  add, gauges keep their maximum), so a parallel sweep aggregated in
  pair order is identical to the serial sweep's aggregation.

A registry built with ``enabled=False`` hands out shared null metrics
whose mutators are no-ops — instrumented code never needs an ``if``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple


class MetricsError(Exception):
    """Metric type conflicts, bad buckets, malformed snapshots."""


#: Latency buckets (seconds) sized for simulated Binder dispatch through
#: whole migration stages: 10 us .. 30 s, roughly 1-3-10 per decade.
TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0)

#: Size buckets (bytes): 1 KB .. 64 MB, covering parcels through images.
SIZE_BUCKETS_BYTES: Tuple[float, ...] = (
    1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20, 64 << 20)

#: Effective-goodput buckets (Mbit/s) for link transfers.
RATE_BUCKETS_MBPS: Tuple[float, ...] = (
    1, 5, 10, 20, 40, 60, 80, 100, 150, 200)


LabelItems = Tuple[Tuple[str, str], ...]


#: Memo for :func:`fold_instance_label`.  Folded labels have bounded
#: cardinality by design (that is the point of folding), so the memo
#: stays small; the binder driver calls this once per transaction.
_FOLD_CACHE: Dict[str, str] = {}


def fold_instance_label(label: str) -> str:
    """Fold a per-instance suffix out of a label: ``foo:7`` -> ``foo``.

    Binder node labels like ``sensor-connection:7`` carry a
    process-global instance id whose value depends on allocation order
    across sweep workers; folding them keeps metric keys *and* event
    attributes deterministic (and the label cardinality bounded).  The
    metrics registry and the causal event log both use this helper, so
    the two telemetry planes agree on cross-worker-deterministic labels.
    """
    folded = _FOLD_CACHE.get(label)
    if folded is None:
        base, sep, suffix = label.rpartition(":")
        folded = base if sep and suffix.isdigit() else label
        if len(_FOLD_CACHE) < 4096:     # hard bound, defensive
            _FOLD_CACHE[label] = folded
    return folded


def _canonical_labels(labels: Mapping[str, Any]) -> LabelItems:
    items = [(k if type(k) is str else str(k),
              v if type(v) is str else str(v))
             for k, v in labels.items()]
    items.sort()
    return tuple(items)


def metric_key(subsystem: str, name: str, labels: LabelItems = ()) -> str:
    """Canonical flat key: ``subsystem/name{k=v,...}`` (labels sorted)."""
    key = f"{subsystem}/{name}"
    if labels:
        key += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
    return key


def split_key(key: str) -> Tuple[str, str, Dict[str, str]]:
    """Inverse of :func:`metric_key`: ``(subsystem, name, labels)``."""
    labels: Dict[str, str] = {}
    base = key
    if key.endswith("}") and "{" in key:
        base, _, label_part = key.partition("{")
        for item in label_part[:-1].split(","):
            if item:
                k, _, v = item.partition("=")
                labels[k] = v
    subsystem, _, name = base.partition("/")
    return subsystem, name, labels


class _Metric:
    """Shared identity plumbing; subclasses add the typed state."""

    kind = "?"

    def __init__(self, registry: Optional["MetricsRegistry"],
                 subsystem: str, name: str, labels: LabelItems) -> None:
        self._registry = registry
        self.subsystem = subsystem
        self.name = name
        self.labels = labels
        # Computed once: every timeline sample stamps the key, so
        # rebuilding it per mutation was a measurable sweep cost.
        self.key = metric_key(subsystem, name, labels)

    def _sample(self, value: float) -> None:
        if self._registry is not None:
            self._registry._record_sample(self.key, value)


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, registry, subsystem, name, labels) -> None:
        super().__init__(registry, subsystem, name, labels)
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.key} cannot decrease (inc {amount!r})")
        self.value += amount
        self._sample(self.value)


class Gauge(_Metric):
    """A point-in-time level; merge keeps the maximum seen."""

    kind = "gauge"

    def __init__(self, registry, subsystem, name, labels) -> None:
        super().__init__(registry, subsystem, name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self._sample(self.value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram(_Metric):
    """Fixed-bucket histogram: declared bounds, cumulative-free counts.

    ``bounds`` are strictly increasing upper bounds; an observation
    lands in the first bucket whose bound is >= the value, or in the
    implicit overflow bucket past the last bound (``counts`` has
    ``len(bounds) + 1`` cells).
    """

    kind = "histogram"

    def __init__(self, registry, subsystem, name, labels,
                 bounds: Tuple[float, ...]) -> None:
        super().__init__(registry, subsystem, name, labels)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {metric_key(subsystem, name, labels)} needs "
                f"strictly increasing bounds, got {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._sample(self.count)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NullCounter(Counter):
    def inc(self, amount: float = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Typed metric store living alongside a :class:`~repro.sim.Tracer`.

    ``clock`` (optional) enables *timeline samples*: each mutation
    records ``(clock.now, value)`` — coalesced per distinct timestamp —
    which exports as Chrome-trace counter ("C"-phase) tracks.  The clock
    is only ever read, never advanced.
    """

    def __init__(self, clock=None, enabled: bool = True,
                 timeline: Optional[bool] = None) -> None:
        self._clock = clock
        self.enabled = enabled
        self._timeline = (clock is not None) if timeline is None else timeline
        self._metrics: Dict[Tuple[str, str, LabelItems], _Metric] = {}
        self._samples: Dict[str, List[Tuple[float, float]]] = {}
        self._null_counter = _NullCounter(None, "null", "counter", ())
        self._null_gauge = _NullGauge(None, "null", "gauge", ())
        self._null_histogram = _NullHistogram(None, "null", "histogram", (),
                                              (1.0,))

    # -- metric lookup / creation --------------------------------------------

    def _get(self, cls, subsystem: str, name: str,
             labels: Mapping[str, Any], **extra) -> _Metric:
        key = (subsystem, name, _canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(self, subsystem, name, key[2], **extra)
            self._metrics[key] = metric
            return metric
        if not isinstance(metric, cls):
            raise MetricsError(
                f"{metric.key} already registered as {metric.kind}, "
                f"requested {cls.kind}")
        return metric

    def counter(self, subsystem: str, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return self._null_counter
        return self._get(Counter, subsystem, name, labels)

    def gauge(self, subsystem: str, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        return self._get(Gauge, subsystem, name, labels)

    def histogram(self, subsystem: str, name: str,
                  bounds: Tuple[float, ...] = TIME_BUCKETS_S,
                  **labels: Any) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        metric = self._get(Histogram, subsystem, name, labels, bounds=bounds)
        if metric.bounds != tuple(float(b) for b in bounds):
            raise MetricsError(
                f"histogram {metric.key} re-registered with different "
                f"bounds: {metric.bounds} vs {bounds}")
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    # -- timeline samples -----------------------------------------------------

    def _record_sample(self, key: str, value: float) -> None:
        if not self._timeline or self._clock is None:
            return
        now = self._clock.now
        series = self._samples.setdefault(key, [])
        if series and series[-1][0] == now:
            series[-1] = (now, value)
        else:
            series.append((now, value))

    def chrome_counter_events(self) -> List[Dict[str, Any]]:
        """Timeline samples as Chrome-trace counter ("C"-phase) events.

        One counter track per metric key; values are the running totals
        (counters), levels (gauges) or observation counts (histograms)
        at each distinct virtual timestamp.
        """
        events: List[Dict[str, Any]] = []
        for key in sorted(self._samples):
            for time, value in self._samples[key]:
                events.append({
                    "name": key, "cat": "metric", "ph": "C",
                    "pid": 1, "tid": 1,
                    "ts": round(time * 1e6, 3),
                    "args": {"value": value},
                })
        return events

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of every metric, with deterministic ordering."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                counters[metric.key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.key] = metric.value
            elif isinstance(metric, Histogram):
                histograms[metric.key] = {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                    "min": metric.min,
                    "max": metric.max,
                }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


def empty_snapshot() -> Dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate snapshots: counters/histograms add, gauges keep max.

    Associative and order-insensitive for counters and histograms, so
    merging per-worker snapshots in pair order reproduces the serial
    aggregation exactly.
    """
    merged = empty_snapshot()
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            merged["gauges"][key] = max(merged["gauges"].get(key, value),
                                        value)
        for key, hist in snap.get("histograms", {}).items():
            into = merged["histograms"].get(key)
            if into is None:
                merged["histograms"][key] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"], "count": hist["count"],
                    "min": hist["min"], "max": hist["max"],
                }
                continue
            if into["bounds"] != list(hist["bounds"]):
                raise MetricsError(
                    f"cannot merge histogram {key}: bucket bounds differ")
            into["counts"] = [a + b for a, b
                              in zip(into["counts"], hist["counts"])]
            into["sum"] += hist["sum"]
            into["count"] += hist["count"]
            for stat, pick in (("min", min), ("max", max)):
                if hist[stat] is not None:
                    into[stat] = (hist[stat] if into[stat] is None
                                  else pick(into[stat], hist[stat]))
    for section in ("counters", "gauges", "histograms"):
        merged[section] = dict(sorted(merged[section].items()))
    return merged


def rollup_counters(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Counters summed across label variants: ``subsystem/name`` totals."""
    totals: Dict[str, float] = {}
    for key, value in snapshot.get("counters", {}).items():
        subsystem, name, _ = split_key(key)
        base = f"{subsystem}/{name}"
        totals[base] = totals.get(base, 0) + value
    return dict(sorted(totals.items()))


def snapshot_by_label(snapshot: Dict[str, Any],
                      label: str) -> Dict[str, Dict[str, Any]]:
    """Partition a snapshot by one label's values (e.g. ``app``).

    Metrics without the label are omitted; the label itself is removed
    from the returned keys so per-app sections read cleanly.
    """
    grouped: Dict[str, Dict[str, Any]] = {}
    for section in ("counters", "gauges", "histograms"):
        for key, value in snapshot.get(section, {}).items():
            subsystem, name, labels = split_key(key)
            if label not in labels:
                continue
            group = labels.pop(label)
            bucket = grouped.setdefault(group, empty_snapshot())
            new_key = metric_key(subsystem, name, tuple(sorted(
                labels.items())))
            bucket[section][new_key] = value
    return {group: {section: dict(sorted(snap[section].items()))
                    for section in ("counters", "gauges", "histograms")}
            for group, snap in sorted(grouped.items())}


def subsystems_in(snapshot: Dict[str, Any]) -> List[str]:
    """Sorted subsystem names present in a snapshot."""
    seen = set()
    for section in ("counters", "gauges", "histograms"):
        for key in snapshot.get(section, {}):
            seen.add(split_key(key)[0])
    return sorted(seen)
