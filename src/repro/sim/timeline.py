"""Edge-sampled time-series telemetry: the third observability plane.

Spans answer "where did the time go?", metrics answer "how much work
happened?", events answer "what happened, caused by what?" — this plane
answers **"what did the world look like over time?"**: link occupancy,
per-session fair shares, medium flow counts, admission-queue depths,
sessions in flight.

Samples are taken *on event edges of the virtual clock* — a submit, a
completion, an enqueue, a grant — never by wall-clock polling, so the
series is a pure function of the simulation and reproduces bit-for-bit
across runs and executors.  The determinism contract matches the other
two planes:

* sampling **reads ``clock.now`` and never advances it**, and never
  draws from the RNG — turning the plane on or off cannot perturb a
  simulation (``FLUX_TIMELINE=0`` disables it; reports, metrics and
  events are byte-identical either way);
* samples at the same virtual timestamp coalesce (last write wins), so
  a flurry of same-instant edges exports one point per instant;
* exports **merge associatively** (:func:`merge_timelines`): per-key
  sample lists concatenate under a stable sort by timestamp, so a
  parallel sweep merged in pair order equals the serial sweep's merge.

Series are keyed ``name{label=value,...}`` with sorted labels, the same
flat-key grammar the metrics registry uses.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Set to ``0`` to disable the time-series plane process-wide.
TIMELINE_ENV = "FLUX_TIMELINE"

#: On-disk document version written by :func:`write_timeline`; readers
#: reject any other value (forward-compat contract for run bundles).
TIMELINE_SCHEMA = 1


class TimelineError(Exception):
    """Malformed or unsupported timeline artifacts."""


def timeline_enabled() -> bool:
    """The env-gated default for new :class:`Timeline` instances."""
    return os.environ.get(TIMELINE_ENV, "1") != "0"


def series_key(name: str, labels: Mapping[str, Any] = ()) -> str:
    """Canonical flat key: ``name{k=v,...}`` with labels sorted."""
    if not labels:
        return name
    items = sorted((str(k), str(v)) for k, v in dict(labels).items())
    return name + "{" + ",".join(f"{k}={v}" for k, v in items) + "}"


def split_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`series_key`: ``(name, labels)``."""
    labels: Dict[str, str] = {}
    base = key
    if key.endswith("}") and "{" in key:
        base, _, label_part = key.partition("{")
        for item in label_part[:-1].split(","):
            if item:
                k, _, v = item.partition("=")
                labels[k] = v
    return base, labels


class Timeline:
    """A deterministic, edge-sampled time-series store.

    ``clock`` is only ever read; with no clock every sample lands at
    ``t=0.0`` (still deterministic — bare unit-test objects).  A
    timeline built with ``enabled=False`` is a null object: ``sample``
    is a no-op and ``export`` is empty, so instrumented code never
    needs an ``if`` (the :attr:`enabled` flag is still there for
    callers that want to skip label formatting entirely).
    """

    def __init__(self, clock=None, enabled: bool = True) -> None:
        self._clock = clock
        self.enabled = enabled
        self._series: Dict[str, List[Tuple[float, float]]] = {}

    def sample(self, name: str, value: float, **labels: Any) -> None:
        """Record ``(clock.now, value)`` on the edge that is happening.

        Same-timestamp samples coalesce, last write wins: the exported
        series holds the state *after* all of an instant's edges.
        """
        if not self.enabled:
            return
        now = self._clock.now if self._clock is not None else 0.0
        series = self._series.setdefault(series_key(name, labels), [])
        if series and series[-1][0] == now:
            series[-1] = (now, float(value))
        else:
            series.append((now, float(value)))

    def __len__(self) -> int:
        return len(self._series)

    def series(self, key: str) -> List[Tuple[float, float]]:
        return list(self._series.get(key, []))

    def export(self) -> Dict[str, List[List[float]]]:
        """JSON-ready view: sorted keys, ``[[t, value], ...]`` samples."""
        return {key: [[t, v] for t, v in self._series[key]]
                for key in sorted(self._series)}


def merge_timelines(*exports: Dict[str, List[List[float]]]
                    ) -> Dict[str, List[List[float]]]:
    """Merge exported timelines: key union, samples stably time-sorted.

    Associative: per-key sample lists concatenate in argument order and
    a stable sort by timestamp keeps that order for ties, so
    ``merge(merge(a, b), c) == merge(a, merge(b, c))``.  Keys from
    independent sources are normally disjoint (each series has one
    sampling site); shared-clock sources merging the same key interleave
    by virtual time.
    """
    merged: Dict[str, List[List[float]]] = {}
    for export in exports:
        for key, samples in export.items():
            merged.setdefault(key, []).extend(
                [t, v] for t, v in samples)
    for samples in merged.values():
        samples.sort(key=lambda sample: sample[0])
    return {key: merged[key] for key in sorted(merged)}


def chrome_counter_events(export: Dict[str, List[List[float]]]
                          ) -> List[Dict[str, Any]]:
    """An exported timeline as Chrome-trace counter ("C"-phase) tracks.

    One counter track per series key, same shape as the metrics
    registry's counter tracks so both planes render side by side in
    Perfetto.
    """
    events: List[Dict[str, Any]] = []
    for key in sorted(export):
        for time, value in export[key]:
            events.append({
                "name": key, "cat": "timeline", "ph": "C",
                "pid": 1, "tid": 1,
                "ts": round(time * 1e6, 3),
                "args": {"value": value},
            })
    return events


def timeline_document(export: Dict[str, List[List[float]]],
                      meta: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Any]:
    """The versioned JSON document :func:`write_timeline` persists."""
    document: Dict[str, Any] = {"schema": TIMELINE_SCHEMA, "series": export}
    if meta:
        document["meta"] = meta
    return document


def parse_timeline_document(document: Any,
                            source: str = "timeline"
                            ) -> Dict[str, List[List[float]]]:
    """Validate a timeline document and return its series.

    Rejects unknown schema versions with a clear error instead of
    silently misreading a future format — run bundles may outlive the
    code that wrote them.
    """
    if not isinstance(document, dict):
        raise TimelineError(f"{source}: not a timeline document "
                            f"(expected a JSON object, got "
                            f"{type(document).__name__})")
    schema = document.get("schema")
    if schema != TIMELINE_SCHEMA:
        raise TimelineError(
            f"{source}: unsupported timeline schema {schema!r} "
            f"(this build reads schema {TIMELINE_SCHEMA}); regenerate "
            f"the artifact or upgrade")
    return document.get("series", {})


def write_timeline(path: str, export: Dict[str, List[List[float]]],
                   meta: Optional[Dict[str, Any]] = None) -> int:
    """Write an exported timeline as sorted-key JSON; returns series count."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(timeline_document(export, meta), handle, indent=1,
                  sort_keys=True)
    return len(export)


def read_timeline(path: str) -> Dict[str, List[List[float]]]:
    """Load a ``--timeline-out`` artifact's series back into a dict.

    Raises :class:`TimelineError` on unknown schema versions (see
    :func:`parse_timeline_document`).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return parse_timeline_document(document, source=path)
