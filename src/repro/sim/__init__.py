"""Deterministic simulation substrate: virtual clock, seeded RNG, tracing."""

from repro.sim.clock import ClockError, SimClock, Stopwatch, StopwatchSpan, TimerHandle
from repro.sim.events import CausalEvent, EventsError, FlightRecorder, merge_streams
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    fold_instance_label,
    merge_snapshots,
)
from repro.sim.rng import DEFAULT_SEED, RngFactory, derive_seed
from repro.sim.trace import Span, TraceEvent, Tracer, critical_path
from repro.sim import units

__all__ = [
    "ClockError",
    "SimClock",
    "Stopwatch",
    "StopwatchSpan",
    "TimerHandle",
    "DEFAULT_SEED",
    "RngFactory",
    "derive_seed",
    "Span",
    "TraceEvent",
    "Tracer",
    "critical_path",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "fold_instance_label",
    "merge_snapshots",
    "CausalEvent",
    "EventsError",
    "FlightRecorder",
    "merge_streams",
    "units",
]
