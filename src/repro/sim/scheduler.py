"""Cooperative sessions over the discrete-event clock.

A *session* is a generator that yields instead of advancing the shared
:class:`~repro.sim.clock.SimClock` directly.  Yield points:

* :class:`Charge` (or a bare float) — virtual seconds of work.  The
  scheduler turns it into a clock timer; the session resumes when the
  sweep reaches the deadline.
* :class:`Waiter` — a one-shot future.  The session resumes with the
  waiter's value when someone resolves it, or the exception is thrown
  back into the generator when someone rejects it.
* any object with ``submit(clock) -> Waiter`` — an asynchronous
  operation (e.g. a link flow) that the scheduler submits and then
  waits on.

Two drivers exist for the same generators:

* :func:`drive_sync` replays a session inline — every charge becomes an
  immediate ``clock.advance``, every op runs via its ``apply_sync``.
  This is the legacy run-to-completion path and is byte-identical to
  the pre-session code.
* :class:`Scheduler` interleaves many sessions on clock timers so that
  concurrent migrations contend for shared resources deterministically.

Determinism contract: sessions are resumed only by clock timers and
waiter resolutions, both of which fire in deadline order with FIFO
tie-breaking (the clock's monotonic timer sequence).  Given the same
spawn order and the same yields, the interleaving is a pure function of
the virtual timeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Deque, Generator, List, Optional

from collections import deque

from repro.sim.clock import SimClock


class SchedulerError(Exception):
    """Raised on invalid scheduler operations."""


@dataclass(frozen=True)
class Charge:
    """Virtual seconds of work a session wants charged to the clock."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SchedulerError(f"negative charge {self.seconds!r}")


class Waiter:
    """A one-shot future a session can yield on.

    Exactly one of :meth:`resolve` / :meth:`reject` may be called, once.
    Callbacks added after completion fire immediately, which lets the
    scheduler treat already-completed waiters (e.g. an uncontended
    resource acquire) without a spurious suspension.
    """

    __slots__ = ("description", "_done", "_value", "_error", "_callbacks")

    def __init__(self, description: str = "") -> None:
        self.description = description
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Waiter"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SchedulerError(f"waiter {self.description!r} not done")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def resolve(self, value: Any = None) -> None:
        self._complete(value=value)

    def reject(self, error: BaseException) -> None:
        self._complete(error=error)

    def _complete(self, value: Any = None,
                  error: Optional[BaseException] = None) -> None:
        if self._done:
            raise SchedulerError(
                f"waiter {self.description!r} completed twice")
        self._done = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done(self, callback: Callable[["Waiter"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)


class Resource:
    """An exclusive resource with a FIFO wait queue.

    The scenario layer models "device X is already hosting a migration"
    as holding that device's resource; admission control either queues
    on :meth:`acquire` or refuses when :attr:`busy`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._holder: Optional[str] = None
        self._queue: Deque[tuple] = deque()

    @property
    def busy(self) -> bool:
        return self._holder is not None

    @property
    def holder(self) -> Optional[str]:
        return self._holder

    @property
    def queued(self) -> int:
        return len(self._queue)

    def acquire(self, who: str = "?") -> Waiter:
        """A waiter that resolves (with this resource) once held by ``who``."""
        waiter = Waiter(f"acquire {self.name} for {who}")
        if self._holder is None:
            self._holder = who
            waiter.resolve(self)
        else:
            self._queue.append((who, waiter))
        return waiter

    def try_acquire(self, who: str = "?") -> bool:
        if self._holder is not None:
            return False
        self._holder = who
        return True

    def release(self) -> None:
        if self._holder is None:
            raise SchedulerError(f"resource {self.name!r} not held")
        self._holder = None
        if self._queue:
            who, waiter = self._queue.popleft()
            self._holder = who
            waiter.resolve(self)


class Session:
    """Handle for one spawned generator."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    def __init__(self, name: str, gen: Generator, seq: int) -> None:
        self.name = name
        self.seq = seq
        self.state = Session.PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._gen = gen

    @property
    def finished(self) -> bool:
        return self.state in (Session.DONE, Session.FAILED)


class Scheduler:
    """Drives cooperative sessions on a shared :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.sessions: List[Session] = []
        self._seq = itertools.count()
        self._live = 0

    def spawn(self, gen: Generator, name: Optional[str] = None,
              at: Optional[float] = None) -> Session:
        """Register ``gen`` to start at virtual time ``at`` (default now)."""
        session = Session(name or f"session-{len(self.sessions)}",
                          gen, next(self._seq))
        self.sessions.append(session)
        self._live += 1
        start = self.clock.now if at is None else float(at)
        if start < self.clock.now:
            raise SchedulerError(
                f"session {session.name!r} starts at {start} in the past "
                f"(now {self.clock.now})")
        self.clock.call_at(start, lambda: self._step(session, None, None))
        return session

    def run(self) -> None:
        """Advance the clock until every spawned session has finished."""
        while self._live:
            deadline = self.clock.next_deadline()
            if deadline is None:
                stuck = [s.name for s in self.sessions if not s.finished]
                raise SchedulerError(
                    f"deadlock: no timers pending but sessions still "
                    f"waiting: {stuck}")
            self.clock.advance_to(deadline)

    # -- session stepping --------------------------------------------

    def _step(self, session: Session, value: Any,
              error: Optional[BaseException]) -> None:
        """Resume ``session`` with ``value`` (or throw ``error`` into it).

        Loops over immediately-ready yields (already-resolved waiters)
        so an uncontended acquire never recurses or suspends.
        """
        session.state = Session.RUNNING
        while True:
            try:
                if error is not None:
                    err, error = error, None
                    op = session._gen.throw(err)
                else:
                    op = session._gen.send(value)
            except StopIteration as stop:
                session.state = Session.DONE
                session.result = stop.value
                self._live -= 1
                return
            except BaseException as exc:  # session died with its error
                session.state = Session.FAILED
                session.error = exc
                self._live -= 1
                return
            value = None
            if isinstance(op, (int, float)):
                op = Charge(float(op))
            if isinstance(op, Charge):
                session.state = Session.PENDING
                self.clock.call_after(
                    op.seconds, lambda: self._step(session, None, None))
                return
            if not isinstance(op, Waiter):
                submit = getattr(op, "submit", None)
                if submit is None:
                    session.state = Session.FAILED
                    session.error = SchedulerError(
                        f"session {session.name!r} yielded {op!r}")
                    self._live -= 1
                    session._gen.close()
                    return
                op = submit(self.clock)
            if op.done and op.error is None:
                value = op._value
                continue
            if op.done:
                error = op.error
                continue
            session.state = Session.PENDING
            waiter = op

            def _resume(w: Waiter, session: Session = session) -> None:
                self._step(session, w._value, w._error)

            waiter.add_done(_resume)
            return


def drive_sync(gen: Generator, clock: SimClock) -> Any:
    """Run a session generator to completion inline.

    Charges become immediate ``clock.advance`` calls and ops run through
    their ``apply_sync`` — exactly the pre-session synchronous code
    path, so a single session driven this way is byte-identical to the
    old run-to-completion implementation.  Returns the generator's
    return value; exceptions (including op failures thrown back in)
    propagate to the caller.
    """
    value: Any = None
    error: Optional[BaseException] = None
    while True:
        try:
            if error is not None:
                err, error = error, None
                op = gen.throw(err)
            else:
                op = gen.send(value)
        except StopIteration as stop:
            return stop.value
        value = None
        if isinstance(op, (int, float)):
            op = Charge(float(op))
        if isinstance(op, Charge):
            clock.advance(op.seconds)
            continue
        if isinstance(op, Waiter):
            if not op.done:
                raise SchedulerError(
                    f"cannot wait synchronously on pending waiter "
                    f"{op.description!r}")
            if op.error is not None:
                error = op.error
            else:
                value = op._value
            continue
        apply_sync = getattr(op, "apply_sync", None)
        if apply_sync is None:
            gen.close()
            raise SchedulerError(f"sync driver cannot execute {op!r}")
        try:
            value = apply_sync(clock)
        except BaseException as exc:
            error = exc
